#!/usr/bin/env python3
"""The scheduling-flexibility argument of §2.2, quantified.

The paper's motivating example: tasks A and B are memory-coloured into
the same cache sets (software partitioning), so they may never run
simultaneously; hardware partitioning lets them co-run but flushes
partitions whenever a task is handed a partition holding another
task's lines; EFL imposes neither constraint.

This example schedules the same IMA-style task set under all three
regimes with the cyclic executive and prints the cost of each: minor
frames needed per major frame (makespan) and partition flushes.

Run:  python examples/frame_scheduling.py
"""

from repro.rtos import CyclicExecutive, Task


def main() -> None:
    # Six periodic tasks for a 4-core platform; three of them are
    # coloured into the same sets (they share a big lookup library,
    # say), and every task releases twice per major frame.
    tasks = [
        Task("nav",   wcet_cycles=800, releases=2, colour_group="maps"),
        Task("plan",  wcet_cycles=700, releases=2, colour_group="maps"),
        Task("vision", wcet_cycles=900, releases=2, colour_group="maps"),
        Task("ctrl",  wcet_cycles=400, releases=2),
        Task("logs",  wcet_cycles=300, releases=2),
        Task("comms", wcet_cycles=500, releases=2),
    ]
    executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)

    print(f"{'mechanism':>10}  {'MIFs/MAF':>9}  {'flushes':>8}  "
          f"{'co-run conflicts avoided':>25}")
    for mechanism in ("efl", "cp-hw", "cp-sw"):
        result = executive.schedule(tasks, mechanism=mechanism)
        print(f"{mechanism:>10}  {result.frames_used:9d}  "
              f"{result.partition_flushes:8d}  "
              f"{result.co_schedule_conflicts_avoided:25d}")

    result = executive.schedule(tasks, mechanism="efl", rii_seed=7)
    print("\nEFL schedule (task placements per minor frame):")
    for frame in result.schedule.frames:
        placement = ", ".join(
            f"core{core}={name}" for core, name in sorted(frame.assignments.items())
        )
        print(f"  MIF {frame.index}: {placement}")
    print(f"\nLLC RII for next major frame: {result.schedule.next_llc_rii():#010x} "
          f"(drawn coordinately at the frame boundary, §3.5)")


if __name__ == "__main__":
    main()
