#!/usr/bin/env python3
"""Quickstart: a pWCET estimate for one benchmark under EFL.

This walks the full MBPTA flow of the paper in ~30 seconds:

1. build a benchmark kernel (the IDCT-like ``ID``) for a scaled
   platform;
2. run it many times in *analysis mode* — alone on core 0, with the
   other cores' Cache Request Generators injecting force-miss
   evictions at the maximum rate EFL allows, and bus/memory
   interference charged their composable upper bounds;
3. check the i.i.d. hypotheses and fit the EVT tail;
4. print the pWCET at the paper's cutoff probabilities.

Run:  python examples/quickstart.py
"""

from repro import (
    ExperimentScale,
    Scenario,
    build_benchmark,
    collect_execution_times,
    estimate_pwcet,
)

def main() -> None:
    scale = ExperimentScale.quick()
    config = scale.system_config()        # 1/8-scale paper platform
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(mid=500)      # EFL500, analysis mode

    print(f"benchmark : {trace.name} ({trace.instruction_count} instructions)")
    print(f"platform  : {config.num_cores} cores, {config.l1_size}B L1s, "
          f"{config.llc_size}B shared TR LLC")
    print(f"scenario  : {scenario.label()} ({scenario.mode.value} mode)")
    print(f"collecting {scale.analysis_runs} runs, fresh RII per run ...")

    sample = collect_execution_times(
        trace, config, scenario, runs=scale.analysis_runs, master_seed=42
    )
    result = estimate_pwcet(
        sample.execution_times,
        task=trace.name,
        scenario_label=scenario.label(),
        block_size=scale.block_size,
    )

    print(f"\nobserved  : min={result.min_time:.0f}  mean={result.mean_time:.0f}  "
          f"max={result.max_time:.0f} cycles")
    iid = result.iid
    print(f"i.i.d.    : WW={iid.ww.statistic:+.2f} (<1.96)  "
          f"KS p={iid.ks.p_value:.3f} (>0.05)  "
          f"=> {'MBPTA-compliant' if iid.passed else 'REJECTED'}")
    for prob, value in sorted(result.pwcet.items(), reverse=True):
        print(f"pWCET({prob:g})  = {value:,.0f} cycles")
    print(f"\nguaranteed IPC at 1e-15: "
          f"{sample.instructions / result.pwcet_at(1e-15):.4f}")


if __name__ == "__main__":
    main()
