#!/usr/bin/env python3
"""MBPTA-compliance check (the paper's §4.2 first experiment).

Runs every benchmark on the EFL platform and applies the two i.i.d.
tests the paper uses at the 5% significance level:

* Wald-Wolfowitz runs test for independence (|statistic| < 1.96);
* Kolmogorov-Smirnov two-sample test for identical distribution
  between the first and second half of the runs (p > 0.05).

Run:  python examples/iid_validation.py
"""

import sys

from repro import ExperimentScale, PWCETTable, run_iid_compliance
from repro.analysis.reporting import render_iid
from repro.sim.backend import StreamObserver


def main() -> None:
    scale = ExperimentScale.quick()
    table = PWCETTable(
        scale=scale,
        seed=5,
        observer=StreamObserver(sys.stdout),
    )
    result = run_iid_compliance(table)
    print()
    print(render_iid(result))
    print(
        "\nInterpretation: with both hypotheses un-rejected, the "
        "execution times behave as i.i.d. random variables, so EVT "
        "extrapolation of their tail (the pWCET curve) is sound — the "
        "property EFL preserves on a fully shared LLC."
    )


if __name__ == "__main__":
    main()
