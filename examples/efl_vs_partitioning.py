#!/usr/bin/env python3
"""EFL versus hardware cache partitioning on one benchmark (mini Figure 3).

For a cache-space-sensitive benchmark (the IIR filter ``II``), compare
the pWCET estimates of:

* EFL with MID 250/500/1000 (full shared LLC, eviction-rate limited);
* hardware way-partitioning with 1/2/4 of the LLC's 8 ways.

This is one row of the paper's Figure 3, normalised to CP2 — the
configuration where each of the 4 cores owns exactly 2 ways.

Run:  python examples/efl_vs_partitioning.py  [benchmark-id]
"""

import sys

from repro import (
    ExperimentScale,
    Scenario,
    build_benchmark,
    collect_execution_times,
    estimate_pwcet,
)


def pwcet_for(trace, config, scenario, runs, block_size) -> float:
    sample = collect_execution_times(
        trace, config, scenario, runs=runs, master_seed=7
    )
    estimate = estimate_pwcet(
        sample.execution_times,
        task=trace.name,
        scenario_label=scenario.label(),
        block_size=block_size,
        check_iid=False,
    )
    return estimate.pwcet_at(1e-15)


def main() -> None:
    bench_id = sys.argv[1] if len(sys.argv) > 1 else "II"
    scale = ExperimentScale.quick()
    config = scale.system_config()
    trace = build_benchmark(bench_id, scale=scale.trace_scale)
    print(f"benchmark {bench_id}: {trace.instruction_count} instructions, "
          f"{len(trace.data_footprint())} distinct data words")

    scenarios = [Scenario.efl(mid) for mid in scale.mid_options]
    scenarios += [Scenario.cache_partitioning(w) for w in (1, 2, 4)]

    results = {}
    for scenario in scenarios:
        print(f"  analysing under {scenario.label()} "
              f"({scale.analysis_runs} runs) ...")
        results[scenario.label()] = pwcet_for(
            trace, config, scenario, scale.analysis_runs, scale.block_size
        )

    baseline = results["CP2"]
    print(f"\n{'setup':>8}  {'pWCET(1e-15)':>14}  {'vs CP2':>7}")
    for label, value in results.items():
        print(f"{label:>8}  {value:14,.0f}  {value / baseline:7.3f}")
    print("\n(lower is better; the paper's Figure 3 plots these ratios "
          "for all 10 benchmarks)")


if __name__ == "__main__":
    main()
