#!/usr/bin/env python3
"""Mini Figure 4: the per-workload EFL-versus-CP S-curves.

Generates a batch of random 4-benchmark workloads and, for each one,
finds the best CP way-partition and the best shared EFL MID by
workload guaranteed IPC (wgIPC, cutoff 1e-15), then actually co-runs
both setups in deployment mode to measure workload average IPC
(waIPC).  Prints both improvement distributions — the two S-curves of
the paper's Figure 4.

Run:  python examples/workload_scurve.py  [num-workloads]
"""

import sys

from repro import ExperimentScale, PWCETTable, run_fig4
from repro.analysis.reporting import render_fig4
from repro.sim.backend import StreamObserver


def main() -> None:
    scale = ExperimentScale.quick()
    if len(sys.argv) > 1:
        from dataclasses import replace

        scale = replace(scale, workload_count=int(sys.argv[1]))
    table = PWCETTable(
        scale=scale,
        seed=2014,
        observer=StreamObserver(sys.stdout),
    )
    print(f"scale {scale.name}: {scale.workload_count} workloads, "
          f"{scale.analysis_runs} analysis runs per estimate\n")
    fig4 = run_fig4(table, measure_average=True)
    print()
    print(render_fig4(fig4))
    print("\nper-workload detail (first 10):")
    for comparison in fig4.comparisons[:10]:
        print(
            f"  {'+'.join(comparison.workload):18s} "
            f"CP{comparison.cp_partition} wgIPC={comparison.cp_wgipc:.4f}  "
            f"EFL{comparison.efl_mid} wgIPC={comparison.efl_wgipc:.4f}  "
            f"wg {comparison.wgipc_improvement:+.1%}  "
            f"wa {comparison.waipc_improvement:+.1%}"
        )


if __name__ == "__main__":
    main()
