#!/usr/bin/env python3
"""Parallel campaigns: same sample, a fraction of the wall clock.

MBPTA runs are independent by construction — each derives its own seed
and randomises its own platform (§3.3) — so a campaign fans out over
worker processes without changing a single observed cycle.  This
example runs the same campaign through the serial and the process-pool
backend, verifies bit-identical execution times, and shows the
observability that rides along: per-run records, throughput, and the
seed of the high-water-mark run (rerun that one seed to reproduce the
worst case in isolation).

Run:  python examples/parallel_campaign.py
"""

import os

from repro import (
    ExperimentScale,
    ProcessPoolBackend,
    Scenario,
    SerialBackend,
    build_benchmark,
    collect_execution_times,
    run_isolation,
)
from repro.analysis.reporting import render_campaign


def main() -> None:
    scale = ExperimentScale.quick()
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(mid=500)
    workers = min(4, os.cpu_count() or 1)

    print(f"campaign: {trace.name} under {scenario.label()}, "
          f"{scale.analysis_runs} runs\n")

    serial = collect_execution_times(
        trace, config, scenario, runs=scale.analysis_runs, master_seed=42,
        backend=SerialBackend(),
    )
    parallel = collect_execution_times(
        trace, config, scenario, runs=scale.analysis_runs, master_seed=42,
        backend=ProcessPoolBackend(workers=workers),
    )

    identical = parallel.execution_times == serial.execution_times
    print(f"serial     : {serial.runs_per_second:7.1f} runs/s")
    print(f"process[{workers}] : {parallel.runs_per_second:7.1f} runs/s")
    print(f"bit-identical samples: {identical}\n")
    assert identical, "backends must be invisible in the data"

    print(render_campaign(parallel))

    # Reproduce the worst observed run from its recorded seed alone.
    rerun = run_isolation(trace, config, scenario, parallel.hwm_seed)
    print(f"\nHWM rerun from seed {parallel.hwm_seed:#x}: "
          f"{rerun.cores[0].cycles} cycles "
          f"(campaign HWM: {parallel.max_time})")


if __name__ == "__main__":
    main()
