#!/usr/bin/env python3
"""Equation 1: analytical miss probabilities versus the simulated cache.

The paper's Equation 1 approximates the miss probability of a reused
address in a time-randomised Evict-on-Miss cache.  This example
evaluates, across reuse distances:

* the published Equation 1 (exact in the fully-associative and
  direct-mapped corners, loose in between);
* the exact independent-collision model;
* the simulated TR cache (ground truth).

Run:  python examples/equation1_model.py
"""

from repro import Cache, CacheGeometry, EvictOnMissRandom, RandomPlacement
from repro.pta.eq1 import miss_probability, miss_probability_exact
from repro.utils.rng import MultiplyWithCarry

SETS, WAYS = 64, 4
TRIALS = 1500


def simulate(reuse_distance: int) -> float:
    """P(miss of the second access to A) with k distinct lines between."""
    misses = 0
    for seed in range(TRIALS):
        geometry = CacheGeometry(
            size_bytes=SETS * WAYS * 16, line_size=16, ways=WAYS
        )
        cache = Cache(
            geometry,
            RandomPlacement(SETS, rii=seed + 1),
            EvictOnMissRandom(MultiplyWithCarry(seed)),
        )
        cache.access(0)
        for line in range(1, reuse_distance + 1):
            cache.access(line)
        if not cache.access(0).hit:
            misses += 1
    return misses / TRIALS


def main() -> None:
    print(f"TR cache: {SETS} sets x {WAYS} ways, Evict-on-Miss random "
          f"replacement, random placement\n")
    print(f"{'k':>5}  {'simulated':>10}  {'exact model':>11}  {'paper Eq.1':>10}")
    for k in (4, 16, 64, 128, 256):
        probs = [1.0] * k  # cold distinct lines always miss
        print(
            f"{k:5d}  {simulate(k):10.4f}  "
            f"{miss_probability_exact(SETS, WAYS, probs):11.4f}  "
            f"{miss_probability(SETS, WAYS, probs):10.4f}"
        )
    print(
        "\nThe exact model tracks the simulation; the published "
        "Equation 1 over-approximates for set-associative shapes (its "
        "product form charges every eviction against A's way even when "
        "it lands in another set) — which, as the paper notes, is "
        "irrelevant for MBPTA: only the *existence* of per-access "
        "hit/miss probabilities matters."
    )


if __name__ == "__main__":
    main()
