#!/usr/bin/env python3
"""Bring your own workload: analyse a custom kernel under EFL.

Shows the extension surface a downstream user cares about: build a
dynamic instruction trace with :class:`TraceBuilder` (or the pattern
primitives in ``repro.workloads.kernels``), then push it through the
same analysis pipeline as the built-in EEMBC-like suite — including a
deployment-mode co-run against three built-in benchmarks.

Run:  python examples/custom_benchmark.py
"""

from repro import (
    ExperimentScale,
    OperationMode,
    Scenario,
    TraceBuilder,
    build_benchmark,
    collect_execution_times,
    estimate_pwcet,
    run_workload,
)
from repro.workloads.kernels import pointer_chase, stream_pass


def build_my_kernel(scale: float) -> "TraceBuilder":
    """A two-phase kernel: stream a buffer, then chase pointers in it."""
    builder = TraceBuilder("mykernel", code_base=0xA0_0000)
    words = max(int(2048 * scale), 64)
    for _sweep in range(6):
        stream_pass(builder, base=0x7000_0000, num_words=words,
                    alus_per_access=1, store_every=8)
    pointer_chase(builder, base=0x7100_0000, num_nodes=max(words // 8, 16),
                  node_bytes=16, steps=max(words // 2, 64), seed=99)
    return builder.build()


def main() -> None:
    scale = ExperimentScale.quick()
    config = scale.system_config()
    trace = build_my_kernel(scale.trace_scale)
    print(f"custom kernel: {trace.instruction_count} instructions, "
          f"{trace.memory_op_count} memory ops")

    # 1. Analysis: pWCET under EFL500 with worst-case co-runners.
    sample = collect_execution_times(
        trace, config, Scenario.efl(500), runs=scale.analysis_runs,
        master_seed=1,
    )
    estimate = estimate_pwcet(
        sample.execution_times, task=trace.name, scenario_label="EFL500",
        block_size=scale.block_size,
    )
    print(f"analysis  : mean={estimate.mean_time:.0f} cycles, "
          f"pWCET(1e-15)={estimate.pwcet_at(1e-15):,.0f} cycles, "
          f"i.i.d. {'pass' if estimate.iid.passed else 'FAIL'}")

    # 2. Deployment: co-run with three built-in benchmarks under the
    # same MID and check the bound holds.
    co_runners = [build_benchmark(b, scale=scale.trace_scale)
                  for b in ("MA", "CN", "PN")]
    worst_observed = 0
    for seed in range(10):
        result = run_workload(
            [trace] + co_runners, config,
            Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=seed,
        )
        worst_observed = max(worst_observed, result.core(0).cycles)
    print(f"deployment: worst co-run time over 10 runs = "
          f"{worst_observed:,} cycles")
    bound = estimate.pwcet_at(1e-15)
    print(f"bound check: observed/{'pWCET':s} = {worst_observed / bound:.2f} "
          f"({'within' if worst_observed <= bound else 'EXCEEDS'} the "
          f"pWCET estimate)")


if __name__ == "__main__":
    main()
