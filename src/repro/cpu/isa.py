"""Minimal ISA for trace-driven timing simulation.

Timing analysis does not need instruction semantics, only the latency
class of each dynamic instruction and the addresses it touches.  Five
operation kinds cover the paper's platform:

* ``ALU`` — single-cycle integer operation (the paper: "integer
  additions take 1 cycle");
* ``MUL`` — a longer fixed-latency arithmetic operation, giving
  kernels a way to model compute-heavy loops;
* ``BRANCH`` — control flow; the in-order, non-speculative 4-stage
  pipeline resolves branches in the execute stage with no penalty
  beyond its fixed latency;
* ``LOAD``/``STORE`` — data-memory operations that access the DL1 and,
  on a miss, the shared memory path.

All instruction fetches access the IL1 regardless of kind.
"""

from __future__ import annotations

import enum


class OpKind(enum.IntEnum):
    """Latency class of a dynamic instruction."""

    ALU = 0
    MUL = 1
    BRANCH = 2
    LOAD = 3
    STORE = 4


#: Fixed execute-stage latency (cycles) of the non-memory kinds.
#: LOAD/STORE latency is dynamic (cache-dependent) and resolved by the
#: memory hierarchy, so they do not appear here.
EXEC_LATENCY = {
    OpKind.ALU: 1,
    OpKind.MUL: 4,
    OpKind.BRANCH: 1,
}

#: Size of one instruction in bytes (RISC-style fixed width); used to
#: lay consecutive instructions out in the instruction address space.
INSTRUCTION_BYTES = 4


def is_memory_op(kind: int) -> bool:
    """Whether ``kind`` accesses the data cache.

    >>> is_memory_op(OpKind.LOAD)
    True
    >>> is_memory_op(OpKind.ALU)
    False
    """
    return kind == OpKind.LOAD or kind == OpKind.STORE
