"""Dynamic instruction traces and the builder kernels use to emit them.

A :class:`Trace` is the complete dynamic instruction stream of one run
of a benchmark: for every executed instruction its program counter, its
:class:`~repro.cpu.isa.OpKind` and, for memory operations, the byte
address touched.  Traces are deterministic — all randomness in the
platform lives in the hardware (placement, replacement, arbitration,
EFL), never in the program, exactly as in the paper's methodology where
the *same* benchmark binary is run many times.

:class:`TraceBuilder` gives kernels a tiny assembler-like API: it
tracks a current program counter, advances it by one instruction width
per emitted operation, and rewinds it on loop back-edges so that loop
bodies re-execute at the same PCs (which is what makes the IL1 behave
realistically).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.cpu.isa import INSTRUCTION_BYTES, OpKind, is_memory_op
from repro.errors import TraceError


class Trace:
    """An immutable dynamic instruction stream.

    Stored as three parallel lists (pc, kind, address) for fast
    iteration by the simulator; ``address`` is ``None`` for non-memory
    instructions.
    """

    __slots__ = ("name", "pcs", "kinds", "addresses")

    def __init__(
        self,
        name: str,
        pcs: List[int],
        kinds: List[int],
        addresses: List[Optional[int]],
    ) -> None:
        if not (len(pcs) == len(kinds) == len(addresses)):
            raise TraceError(
                f"trace {name!r}: mismatched stream lengths "
                f"({len(pcs)}, {len(kinds)}, {len(addresses)})"
            )
        if not pcs:
            raise TraceError(f"trace {name!r} is empty")
        for i, (kind, addr) in enumerate(zip(kinds, addresses)):
            if is_memory_op(kind) and addr is None:
                raise TraceError(f"trace {name!r}: memory op at {i} has no address")
            if not is_memory_op(kind) and addr is not None:
                raise TraceError(f"trace {name!r}: non-memory op at {i} has address")
        self.name = name
        self.pcs = pcs
        self.kinds = kinds
        self.addresses = addresses

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, int, Optional[int]]]:
        return zip(self.pcs, self.kinds, self.addresses)

    @property
    def instruction_count(self) -> int:
        """Number of dynamic instructions (== len(self))."""
        return len(self.pcs)

    @property
    def memory_op_count(self) -> int:
        """Number of dynamic loads + stores."""
        return sum(1 for kind in self.kinds if is_memory_op(kind))

    def code_footprint(self) -> set:
        """Set of distinct PCs (static code footprint, in instructions)."""
        return set(self.pcs)

    def data_footprint(self) -> set:
        """Set of distinct data byte-addresses touched."""
        return {addr for addr in self.addresses if addr is not None}

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, {len(self)} instructions, "
            f"{self.memory_op_count} memory ops)"
        )


class TraceBuilder:
    """Assembler-like builder for :class:`Trace` objects.

    Parameters
    ----------
    name:
        Trace label (benchmark name).
    code_base:
        Byte address where the kernel's code is laid out.  Distinct
        kernels use distinct bases so their code footprints are
        disjoint, as separate binaries' would be.

    Examples
    --------
    >>> b = TraceBuilder("demo", code_base=0x1000)
    >>> for _ in range(2):
    ...     body = b.loop_start()
    ...     b.load(0x8000)
    ...     b.alu()
    ...     b.branch(back_to=body)
    >>> len(b.build())
    6
    """

    def __init__(self, name: str, code_base: int = 0) -> None:
        if code_base < 0:
            raise TraceError(f"code_base must be non-negative, got {code_base}")
        self.name = name
        self._pc = code_base
        self._pcs: List[int] = []
        self._kinds: List[int] = []
        self._addresses: List[Optional[int]] = []

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def _emit(self, kind: OpKind, address: Optional[int]) -> None:
        self._pcs.append(self._pc)
        self._kinds.append(int(kind))
        self._addresses.append(address)
        self._pc += INSTRUCTION_BYTES

    def alu(self, count: int = 1) -> None:
        """Emit ``count`` single-cycle ALU instructions."""
        for _ in range(count):
            self._emit(OpKind.ALU, None)

    def mul(self, count: int = 1) -> None:
        """Emit ``count`` long-latency multiply instructions."""
        for _ in range(count):
            self._emit(OpKind.MUL, None)

    def load(self, address: int) -> None:
        """Emit a load from byte ``address``."""
        if address < 0:
            raise TraceError(f"negative load address {address}")
        self._emit(OpKind.LOAD, address)

    def store(self, address: int) -> None:
        """Emit a store to byte ``address``."""
        if address < 0:
            raise TraceError(f"negative store address {address}")
        self._emit(OpKind.STORE, address)

    def loop_start(self) -> int:
        """Mark the current PC as a loop-body entry; returns the PC."""
        return self._pc

    def branch(self, back_to: Optional[int] = None) -> None:
        """Emit a branch; ``back_to`` rewinds the PC (a taken back-edge).

        A forward/untaken branch (``back_to=None``) just falls through.
        """
        self._emit(OpKind.BRANCH, None)
        if back_to is not None:
            if back_to < 0:
                raise TraceError(f"negative branch target {back_to}")
            self._pc = back_to

    def call(self, target_pc: int) -> int:
        """Emit a branch to ``target_pc``; returns the return PC.

        Models a function call: subsequent emissions happen at the
        callee's addresses until :meth:`branch` back to the return PC.
        """
        self._emit(OpKind.BRANCH, None)
        return_pc = self._pc
        if target_pc < 0:
            raise TraceError(f"negative call target {target_pc}")
        self._pc = target_pc
        return return_pc

    # ------------------------------------------------------------------
    def build(self) -> Trace:
        """Finalise and return the trace."""
        return Trace(self.name, self._pcs, self._kinds, self._addresses)

    def __len__(self) -> int:
        return len(self._pcs)
