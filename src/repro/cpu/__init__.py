"""Core-side models: instruction traces and the in-order pipeline.

The paper's cores are simple 4-stage in-order machines (§4.1).  We
model them trace-driven: a workload kernel produces a deterministic
dynamic instruction stream (:mod:`repro.cpu.trace`), and the pipeline
model (:mod:`repro.cpu.pipeline`) accounts cycles for it, calling back
into the memory hierarchy for fetch and data access latencies.
"""

from repro.cpu.isa import OpKind, EXEC_LATENCY
from repro.cpu.trace import Trace, TraceBuilder
from repro.cpu.pipeline import InOrderPipeline

__all__ = [
    "OpKind",
    "EXEC_LATENCY",
    "Trace",
    "TraceBuilder",
    "InOrderPipeline",
]
