"""Cycle-accounting model of the 4-stage in-order pipeline.

The paper's cores (§4.1) are 4-stage in-order: **fetch** (1 cycle on an
IL1 hit, memory-path latency on a miss), **decode** (1 cycle),
**memory/execute** (memory operations access the DL1: 1 cycle on hit,
memory-path latency on miss; other operations take their fixed execute
latency) and **write-back** (1 cycle).

Rather than ticking every pipeline register each cycle, the model keeps
the start/completion times of the last instruction in each stage and
applies the in-order dataflow recurrence of a pipeline with
*single-entry stage latches*:

    start_F(i) = max(end_F(i-1), start_D(i-1))   # latch frees when i-1 enters D
    end_F(i)   = start_F(i) + fetch_latency(pc_i, start_F(i))
    start_D(i) = max(end_F(i), start_M(i-1));  end_D(i) = start_D(i) + 1
    start_M(i) = max(end_D(i), start_W(i-1));  end_M(i) = start_M(i) + mem_latency(...)
    start_W(i) = max(end_M(i), end_W(i-1));    end_W(i) = start_W(i) + 1

The latch backpressure (``start_D(i-1)`` / ``start_M(i-1)`` /
``start_W(i-1)`` terms) matters: without it the fetch stream would run
arbitrarily far ahead of a stalled memory stage, which a 4-stage
machine with one instruction per latch physically cannot do — and
which would present shared-resource requests out of time order.
Latencies are supplied by callbacks because they depend on *when* the
access happens (cache state, bus occupancy, EFL stalls).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cpu.isa import EXEC_LATENCY, OpKind, is_memory_op
from repro.errors import SimulationError

#: Execute-stage latency indexed by the integer op kind; ``None`` marks
#: the memory kinds, whose latency is dynamic.  Built once at import so
#: the per-instruction step avoids enum construction and dict lookups.
_EXEC_LATENCY_BY_KIND = [
    EXEC_LATENCY.get(OpKind(value)) if not is_memory_op(value) else None
    for value in sorted(int(k) for k in OpKind)
]

#: STORE as a plain int so the per-instruction step compares ints, not
#: enum members.
_STORE_KIND = int(OpKind.STORE)

#: fetch_latency(pc, time) -> cycles the fetch stage holds the instruction.
FetchLatencyFn = Callable[[int, int], int]
#: mem_latency(address, is_store, time) -> cycles the memory stage holds it.
MemLatencyFn = Callable[[int, bool, int], int]


class InOrderPipeline:
    """Timing state of one 4-stage in-order core.

    Parameters
    ----------
    fetch_latency:
        Callback charged for every instruction fetch.
    mem_latency:
        Callback charged for every LOAD/STORE data access.
    start_time:
        Cycle at which the core leaves reset.
    """

    def __init__(
        self,
        fetch_latency: FetchLatencyFn,
        mem_latency: MemLatencyFn,
        start_time: int = 0,
    ) -> None:
        if start_time < 0:
            raise SimulationError(f"negative start time {start_time}")
        self._fetch_latency = fetch_latency
        self._mem_latency = mem_latency
        self._end_fetch = start_time
        self._start_decode = start_time
        self._start_mem = start_time
        self._start_wb = start_time
        self._end_wb = start_time
        self.instructions = 0

    @property
    def time(self) -> int:
        """Completion cycle of the last retired instruction."""
        return self._end_wb

    @property
    def frontier(self) -> int:
        """Earliest cycle at which the *next* instruction can start fetch.

        The multicore scheduler steps the core whose frontier is
        lowest, which keeps shared-resource requests approximately
        time-ordered across cores.
        """
        return self._end_fetch

    def step(self, pc: int, kind: int, address: Optional[int]) -> int:
        """Advance the pipeline by one dynamic instruction.

        Returns the write-back completion cycle of the instruction.

        This runs once per dynamic instruction — the recurrences use
        conditional expressions instead of ``max()`` calls and compare
        the op kind as a plain int (``repro.sim.reference`` keeps the
        straightforward version for the equivalence tests).
        """
        # Fetch: the fetch latch frees when the previous instruction
        # enters decode (single-entry latch backpressure).
        end_fetch = self._end_fetch
        start_decode_prev = self._start_decode
        start_fetch = end_fetch if end_fetch >= start_decode_prev else start_decode_prev
        end_fetch = start_fetch + self._fetch_latency(pc, start_fetch)
        self._end_fetch = end_fetch

        # Decode: 1 cycle; may not start until the previous instruction
        # vacated the decode latch by entering the memory stage.
        start_mem_prev = self._start_mem
        start_decode = end_fetch if end_fetch >= start_mem_prev else start_mem_prev
        self._start_decode = start_decode
        end_decode = start_decode + 1

        # Memory / execute: blocked until the previous instruction
        # entered write-back.
        start_wb_prev = self._start_wb
        start_mem = end_decode if end_decode >= start_wb_prev else start_wb_prev
        self._start_mem = start_mem
        try:
            fixed = _EXEC_LATENCY_BY_KIND[kind]
        except (IndexError, TypeError):
            raise SimulationError(f"unknown op kind {kind!r}") from None
        if fixed is None:
            latency = self._mem_latency(address, kind == _STORE_KIND, start_mem)
        else:
            latency = fixed
        if latency < 1:
            raise SimulationError(
                f"stage latency must be >= 1 cycle, callback returned {latency}"
            )
        end_mem = start_mem + latency

        # Write-back: 1 cycle, in order.
        end_wb = self._end_wb
        start_wb = end_mem if end_mem >= end_wb else end_wb
        self._start_wb = start_wb
        self._end_wb = start_wb + 1

        self.instructions += 1
        return self._end_wb

    def __repr__(self) -> str:
        return (
            f"InOrderPipeline(time={self._end_wb}, "
            f"instructions={self.instructions})"
        )
