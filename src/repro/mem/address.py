"""Byte-address to cache-line address arithmetic.

All caches in this library index by *line address* (the byte address
divided by the line size).  Keeping the conversion in one place avoids
scattering shift arithmetic — and subtle off-by-one bugs — through the
cache and trace code.
"""

from __future__ import annotations

from repro.utils.validation import require_non_negative_int, require_power_of_two


def line_address(byte_address: int, line_size: int) -> int:
    """Return the cache-line address containing ``byte_address``.

    >>> line_address(0x1234, 16)
    291
    """
    require_non_negative_int("byte_address", byte_address)
    require_power_of_two("line_size", line_size)
    return byte_address >> (line_size.bit_length() - 1)


def block_offset(byte_address: int, line_size: int) -> int:
    """Return the offset of ``byte_address`` within its cache line."""
    require_non_negative_int("byte_address", byte_address)
    require_power_of_two("line_size", line_size)
    return byte_address & (line_size - 1)


def bytes_to_lines(num_bytes: int, line_size: int) -> int:
    """Return how many cache lines are needed to hold ``num_bytes``.

    Rounds up; used by workload kernels to size their footprints.

    >>> bytes_to_lines(100, 16)
    7
    """
    require_non_negative_int("num_bytes", num_bytes)
    require_power_of_two("line_size", line_size)
    return (num_bytes + line_size - 1) // line_size
