"""Main-memory model: a fixed-latency backing store.

The paper's platform uses a 100-cycle memory latency behind an
analysable memory controller.  The memory itself is timing-wise a
constant-latency device; all the interesting contention behaviour
lives in :mod:`repro.mem.memctrl`.
"""

from __future__ import annotations

from repro.utils.validation import require_positive_int


class MainMemory:
    """Constant-latency main memory.

    Tracks demand-read and write-back counts so experiments can report
    memory traffic.
    """

    def __init__(self, latency: int = 100) -> None:
        self.latency = require_positive_int("latency", latency)
        self.reads = 0
        self.writes = 0

    def read(self) -> int:
        """Serve a line fill; returns the access latency in cycles."""
        self.reads += 1
        return self.latency

    def write(self) -> int:
        """Absorb a write-back; returns the access latency in cycles.

        Write-backs are posted (they do not stall the requesting core)
        but they occupy the memory controller, which is accounted for
        by the controller model.
        """
        self.writes += 1
        return self.latency

    def reset(self) -> None:
        """Zero the traffic counters (new run)."""
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        return f"MainMemory(latency={self.latency})"
