"""Analysable memory controller (after Paolieri et al., ESL 2009).

Reference [25] of the paper proposes a memory controller for hard
real-time CMPs whose key property is a *per-request upper bound* on the
delay that requests from other cores can inflict: with ``N`` cores and
a worst-case memory service time ``L``, a demand request waits at most
``(N - 1) * L`` cycles before being served (round-robin among the
cores, one outstanding request each).  This makes memory-side
interference time-composable: the bound holds whatever the co-runners
do, so it can be charged at analysis time once and for all.

The deployment model here keeps that contract:

* **demand reads** queue on the channel, but their queueing delay is
  capped at the round-robin bound ``(N - 1) * L`` — the fairness the
  real controller enforces in hardware (our single ``busy_until``
  serialisation is otherwise FCFS, which would let backlog from a
  memory-hog co-runner accumulate unboundedly and break the bound);
* **write-backs** are posted into a write buffer and drain
  opportunistically with read priority, as real-time controllers do —
  they never delay demand reads.  (If they shared the channel
  naively, a streaming co-runner's write-backs would saturate it and,
  again, break the composable bound.)

Analysis mode charges every read the full worst case
``(N - 1) * L + L`` (see :mod:`repro.sim.memorypath`).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.mem.mainmemory import MainMemory
from repro.utils.validation import require_positive_int


class AnalysableMemoryController:
    """Single-channel memory controller with a composable WCD bound.

    Parameters
    ----------
    num_cores:
        Number of requestors sharing the channel.
    memory:
        The backing :class:`~repro.mem.mainmemory.MainMemory`.
    """

    def __init__(self, num_cores: int, memory: MainMemory) -> None:
        self.num_cores = require_positive_int("num_cores", num_cores)
        self.memory = memory
        self._busy_until = 0
        self.requests = 0
        self.queued = 0
        self.posted_writes = 0

    @property
    def worst_case_wait(self) -> int:
        """The round-robin interference bound: (N - 1) * L cycles."""
        return (self.num_cores - 1) * self.memory.latency

    # ------------------------------------------------------------------
    # deployment mode
    # ------------------------------------------------------------------
    def read(self, core: int, time: int) -> int:
        """Serve a demand fill arriving at ``time``; return completion cycle.

        The start is delayed by current channel occupancy but never by
        more than the round-robin bound — each other core can have at
        most one request in front of this one.
        """
        self._check(core, time)
        self.requests += 1
        start = time if time >= self._busy_until else self._busy_until
        capped = time + self.worst_case_wait
        if start > capped:
            start = capped
        if start > time:
            self.queued += 1
        service = self.memory.read()
        self._busy_until = start + service
        return self._busy_until

    def write_back(self, core: int, time: int) -> int:
        """Post a write-back arriving at ``time``; return its drain cycle.

        Posted writes park in the write buffer and drain behind the
        current channel occupancy; they do **not** extend the occupancy
        demand reads see (read priority).  The requesting core never
        waits for the returned completion.
        """
        self._check(core, time)
        self.requests += 1
        self.posted_writes += 1
        service = self.memory.write()
        start = time if time >= self._busy_until else self._busy_until
        return start + service

    def _check(self, core: int, time: int) -> None:
        if not 0 <= core < self.num_cores:
            raise SimulationError(f"memory request from unknown core {core}")
        if time < 0:
            raise SimulationError(f"memory request at negative time {time}")

    # ------------------------------------------------------------------
    # analysis mode
    # ------------------------------------------------------------------
    def worst_case_completion(self, time: int) -> int:
        """Charge the composable worst case: wait for N-1 rounds, then serve.

        The returned completion time is ``time + N * L`` where ``L`` is
        the memory latency — the bound of [25] that deployment-mode
        :meth:`read` respects by construction.
        """
        self.requests += 1
        self.memory.reads += 1
        return time + self.num_cores * self.memory.latency

    def worst_case_writeback(self, time: int) -> int:
        """Analysis-time accounting for a posted write-back.

        Posted writes do not stall the analysed core, and with read
        priority they do not delay its demand reads either, so they
        add no latency at analysis time.
        """
        self.memory.writes += 1
        return time

    def reset(self) -> None:
        """Clear occupancy and counters (new run)."""
        self._busy_until = 0
        self.requests = 0
        self.queued = 0
        self.posted_writes = 0

    def __repr__(self) -> str:
        return (
            f"AnalysableMemoryController(num_cores={self.num_cores}, "
            f"memory={self.memory!r})"
        )
