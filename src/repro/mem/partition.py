"""Hardware way-partitioned shared LLC — the CP baseline.

Hardware cache partitioning (Paolieri et al., ISCA 2009 — reference
[24]) assigns each core a disjoint subset of the LLC's ways.  A core
may only hit in, and allocate into, its own ways, so co-running tasks
cannot evict each other's lines.  The price is the one the paper
argues against: each task sees only ``w`` ways of associativity (and
``w/W`` of the capacity), partitions must be flushed when reassigned,
and data sharing across partitions is impossible.

:class:`PartitionedLLC` wraps a single :class:`~repro.mem.cache.Cache`
and routes each core's accesses to its assigned ways.  Because lookup
and victim selection are confined to the partition, a core's partition
behaves exactly like a private cache with the same sets and ``w`` ways
— a property the test-suite asserts and the analysis layer exploits
(isolation analysis of CP-w runs against a plain ``w``-way cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.mem.cache import AccessResult, Cache, Eviction


@dataclass(frozen=True)
class WayPartition:
    """An assignment of LLC ways to cores.

    ``ways_per_core`` maps a core id to the tuple of way indices that
    core owns.  Partitions must be disjoint; they need not cover every
    way (leaving ways unused models partition sizes that do not fill
    the cache, e.g. four 1-way partitions of an 8-way LLC).

    >>> WayPartition.even(num_cores=4, total_ways=8).ways_for(0)
    (0, 1)
    """

    ways_per_core: Dict[int, Tuple[int, ...]]

    def __post_init__(self) -> None:
        seen = set()
        for core, ways in self.ways_per_core.items():
            if not ways:
                raise ConfigurationError(f"core {core} assigned an empty partition")
            for way in ways:
                if way in seen:
                    raise ConfigurationError(
                        f"way {way} assigned to more than one core"
                    )
                if way < 0:
                    raise ConfigurationError(f"negative way index {way}")
                seen.add(way)

    @classmethod
    def even(cls, num_cores: int, total_ways: int) -> "WayPartition":
        """Split ``total_ways`` evenly across ``num_cores`` (CP-w setup).

        This is the paper's CP2 reference configuration when called
        with 4 cores and 8 ways.
        """
        if num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        if total_ways % num_cores:
            raise ConfigurationError(
                f"{total_ways} ways do not divide evenly across {num_cores} cores"
            )
        per = total_ways // num_cores
        return cls(
            {
                core: tuple(range(core * per, (core + 1) * per))
                for core in range(num_cores)
            }
        )

    @classmethod
    def from_counts(cls, counts: Sequence[int], total_ways: int) -> "WayPartition":
        """Build a partition giving ``counts[i]`` consecutive ways to core i.

        Raises if the counts exceed ``total_ways``.  Used by the CP
        partition optimiser to materialise candidate assignments.
        """
        if sum(counts) > total_ways:
            raise ConfigurationError(
                f"partition counts {list(counts)} exceed {total_ways} ways"
            )
        ways_per_core = {}
        next_way = 0
        for core, count in enumerate(counts):
            if count <= 0:
                raise ConfigurationError(
                    f"core {core} assigned non-positive way count {count}"
                )
            ways_per_core[core] = tuple(range(next_way, next_way + count))
            next_way += count
        return cls(ways_per_core)

    def ways_for(self, core: int) -> Tuple[int, ...]:
        """Return the way tuple owned by ``core``."""
        try:
            return self.ways_per_core[core]
        except KeyError:
            raise ConfigurationError(f"core {core} has no partition") from None

    @property
    def counts(self) -> Dict[int, int]:
        """Map core id -> number of ways assigned."""
        return {core: len(ways) for core, ways in self.ways_per_core.items()}


class PartitionedLLC:
    """A shared LLC whose ways are statically partitioned across cores.

    Exposes the same probe/access/force_eviction surface as
    :class:`~repro.mem.cache.Cache` with an explicit ``core`` argument;
    the simulator treats partitioned and fully shared LLCs uniformly
    through :class:`SharedLLCView` adapters.
    """

    def __init__(self, cache: Cache, partition: WayPartition) -> None:
        max_way = max(
            way for ways in partition.ways_per_core.values() for way in ways
        )
        if max_way >= cache.geometry.ways:
            raise ConfigurationError(
                f"partition references way {max_way} but LLC has only "
                f"{cache.geometry.ways} ways"
            )
        self.cache = cache
        self.partition = partition
        # core -> way tuple, resolved once: partitions are immutable for
        # the object's lifetime and this lookup sits on the per-access
        # hot path.
        self._ways_by_core: Dict[int, Tuple[int, ...]] = dict(
            partition.ways_per_core
        )

    def _ways(self, core: int) -> Tuple[int, ...]:
        ways = self._ways_by_core.get(core)
        if ways is None:
            # Delegate for the ConfigurationError message.
            return self.partition.ways_for(core)
        return ways

    def probe(self, core: int, line: int) -> bool:
        """Whether ``line`` is resident in ``core``'s partition."""
        return self.cache.probe(line, ways=self._ways(core))

    def access(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Demand access confined to ``core``'s partition."""
        return self.cache.access(line, write=write, ways=self._ways(core))

    def force_eviction(self, core: int, set_index: int) -> Eviction:
        """Forced eviction confined to ``core``'s partition."""
        return self.cache.force_eviction(set_index, ways=self._ways(core))

    def flush_partition(self, core: int) -> list:
        """Flush only ``core``'s ways (partition reassignment, §2.2).

        Returns the dirty lines written back.  This is the consistency
        flush the paper notes hardware partitioning needs whenever a
        task is given a different partition than it last used.
        Delegates to :meth:`~repro.mem.cache.Cache.flush` so partial
        and full flushes share one accounting path (one ``evictions``
        per valid line displaced, one ``writebacks`` per dirty one).
        """
        return self.cache.flush(ways=self._ways(core))

    def __repr__(self) -> str:
        return f"PartitionedLLC({self.cache!r}, counts={self.partition.counts})"
