"""Shared bus with random arbitration between the cores and the LLC.

The paper's platform (§4.1) connects the cores to the shared LLC over a
bus with a 2-cycle access latency and a *random* arbitration policy
(Jalle et al., DATE 2014 — reference [13]).  Random arbitration is the
bus-side analogue of time-randomised caches: which core wins a
contended cycle is a random event, so the delay a request suffers is a
random variable that MBPTA can capture, and at analysis time it can be
upper-bounded per-request for time composability.

Three entry points, matching how the bus is exercised:

* :meth:`SharedBus.request` — deployment-mode service of one request.
  The simulator steps cores in time order, so requests reach the bus
  (almost) in arrival order and service is first-come-first-served;
  genuinely simultaneous arrivals are tie-broken by the lottery.
* :meth:`SharedBus.arbitrate` — the hardware lottery itself: given a
  batch of simultaneous requests, grant them in a random order.  This
  is the primitive :meth:`request` falls back on for ties, exposed for
  direct use and testing.
* :meth:`SharedBus.worst_case_completion` — analysis mode: the
  time-composable upper bound of [13], losing one round to every other
  core (``(num_cores - 1) * latency`` extra cycles).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.utils.rng import MultiplyWithCarry
from repro.utils.validation import require_positive_int


class SharedBus:
    """Core-to-LLC bus with lottery arbitration.

    Parameters
    ----------
    num_cores:
        Number of requestors.
    latency:
        Cycles one transfer occupies the bus (2 in the paper).
    rng:
        Hardware PRNG used for lottery draws.
    """

    def __init__(self, num_cores: int, latency: int, rng: MultiplyWithCarry) -> None:
        self.num_cores = require_positive_int("num_cores", num_cores)
        self.latency = require_positive_int("latency", latency)
        self._rng = rng
        self._busy_until = 0
        #: pending same-cycle arrivals: (arrival_time, core) — only
        #: populated transiently inside arbitrate().
        self.granted = 0
        self.contended = 0

    def _check(self, core: int, time: int) -> None:
        if not 0 <= core < self.num_cores:
            raise SimulationError(f"bus request from unknown core {core}")
        if time < 0:
            raise SimulationError(f"bus request at negative time {time}")

    # ------------------------------------------------------------------
    # deployment mode
    # ------------------------------------------------------------------
    def request(self, core: int, time: int) -> int:
        """Serve one transfer for ``core`` arriving at ``time``.

        Returns the completion cycle.  If the bus is busy the request
        waits for it (first-come-first-served — the simulator delivers
        requests in near-arrival order, so FCFS and lottery coincide
        except for exact ties, which callers with genuinely
        simultaneous requests should resolve via :meth:`arbitrate`).
        """
        self._check(core, time)
        self.granted += 1
        start = time if time >= self._busy_until else self._busy_until
        if start > time:
            self.contended += 1
        self._busy_until = start + self.latency
        return self._busy_until

    def arbitrate(self, requests: Sequence[Tuple[int, int]]) -> Dict[int, int]:
        """Lottery-arbitrate a batch of requests.

        ``requests`` is a sequence of ``(core, arrival_time)`` pairs.
        In every round, one of the requests that have already arrived
        (and not yet been served) wins a uniform lottery draw and
        occupies the bus for one transfer; the rest wait.  Returns a
        map ``core -> completion cycle``.  A core may appear only once
        per batch.
        """
        pending: List[Tuple[int, int]] = []
        seen = set()
        for core, time in requests:
            self._check(core, time)
            if core in seen:
                raise SimulationError(f"core {core} appears twice in one batch")
            seen.add(core)
            pending.append((time, core))
        completions: Dict[int, int] = {}
        while pending:
            # The next round starts when the bus is free AND at least
            # one request has arrived; requests tied at that instant
            # enter the lottery together.
            earliest = min(t for t, _c in pending)
            round_start = max(self._busy_until, earliest)
            eligible = [i for i, (t, _c) in enumerate(pending) if t <= round_start]
            if len(eligible) == 1:
                winner = eligible[0]
            else:
                winner = eligible[self._rng.randrange(len(eligible))]
                self.contended += len(eligible) - 1
            _arrival, core = pending.pop(winner)
            self._busy_until = round_start + self.latency
            completions[core] = self._busy_until
            self.granted += 1
        return completions

    # ------------------------------------------------------------------
    # analysis mode
    # ------------------------------------------------------------------
    def worst_case_completion(self, time: int) -> int:
        """Analysis-time upper bound: lose one round to every other core.

        The request waits ``(num_cores - 1) * latency`` cycles (every
        competitor is served once) and then occupies the bus for
        ``latency`` cycles.
        """
        if time < 0:
            raise SimulationError(f"bus request at negative time {time}")
        return time + self.num_cores * self.latency

    def reset(self) -> None:
        """Clear occupancy and counters (new run)."""
        self._busy_until = 0
        self.granted = 0
        self.contended = 0

    def __repr__(self) -> str:
        return f"SharedBus(num_cores={self.num_cores}, latency={self.latency})"
