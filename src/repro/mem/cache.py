"""Set-associative cache model with pluggable placement and replacement.

One :class:`Cache` class models every cache in the paper's platform:

* the per-core IL1/DL1 (4KB, 4-way, 16B lines, random placement +
  Evict-on-Miss random replacement);
* the shared LLC (64KB, 8-way, same policies);
* time-deterministic variants (modulo placement + LRU) for the TD
  baseline and ablations.

The model is *content-free*: it tracks which line addresses are
resident and whether they are dirty, which is everything timing
analysis needs.  All caches are write-back and write-allocate (the
paper's setup); a write-through mode is provided for the A2 ablation
(footnote 5 of the paper).

Two-phase access
----------------
EFL must know whether an LLC request would miss *before* allowing the
eviction to happen (misses stall until the eviction-allowed bit is
set, hits proceed immediately).  The cache therefore exposes
:meth:`Cache.probe` — a pure query with no side effects — alongside
:meth:`Cache.access`, which performs the full hit/miss/evict/fill
transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.utils.validation import require_power_of_two


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of a cache.

    Parameters mirror the paper's tables: total size in bytes,
    line size in bytes and associativity (ways).  The number of sets is
    derived and must come out to a positive power of two.

    >>> CacheGeometry(size_bytes=4096, line_size=16, ways=4).num_sets
    64
    >>> CacheGeometry(size_bytes=65536, line_size=16, ways=8).num_sets
    512
    """

    size_bytes: int
    line_size: int
    ways: int

    def __post_init__(self) -> None:
        require_power_of_two("size_bytes", self.size_bytes)
        require_power_of_two("line_size", self.line_size)
        require_power_of_two("ways", self.ways)
        if self.size_bytes < self.line_size * self.ways:
            raise ConfigurationError(
                f"cache of {self.size_bytes}B cannot hold {self.ways} ways "
                f"of {self.line_size}B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (line_size * ways))."""
        return self.size_bytes // (self.line_size * self.ways)

    @property
    def num_lines(self) -> int:
        """Total number of line frames in the cache."""
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class Eviction:
    """A line evicted from a cache.

    ``dirty`` evictions cost a write-back on the memory path; clean
    evictions are silent.  ``line`` is ``None`` for *forced* evictions
    that hit an empty way (the CRG's artificial requests always consume
    the core's eviction budget even then, but produce no write-back).
    """

    line: Optional[int]
    dirty: bool


class AccessResult:
    """Outcome of one cache access.

    A plain slotted class (not a dataclass): one instance is created
    per demand access on the simulator's hottest path.

    Attributes
    ----------
    hit:
        Whether the requested line was resident.
    set_index:
        The set the request mapped to.
    eviction:
        The displaced line if the fill replaced a valid line, else
        ``None``.  Misses into an invalid way evict nothing.
    """

    __slots__ = ("hit", "set_index", "eviction")

    def __init__(self, hit: bool, set_index: int, eviction: Optional[Eviction]) -> None:
        self.hit = hit
        self.set_index = set_index
        self.eviction = eviction

    def __repr__(self) -> str:
        return (
            f"AccessResult(hit={self.hit}, set_index={self.set_index}, "
            f"eviction={self.eviction})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.hit == other.hit
            and self.set_index == other.set_index
            and self.eviction == other.eviction
        )


class CacheStats:
    """Running counters for one cache instance.

    Accounting invariant (asserted by the stats-conservation tests):
    no matter which path removes a line — a demand miss's replacement
    (:meth:`Cache.access`), a CRG force-miss
    (:meth:`Cache.force_eviction`), an explicit
    :meth:`Cache.invalidate`, or a :meth:`Cache.flush` (full or
    way-restricted, as used by partition reassignment) —

    * ``evictions``  == total valid lines displaced, and
    * ``writebacks`` == total *dirty* lines displaced.

    ``forced_evictions`` additionally counts every CRG force-miss
    request, including those whose victim draw landed on an invalid
    frame (the eviction budget is consumed even then).
    """

    __slots__ = ("hits", "misses", "evictions", "writebacks", "forced_evictions")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.forced_evictions = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over demand accesses (0.0 if no accesses yet)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, writebacks={self.writebacks})"
        )


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Parameters
    ----------
    geometry:
        The cache shape (:class:`CacheGeometry`).
    placement:
        A placement policy (:class:`~repro.mem.placement.ModuloPlacement`
        or :class:`~repro.mem.placement.RandomPlacement`); its
        ``num_sets`` must match the geometry.
    replacement:
        A replacement policy (:class:`~repro.mem.replacement.EvictOnMissRandom`
        or :class:`~repro.mem.replacement.LRUReplacement`).
    name:
        Label used in reprs and error messages (e.g. ``"DL1[2]"``).
    write_back:
        ``True`` (default) for write-back as in the paper; ``False``
        models a write-through cache for the A2 ablation, in which case
        stores never mark lines dirty (every store is forwarded to the
        next level by the caller).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        placement,
        replacement,
        name: str = "cache",
        write_back: bool = True,
    ) -> None:
        if placement.num_sets != geometry.num_sets:
            raise ConfigurationError(
                f"{name}: placement covers {placement.num_sets} sets but the "
                f"geometry has {geometry.num_sets}"
            )
        self.geometry = geometry
        self.placement = placement
        self.replacement = replacement
        self.name = name
        self.write_back = write_back
        self.stats = CacheStats()
        replacement.attach(geometry.num_sets, geometry.ways)
        ways = geometry.ways
        self._tags = [[None] * ways for _ in range(geometry.num_sets)]
        self._dirty = [[False] * ways for _ in range(geometry.num_sets)]
        self._all_ways: Tuple[int, ...] = tuple(range(ways))
        # EoM replacement is stateless: hits and fills need no policy
        # callback, which the hot access path exploits.
        self._stateless_repl = bool(getattr(replacement, "is_randomised", False))
        # With a stateless policy the victim draw is inlined into the
        # miss path (no choose_victim() dispatch); the draw itself must
        # stay bit-identical to EvictOnMissRandom.choose_victim.
        self._repl_rng = getattr(replacement, "_rng", None)
        self._eom_fast = self._stateless_repl and self._repl_rng is not None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def set_of(self, line: int) -> int:
        """Return the set index ``line`` maps to under the current RII."""
        return self.placement.set_index(line)

    def probe(self, line: int, ways: Optional[Sequence[int]] = None) -> bool:
        """Return whether ``line`` is resident, without side effects.

        ``ways`` optionally restricts the search to a subset of ways
        (used by the way-partitioned LLC).  No statistics or
        replacement metadata are updated.
        """
        set_index = self.placement.set_index(line)
        tags = self._tags[set_index]
        for way in (ways if ways is not None else self._all_ways):
            if tags[way] == line:
                return True
        return False

    def resident_lines(self) -> set:
        """Return the set of all line addresses currently resident."""
        return {
            tag
            for set_tags in self._tags
            for tag in set_tags
            if tag is not None
        }

    def occupancy(self) -> int:
        """Return the number of valid lines currently held."""
        return sum(
            1 for set_tags in self._tags for tag in set_tags if tag is not None
        )

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def access(
        self,
        line: int,
        write: bool = False,
        ways: Optional[Sequence[int]] = None,
    ) -> AccessResult:
        """Perform a demand access for ``line``.

        On a hit the replacement policy is notified (a no-op for EoM)
        and, for write-back caches, a write marks the line dirty.  On a
        miss the line is allocated (write-allocate), displacing a
        victim chosen by the replacement policy among ``ways`` (all
        ways when ``None``).

        Returns an :class:`AccessResult`; the caller charges latencies
        and propagates the eviction's write-back.

        This is the hottest transaction in the simulator (once per L1
        access, twice per LLC transaction); callers passing ``ways``
        should pass a *tuple* so the candidate set needs no per-access
        re-allocation.  ``repro.sim.reference`` preserves the
        unoptimised implementation for equivalence tests and the
        single-run benchmark.
        """
        set_index = self.placement.set_index(line)
        tags = self._tags[set_index]
        if ways is None:
            candidates = self._all_ways
        elif type(ways) is tuple:
            candidates = ways
        else:
            candidates = tuple(ways)
        stats = self.stats
        for way in candidates:
            if tags[way] == line:
                stats.hits += 1
                if not self._stateless_repl:
                    self.replacement.on_hit(set_index, way)
                if write and self.write_back:
                    self._dirty[set_index][way] = True
                return AccessResult(True, set_index, None)

        # Miss path: the replacement policy picks the victim way.  EoM
        # random replacement draws uniformly over the candidate ways
        # *regardless of validity* — real TR hardware does not special-
        # case invalid frames, and Equation 1's derivation assumes
        # every miss performs a victim draw.  (LRU naturally returns
        # invalid ways first because invalidation demotes them.)
        stats.misses += 1
        eviction = None
        target_way = self._choose_victim(set_index, candidates)
        victim_line = tags[target_way]
        if victim_line is not None:
            victim_dirty = self._dirty[set_index][target_way]
            eviction = Eviction(line=victim_line, dirty=victim_dirty)
            stats.evictions += 1
            if victim_dirty:
                stats.writebacks += 1
        tags[target_way] = line
        self._dirty[set_index][target_way] = bool(write and self.write_back)
        if not self._stateless_repl:
            self.replacement.on_fill(set_index, target_way)
        return AccessResult(False, set_index, eviction)

    def _choose_victim(self, set_index: int, candidates: Tuple[int, ...]) -> int:
        """Victim draw, inlining the stateless (EoM) fast path.

        Bit-identical to ``replacement.choose_victim``: the same single
        ``randrange(len(candidates))`` draw in the same cases, so the
        hardware PRNG stream is unchanged.
        """
        if self._eom_fast:
            n = len(candidates)
            if n > 1:
                return candidates[self._repl_rng.randrange(n)]
            if n:
                return candidates[0]
            raise SimulationError("choose_victim called with no candidate ways")
        return self.replacement.choose_victim(set_index, candidates)

    def _displace(self, set_index: int, way: int) -> Optional[Eviction]:
        """Remove the line in ``(set_index, way)``, if any.

        The single bookkeeping point for every *removal* path
        (invalidate, flush, forced eviction): clears the frame, demotes
        the way in the replacement metadata and keeps the
        :class:`CacheStats` accounting invariant — one ``evictions``
        per valid line displaced, one ``writebacks`` per dirty line
        displaced.  Returns the eviction record, or ``None`` when the
        frame was already invalid.
        """
        tags = self._tags[set_index]
        line = tags[way]
        if line is None:
            return None
        dirty = self._dirty[set_index][way]
        tags[way] = None
        self._dirty[set_index][way] = False
        self.replacement.on_invalidate(set_index, way)
        self.stats.evictions += 1
        if dirty:
            self.stats.writebacks += 1
        return Eviction(line=line, dirty=dirty)

    def force_eviction(self, set_index: int, ways: Optional[Sequence[int]] = None) -> Eviction:
        """Evict the replacement policy's victim from ``set_index``.

        This implements the CRG's artificial force-miss requests
        (§3.5): the request behaves like a miss — it consumes an
        eviction slot and displaces a line — but allocates nothing
        (there is no real data behind it, the line frame is simply
        invalidated).  If the chosen way is invalid the eviction is
        recorded but displaces nothing.
        """
        if not 0 <= set_index < self.geometry.num_sets:
            raise SimulationError(
                f"{self.name}: set index {set_index} out of range"
            )
        if ways is None:
            candidates = self._all_ways
        elif type(ways) is tuple:
            candidates = ways
        else:
            candidates = tuple(ways)
        way = self._choose_victim(set_index, candidates)
        self.stats.forced_evictions += 1
        eviction = self._displace(set_index, way)
        return eviction if eviction is not None else Eviction(line=None, dirty=False)

    def invalidate(self, line: int) -> Optional[Eviction]:
        """Remove ``line`` if resident; return its eviction record."""
        set_index = self.placement.set_index(line)
        tags = self._tags[set_index]
        for way in self._all_ways:
            if tags[way] == line:
                return self._displace(set_index, way)
        return None

    def flush(self, ways: Optional[Sequence[int]] = None) -> list:
        """Invalidate every line (in ``ways``, or everywhere).

        Returns the dirty lines written back.  ``ways`` restricts the
        flush to a subset of ways — this is how the way-partitioned LLC
        flushes one core's partition on reassignment, so the same stats
        accounting applies to full and partial flushes.
        """
        if ways is None:
            target_ways = self._all_ways
        else:
            target_ways = tuple(ways)
            for way in target_ways:
                if not 0 <= way < self.geometry.ways:
                    raise SimulationError(
                        f"{self.name}: flush way {way} out of range"
                    )
        written_back = []
        for set_index in range(self.geometry.num_sets):
            for way in target_ways:
                eviction = self._displace(set_index, way)
                if eviction is not None and eviction.dirty:
                    written_back.append(eviction)
        return written_back

    def new_rii(self, rii: int) -> list:
        """Install a new RII on a random-placement cache and flush.

        Returns the write-backs produced by the flush.  Raises
        :class:`~repro.errors.ConfigurationError` when called on a
        modulo-placement cache, which has no RII.
        """
        if not getattr(self.placement, "is_randomised", False):
            raise ConfigurationError(
                f"{self.name}: new_rii() on non-randomised placement"
            )
        written_back = self.flush()
        self.placement.set_rii(rii)
        return written_back

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"Cache({self.name!r}, {g.size_bytes}B, {g.ways}-way, "
            f"{g.line_size}B lines, {self.placement!r}, {self.replacement!r})"
        )
