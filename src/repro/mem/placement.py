"""Cache placement policies: modulo (TD) and random parametric hash (TR).

Placement decides the *set* an address maps to.  The distinction
between the two policies is the heart of the paper:

* **Modulo placement** (time-deterministic): the set is a fixed
  function of the address bits.  Two tasks interfere only if their
  addresses collide in a set — which depends on memory layout, making
  inter-task interference layout-dependent and hard to bound.
* **Random placement** (time-randomised, after Kosmidis et al. [15]):
  a parametric hash of the address and a per-execution random index
  identifier (RII) picks the set.  Changing the RII re-randomises the
  whole layout, which removes the dependence between addresses and
  sets; interference then depends only on *how often* co-runners evict,
  which is exactly what EFL controls.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.hashing import ParametricHash, set_index_array
from repro.utils.validation import require_non_negative_int, require_positive_int


class ModuloPlacement:
    """Time-deterministic placement: ``set = line_address mod num_sets``."""

    is_randomised = False

    def __init__(self, num_sets: int) -> None:
        self.num_sets = require_positive_int("num_sets", num_sets)

    def set_index(self, line_addr: int) -> int:
        """Return the set for ``line_addr``."""
        return line_addr % self.num_sets

    def set_index_array(self, line_addrs) -> np.ndarray:
        """Vectorised :meth:`set_index` over an array of line addresses."""
        return (np.asarray(line_addrs, dtype=np.int64) % self.num_sets).astype(
            np.int64
        )

    def __repr__(self) -> str:
        return f"ModuloPlacement(num_sets={self.num_sets})"


class RandomPlacement:
    """Time-randomised placement via a parametric hash and an RII.

    The RII is expected to change at execution boundaries (per run); the
    cache owning this policy must be flushed when that happens, which
    :meth:`repro.mem.cache.Cache.new_rii` takes care of.

    >>> p = RandomPlacement(64, rii=12345)
    >>> p.set_index(100) == p.set_index(100)
    True
    """

    is_randomised = True

    def __init__(self, num_sets: int, rii: int = 0) -> None:
        self._hash = ParametricHash(require_positive_int("num_sets", num_sets))
        self.num_sets = num_sets
        self.rii = require_non_negative_int("rii", rii)
        # Per-RII memo of line -> set.  The hash is pure in (rii, line),
        # and a trace touches the same few hundred lines millions of
        # times per run, so memoising it removes the big-int hash
        # arithmetic from the hot path entirely.  set_rii() clears it.
        self._memo: dict = {}

    def set_index(self, line_addr: int) -> int:
        """Return the set for ``line_addr`` under the current RII.

        The parametric-hash computation is inlined here (identical to
        :meth:`repro.utils.hashing.ParametricHash.set_index`, which the
        tests assert) because this is the hottest function in the whole
        simulator, and memoised per (RII, line).
        """
        index = self._memo.get(line_addr)
        if index is None:
            key = (line_addr * 0x9E3779B97F4A7C15 + self.rii * 0xC2B2AE3D27D4EB4F) \
                & 0xFFFFFFFFFFFFFFFF
            z = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
            z = (z ^ (z >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
            index = ((z ^ (z >> 31)) * self.num_sets) >> 64
            self._memo[line_addr] = index
        return index

    def set_index_array(self, line_addrs, riis=None) -> np.ndarray:
        """Vectorised :meth:`set_index`, optionally over many RIIs.

        ``riis`` defaults to this instance's RII; passing an array of
        per-run RIIs (broadcast against ``line_addrs``) computes the
        whole placement matrix of a batch campaign in one call.
        """
        if riis is None:
            riis = self.rii
        return set_index_array(line_addrs, riis, self.num_sets)

    def set_rii(self, rii: int) -> None:
        """Install a new random index identifier.

        The owning cache is responsible for flushing its contents: after
        an RII change the old contents sit in sets the new mapping will
        never look in, so keeping them would break consistency (the
        scenario §3.2 of the paper calls out).  The set-index memo is
        invalidated here — it is only valid for one RII.
        """
        self.rii = require_non_negative_int("rii", rii)
        self._memo.clear()

    def __repr__(self) -> str:
        return f"RandomPlacement(num_sets={self.num_sets}, rii={self.rii})"


def make_placement(kind: str, num_sets: int, rii: int = 0):
    """Factory mapping a policy name to a placement instance.

    ``kind`` is ``"modulo"`` or ``"random"``; anything else raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if kind == "modulo":
        return ModuloPlacement(num_sets)
    if kind == "random":
        return RandomPlacement(num_sets, rii)
    raise ConfigurationError(f"unknown placement kind {kind!r}")
