"""Memory-hierarchy models.

This subpackage provides every storage-side substrate the paper's
evaluation platform needs:

* time-randomised (TR) and time-deterministic (TD) set-associative
  caches built from pluggable placement and replacement policies
  (:mod:`repro.mem.cache`, :mod:`repro.mem.placement`,
  :mod:`repro.mem.replacement`);
* a hardware way-partitioned shared LLC — the CP baseline
  (:mod:`repro.mem.partition`);
* a shared bus with random arbitration (:mod:`repro.mem.bus`);
* an analysable memory controller and main-memory model
  (:mod:`repro.mem.memctrl`, :mod:`repro.mem.mainmemory`).
"""

from repro.mem.address import line_address, block_offset, bytes_to_lines
from repro.mem.placement import ModuloPlacement, RandomPlacement
from repro.mem.replacement import EvictOnMissRandom, LRUReplacement
from repro.mem.cache import Cache, CacheGeometry, AccessResult, Eviction
from repro.mem.partition import PartitionedLLC, WayPartition
from repro.mem.bus import SharedBus
from repro.mem.mainmemory import MainMemory
from repro.mem.memctrl import AnalysableMemoryController

__all__ = [
    "line_address",
    "block_offset",
    "bytes_to_lines",
    "ModuloPlacement",
    "RandomPlacement",
    "EvictOnMissRandom",
    "LRUReplacement",
    "Cache",
    "CacheGeometry",
    "AccessResult",
    "Eviction",
    "PartitionedLLC",
    "WayPartition",
    "SharedBus",
    "MainMemory",
    "AnalysableMemoryController",
]
