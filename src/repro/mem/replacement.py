"""Cache replacement policies: Evict-on-Miss random (TR) and LRU (TD).

Replacement decides the *way* a new line occupies within its set.

* **Evict-on-Miss (EoM) random replacement** is the policy the paper's
  analysis depends on.  It is *stateless*: a hit changes nothing, and
  on a miss the victim way is drawn uniformly at random.  Statelessness
  is what makes eviction *frequency* the only channel through which
  co-runners can disturb a task (§3.3), which in turn is what EFL
  throttles.
* **LRU** is the conventional time-deterministic policy, provided as a
  substrate for the TD baseline discussions and the A3 ablation.  Hits
  *do* mutate its recency stack, so co-runner hits already perturb
  state — one reason TD shared caches are so hard to analyse.

A policy instance manages the metadata for every set of one cache; the
cache calls ``on_fill``/``on_hit``/``choose_victim`` with the set index
and way, restricted to an explicit tuple of candidate ways so the same
policies serve way-partitioned caches unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.utils.rng import MultiplyWithCarry
from repro.utils.validation import require_positive_int


class EvictOnMissRandom:
    """Stateless random replacement (Evict-on-Miss).

    Parameters
    ----------
    rng:
        The hardware PRNG to draw victims from.  Real TR caches embed
        an MWC PRNG for exactly this purpose (§3.5).
    """

    is_randomised = True

    def __init__(self, rng: MultiplyWithCarry) -> None:
        self._rng = rng

    def attach(self, num_sets: int, num_ways: int) -> None:
        """Called by the owning cache; EoM keeps no per-set state."""

    def on_hit(self, set_index: int, way: int) -> None:
        """Hits do not alter any replacement state under EoM."""

    def on_fill(self, set_index: int, way: int) -> None:
        """Fills do not create replacement state under EoM."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Invalidations do not alter replacement state under EoM."""

    def choose_victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        """Return a victim way drawn uniformly from ``candidate_ways``."""
        if not candidate_ways:
            raise SimulationError("choose_victim called with no candidate ways")
        if len(candidate_ways) == 1:
            return candidate_ways[0]
        return candidate_ways[self._rng.randrange(len(candidate_ways))]

    def __repr__(self) -> str:
        return "EvictOnMissRandom()"


class LRUReplacement:
    """Least-recently-used replacement (time-deterministic baseline).

    Keeps, per set, a list of ways ordered from most- to
    least-recently used.  ``choose_victim`` returns the least recently
    used way among the candidates.
    """

    is_randomised = False

    def __init__(self) -> None:
        self._recency = None  # type: list | None

    def attach(self, num_sets: int, num_ways: int) -> None:
        """Allocate the per-set recency stacks."""
        require_positive_int("num_sets", num_sets)
        require_positive_int("num_ways", num_ways)
        self._recency = [list(range(num_ways)) for _ in range(num_sets)]

    def _stack(self, set_index: int) -> list:
        if self._recency is None:
            raise SimulationError("LRUReplacement used before attach()")
        return self._recency[set_index]

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._stack(set_index)
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_index: int, way: int) -> None:
        """Move the hit way to the most-recently-used position."""
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        """A freshly filled line becomes the most recently used."""
        self._touch(set_index, way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Demote an invalidated way to least-recently-used."""
        stack = self._stack(set_index)
        stack.remove(way)
        stack.append(way)

    def choose_victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        """Return the least-recently-used way among ``candidate_ways``."""
        if not candidate_ways:
            raise SimulationError("choose_victim called with no candidate ways")
        allowed = set(candidate_ways)
        for way in reversed(self._stack(set_index)):
            if way in allowed:
                return way
        raise SimulationError(
            f"candidate ways {candidate_ways!r} not present in set {set_index}"
        )

    def __repr__(self) -> str:
        return "LRUReplacement()"


def make_replacement(kind: str, rng: MultiplyWithCarry = None):
    """Factory mapping a policy name to a replacement instance.

    ``kind`` is ``"eom"`` (requires ``rng``) or ``"lru"``.
    """
    if kind == "eom":
        if rng is None:
            raise ConfigurationError("EoM random replacement requires a PRNG")
        return EvictOnMissRandom(rng)
    if kind == "lru":
        return LRUReplacement()
    raise ConfigurationError(f"unknown replacement kind {kind!r}")
