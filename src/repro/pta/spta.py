"""Static probabilistic timing analysis (SPTA) for TR caches.

MBPTA (the paper's method) measures; *static* PTA derives the same
kind of probabilistic guarantees analytically from the reference
stream.  For time-randomised caches this is tractable precisely
because of the property §3.2 establishes: every access has a hit/miss
*probability* determined by its reuse distance and the cache shape —
not by concrete addresses.

This module implements the standard SPTA pipeline for one
set-associative TR cache level:

1. :func:`reuse_distances` — per access, the number of distinct lines
   touched since its previous access to the same line;
2. :func:`access_miss_probabilities` — a fixed-point iteration of the
   exact Equation 1 model (:func:`repro.pta.eq1.miss_probability_exact`)
   over the stream: each access's miss probability depends on the miss
   probabilities of the distinct lines in its reuse window;
3. :func:`execution_time_distribution` — the exact Poisson-binomial
   distribution of total access time under per-access independence,
   as an :class:`~repro.pta.etp.ExecutionTimeProfile`;
4. :func:`static_pwcet` — its quantile at an exceedance probability.

The per-access independence assumption makes 3-4 an approximation of
the simulated cache (dependencies exist through shared victims); the
tests quantify the gap on sweep workloads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError
from repro.pta.eq1 import miss_probability_exact
from repro.pta.etp import ExecutionTimeProfile
from repro.utils.validation import require_positive_int


def reuse_distances(lines: Sequence[int]) -> List[Optional[int]]:
    """Per-access reuse distance of a line-address stream.

    The reuse distance of an access is the number of *distinct* lines
    referenced since the previous access to the same line; ``None``
    marks cold (first) accesses.

    >>> reuse_distances([1, 2, 3, 1, 1])
    [None, None, None, 2, 0]
    """
    last_position = {}
    distances: List[Optional[int]] = []
    for index, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            distances.append(None)
        else:
            window = set(lines[previous + 1:index])
            window.discard(line)
            distances.append(len(window))
        last_position[line] = index
    return distances


def access_miss_probabilities(
    lines: Sequence[int],
    num_sets: int,
    num_ways: int,
    iterations: int = 3,
) -> List[float]:
    """Fixed-point per-access miss probabilities for a TR cache.

    Every access's miss probability is computed from the exact
    collision model applied to the miss probabilities of the distinct
    lines inside its reuse window; the mutual dependence is resolved by
    iterating from the all-miss starting point (which makes every
    intermediate iterate an upper bound on the next).

    Cold accesses have probability 1 (the analysis assumes an empty
    cache at start, like the paper's end-to-end runs).
    """
    require_positive_int("num_sets", num_sets)
    require_positive_int("num_ways", num_ways)
    require_positive_int("iterations", iterations)
    if not lines:
        raise AnalysisError("empty access stream")

    last_position = {}
    windows: List[Optional[List[int]]] = []
    for index, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            windows.append(None)
        else:
            # Indices of the *latest* access to each distinct line in
            # the window (that access decides whether the line missed
            # and hence evicted something).
            seen = {}
            for j in range(previous + 1, index):
                if lines[j] != line:
                    seen[lines[j]] = j
            windows.append(list(seen.values()))
        last_position[line] = index

    probs = [1.0] * len(lines)
    for _round in range(iterations):
        updated = list(probs)
        for index, window in enumerate(windows):
            if window is None:
                updated[index] = 1.0
            else:
                updated[index] = miss_probability_exact(
                    num_sets, num_ways, [probs[j] for j in window]
                )
        probs = updated
    return probs


def expected_misses(
    lines: Sequence[int], num_sets: int, num_ways: int, iterations: int = 3
) -> float:
    """Expected miss count of the stream (sum of per-access probabilities)."""
    return sum(access_miss_probabilities(lines, num_sets, num_ways, iterations))


def miss_count_distribution(miss_probs: Sequence[float]) -> List[float]:
    """Poisson-binomial PMF of the total miss count.

    ``result[j]`` is the probability of exactly ``j`` misses, under
    per-access independence.  O(n^2), fine for the trace sizes SPTA is
    used on here.
    """
    pmf = [1.0]
    for p in miss_probs:
        if not 0.0 <= p <= 1.0:
            raise AnalysisError(f"miss probability {p} not in [0, 1]")
        nxt = [0.0] * (len(pmf) + 1)
        for j, mass in enumerate(pmf):
            nxt[j] += mass * (1.0 - p)
            nxt[j + 1] += mass * p
        pmf = nxt
    return pmf


def execution_time_distribution(
    lines: Sequence[int],
    num_sets: int,
    num_ways: int,
    hit_latency: int,
    miss_latency: int,
    iterations: int = 3,
) -> ExecutionTimeProfile:
    """Analytical distribution of the stream's total access time.

    Total time = ``n*hit + j*(miss - hit)`` where ``j`` follows the
    Poisson-binomial miss-count distribution.
    """
    require_positive_int("hit_latency", hit_latency)
    require_positive_int("miss_latency", miss_latency)
    if miss_latency < hit_latency:
        raise AnalysisError("miss latency below hit latency")
    probs = access_miss_probabilities(lines, num_sets, num_ways, iterations)
    pmf = miss_count_distribution(probs)
    base = len(lines) * hit_latency
    delta = miss_latency - hit_latency
    return ExecutionTimeProfile(
        {base + j * delta: mass for j, mass in enumerate(pmf) if mass > 0.0}
    )


def static_pwcet(
    lines: Sequence[int],
    num_sets: int,
    num_ways: int,
    hit_latency: int,
    miss_latency: int,
    exceedance_prob: float = 1e-15,
    iterations: int = 3,
) -> int:
    """Static pWCET of the stream at the given exceedance probability.

    The smallest time ``t`` with ``P(total time > t) <= prob`` under
    the analytical distribution — the SPTA counterpart of the MBPTA
    estimate :func:`repro.pta.evt.pwcet_estimate` produces from
    measurements.
    """
    if not 0.0 < exceedance_prob < 1.0:
        raise AnalysisError(f"exceedance probability {exceedance_prob} not in (0, 1)")
    etp = execution_time_distribution(
        lines, num_sets, num_ways, hit_latency, miss_latency, iterations
    )
    return etp.quantile(1.0 - exceedance_prob)
