"""Extreme Value Theory: Gumbel tail fitting and pWCET estimation.

MBPTA applies EVT to end-to-end execution-time observations to
upper-bound the tail of their CCDF (§2.1).  The standard recipe
(Cucu-Grosjean et al., ECRTS 2012) is block maxima + a Gumbel (EVT
type I) fit; for light-tailed execution-time distributions — which
time-randomised hardware produces by construction — the Gumbel domain
of attraction is the appropriate one.

We fit by probability-weighted moments (PWM), which is robust for the
sample sizes MBPTA works with (hundreds of runs), and invert the fitted
CCDF at the target per-run exceedance probability (e.g. ``1e-15``).  A
peaks-over-threshold exponential-tail estimator is provided as an
alternative, and tests check the two agree on well-behaved samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.utils.stats_utils import as_sample

#: Euler-Mascheroni constant (mean of the standard Gumbel).
EULER_GAMMA = 0.5772156649015329


def validate_exceedance(prob: float, label: str = "exceedance probability") -> float:
    """Validate an exceedance probability once, at construction time.

    Policies and tables that carry an exceedance probability call this
    in their constructor so a bad value surfaces as a labelled
    :class:`~repro.errors.ConfigurationError` where it was configured,
    not as an :class:`~repro.errors.AnalysisError` deep inside a fit
    hundreds of runs later.  The fit-level checks remain as backstops
    for direct callers.
    """
    if isinstance(prob, bool) or not isinstance(prob, (int, float)):
        raise ConfigurationError(
            f"{label} must be a number in (0, 1), got {prob!r}"
        )
    if not 0.0 < prob < 1.0:
        raise ConfigurationError(f"{label} must be in (0, 1), got {prob!r}")
    return float(prob)


def block_exceedance(exceedance_prob: float, block_size: int) -> float:
    """Per-run exceedance converted to block-maximum exceedance.

    A Gumbel fitted to maxima of ``block_size``-run blocks speaks about
    block exceedance; a per-run target ``p`` maps to
    ``1 - (1 - p)**block_size`` (~ ``block_size * p`` for tiny ``p``),
    computed via ``expm1``/``log1p`` so 1e-19-scale targets survive.
    """
    return -math.expm1(block_size * math.log1p(-exceedance_prob))


@dataclass(frozen=True)
class GumbelFit:
    """A fitted Gumbel distribution ``G(x) = exp(-exp(-(x-mu)/beta))``."""

    location: float  # mu
    scale: float  # beta

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        if self.scale == 0.0:
            return 1.0 if x >= self.location else 0.0
        return math.exp(-math.exp(-(x - self.location) / self.scale))

    def exceedance(self, x: float) -> float:
        """P(X > x) — the CCDF."""
        return -math.expm1(-math.exp(-(x - self.location) / self.scale)) \
            if self.scale else (0.0 if x >= self.location else 1.0)

    def quantile_of_exceedance(self, prob: float) -> float:
        """Smallest x with ``P(X > x) <= prob`` (CCDF inversion).

        Exact inversion of the Gumbel CCDF; numerically safe down to
        the 1e-19 probabilities the paper uses.
        """
        if not 0.0 < prob < 1.0:
            raise AnalysisError(f"exceedance probability {prob} not in (0, 1)")
        if self.scale == 0.0:
            return self.location
        # P(X > x) = 1 - exp(-exp(-z)) = prob  =>  z = -ln(-ln(1 - prob)).
        # For tiny prob, ln(1 - prob) ~ -prob, so z ~ -ln(prob): use
        # log1p for accuracy.
        inner = -math.log1p(-prob)
        z = -math.log(inner)
        return self.location + self.scale * z

    def mean(self) -> float:
        """Expected value of the fitted distribution."""
        return self.location + EULER_GAMMA * self.scale


def block_maxima(sample: Sequence[float], block_size: int) -> List[float]:
    """Split ``sample`` into consecutive blocks and return each block's max.

    A trailing partial block is discarded (standard practice: partial
    blocks bias maxima low).  Raises if fewer than two full blocks are
    available — a Gumbel fit needs at least two points.
    """
    arr = as_sample(sample)
    if block_size <= 0:
        raise AnalysisError(f"block size must be positive, got {block_size}")
    num_blocks = arr.size // block_size
    if num_blocks < 2:
        raise AnalysisError(
            f"{arr.size} observations give only {num_blocks} blocks of "
            f"{block_size}; need at least 2"
        )
    trimmed = arr[: num_blocks * block_size].reshape(num_blocks, block_size)
    return trimmed.max(axis=1).tolist()


def fit_gumbel_pwm(sample: Sequence[float]) -> GumbelFit:
    """Fit a Gumbel distribution by probability-weighted moments.

    With ``b0`` the sample mean and ``b1`` the first PWM
    (``E[X * F(X)]`` estimated from the order statistics), the Gumbel
    parameters are ``beta = (2*b1 - b0) / ln 2`` and
    ``mu = b0 - gamma * beta``.

    A constant sample yields a degenerate fit (``scale == 0``), for
    which every pWCET equals the constant — the correct answer for a
    perfectly deterministic program.
    """
    return fit_gumbel_pwm_sorted(np.sort(as_sample(sample)))


def fit_gumbel_pwm_sorted(arr: np.ndarray) -> GumbelFit:
    """PWM Gumbel fit of an *already sorted* float64 sample.

    The streaming estimator (:mod:`repro.pta.adaptive`) maintains its
    order statistics incrementally across waves, so it skips the sort;
    because the PWM sums below are computed from the sorted array, the
    fit is bit-identical whether the caller sorted from scratch or
    merged incrementally.
    """
    n = arr.size
    if n < 2:
        raise AnalysisError("Gumbel fit needs at least 2 observations")
    b0 = float(arr.mean())
    # Unbiased estimator of the first PWM: sum over order statistics
    # weighted by (i) / (n - 1), i = 0..n-1.
    weights = np.arange(n, dtype=float) / (n - 1)
    b1 = float((weights * arr).mean())
    scale = (2.0 * b1 - b0) / math.log(2.0)
    if scale < 0.0:
        # Numerically possible on tiny/degenerate samples; clamp — a
        # negative Gumbel scale is meaningless.
        scale = 0.0
    location = b0 - EULER_GAMMA * scale
    return GumbelFit(location=location, scale=scale)


def pwcet_estimate(
    execution_times: Sequence[float],
    exceedance_prob: float,
    block_size: int = 25,
) -> float:
    """pWCET at a per-run exceedance probability via block-maxima Gumbel.

    The Gumbel is fitted to maxima of blocks of ``block_size`` runs, so
    its CCDF speaks about *block* exceedance; a per-run target ``p``
    converts to the block target ``1 - (1 - p)**block_size`` (~ ``b*p``
    for the tiny probabilities of interest), which the fitted CCDF is
    then inverted at.

    The estimate is never below the sample high-water mark: an observed
    execution time is by definition not exceeded with probability 1.
    """
    if not 0.0 < exceedance_prob < 1.0:
        raise AnalysisError(
            f"exceedance probability {exceedance_prob} not in (0, 1)"
        )
    arr = as_sample(execution_times)
    maxima = block_maxima(arr, block_size)
    fit = fit_gumbel_pwm(maxima)
    block_prob = block_exceedance(exceedance_prob, block_size)
    estimate = fit.quantile_of_exceedance(block_prob)
    return max(estimate, float(arr.max()))


def pwcet_estimate_pot(
    execution_times: Sequence[float],
    exceedance_prob: float,
    threshold_quantile: float = 0.85,
) -> float:
    """pWCET via peaks-over-threshold with an exponential excess model.

    Excesses over the ``threshold_quantile`` sample quantile are fitted
    with an exponential distribution (the GPD with shape 0, i.e. the
    Gumbel-domain assumption); the tail is extrapolated as
    ``u + scale * ln(zeta / p)`` where ``zeta`` is the exceedance rate
    of the threshold.  Used as a cross-check of the block-maxima
    estimator.
    """
    if not 0.0 < exceedance_prob < 1.0:
        raise AnalysisError(
            f"exceedance probability {exceedance_prob} not in (0, 1)"
        )
    if not 0.0 < threshold_quantile < 1.0:
        raise AnalysisError(
            f"threshold quantile {threshold_quantile} not in (0, 1)"
        )
    arr = as_sample(execution_times)
    threshold = float(np.quantile(arr, threshold_quantile))
    excesses = arr[arr > threshold] - threshold
    if excesses.size < 5:
        raise AnalysisError(
            f"only {excesses.size} exceedances over the threshold; need >= 5"
        )
    scale = float(excesses.mean())
    zeta = excesses.size / arr.size
    estimate = threshold + scale * math.log(zeta / exceedance_prob)
    return max(estimate, float(arr.max()))


def pwcet_curve(
    execution_times: Sequence[float],
    exceedance_probs: Sequence[float],
    block_size: int = 25,
) -> dict:
    """pWCET at several exceedance probabilities (one shared fit).

    Returns ``{probability: pWCET}``; useful for the 1e-15/1e-17/1e-19
    sweep the paper reports.
    """
    arr = as_sample(execution_times)
    maxima = block_maxima(arr, block_size)
    fit = fit_gumbel_pwm(maxima)
    hwm = float(arr.max())
    curve = {}
    for prob in exceedance_probs:
        if not 0.0 < prob < 1.0:
            raise AnalysisError(f"exceedance probability {prob} not in (0, 1)")
        curve[prob] = max(
            fit.quantile_of_exceedance(block_exceedance(prob, block_size)), hwm
        )
    return curve
