"""Probabilistic Timing Analysis toolkit.

Implements the measurement-based PTA (MBPTA) machinery of §2.1 of the
paper:

* :mod:`repro.pta.etp` — Execution Time Profiles: the discrete
  latency/probability distributions PTA attaches to instructions;
* :mod:`repro.pta.eq1` — the paper's Equation 1: the analytical miss
  probability of an access in a time-randomised EoM cache;
* :mod:`repro.pta.evt` — Extreme Value Theory: Gumbel tail fitting and
  pWCET estimation at arbitrarily low exceedance probabilities;
* :mod:`repro.pta.iid` — Wald-Wolfowitz and Kolmogorov-Smirnov tests
  for the i.i.d. hypotheses MBPTA requires;
* :mod:`repro.pta.mbpta` — the end-to-end MBPTA procedure tying the
  above together over a sample of execution times;
* :mod:`repro.pta.adaptive` — streaming EVT convergence: the stopping
  rule and incremental estimator behind adaptive (early-stopping)
  campaigns;
* :mod:`repro.pta.reference` — pure-scalar oracle forms of the
  vectorised EVT/i.i.d. statistics.
"""

from repro.pta.adaptive import (
    BENCHMARK_RTOL,
    ConvergencePolicy,
    StreamingGumbelEstimator,
    WaveScheduler,
)
from repro.pta.etp import ExecutionTimeProfile
from repro.pta.eq1 import (
    miss_probability,
    miss_probability_exact,
    sequence_miss_probabilities,
    steady_state_miss_ratio,
)
from repro.pta.evt import (
    GumbelFit,
    block_maxima,
    fit_gumbel_pwm,
    pwcet_estimate,
    validate_exceedance,
)
from repro.pta.iid import IIDResult, kolmogorov_smirnov_test, wald_wolfowitz_test, iid_test
from repro.pta.mbpta import MBPTAResult, estimate_pwcet
from repro.pta.spta import (
    access_miss_probabilities,
    reuse_distances,
    static_pwcet,
)

__all__ = [
    "BENCHMARK_RTOL",
    "ConvergencePolicy",
    "StreamingGumbelEstimator",
    "WaveScheduler",
    "ExecutionTimeProfile",
    "miss_probability",
    "miss_probability_exact",
    "sequence_miss_probabilities",
    "steady_state_miss_ratio",
    "GumbelFit",
    "block_maxima",
    "fit_gumbel_pwm",
    "pwcet_estimate",
    "validate_exceedance",
    "IIDResult",
    "wald_wolfowitz_test",
    "kolmogorov_smirnov_test",
    "iid_test",
    "MBPTAResult",
    "estimate_pwcet",
    "reuse_distances",
    "access_miss_probabilities",
    "static_pwcet",
]
