"""Statistical tests for MBPTA's i.i.d. hypotheses.

MBPTA requires the collected execution times to behave as independent,
identically distributed random variables.  The paper (§4.2) checks this
with two standard tests at a 5% significance level:

* the **Wald-Wolfowitz runs test** for independence — the absolute
  test statistic must stay below 1.96 (the two-sided 5% normal
  critical value);
* the **Kolmogorov-Smirnov two-sample test** for identical
  distribution — the p-value must stay above 0.05.

Both are implemented from first principles (no scipy dependency) with
the same conventions the MBPTA literature uses: the runs test
dichotomises about the median (dropping ties), and the KS test compares
the first and second halves of the observation sequence.

Both statistics are NumPy-vectorised — adaptive campaigns
(:mod:`repro.pta.adaptive`) re-run them at every wave boundary, which
makes them per-wave hot paths.  Pure-scalar reference forms live in
:mod:`repro.pta.reference` and are held equivalent by
``tests/test_pta_reference.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.utils.stats_utils import as_sample

#: Two-sided 5% critical value of the standard normal distribution,
#: the threshold the paper quotes for the WW statistic.
WW_CRITICAL_5PCT = 1.96

#: Below this many runs per campaign, asserting on individual WW/KS
#: verdicts is statistically meaningless: with dozens of tests at
#: alpha = 0.05 some are *expected* to fail by chance, and tiny samples
#: make the test statistics themselves unstable.  Smoke-scale harnesses
#: should skip the assertions (not weaken them silently).
MBPTA_MIN_IID_RUNS = 50

#: At or above this many runs the paper's plain per-test 5% thresholds
#: are asserted as-is — the regime the paper's E1 table reports
#: (1000 runs per campaign).
FULL_CAMPAIGN_RUNS = 300


def _normal_quantile(p: float) -> float:
    """Standard normal quantile via bisection on ``math.erf``.

    Exact enough (|err| < 1e-12) for threshold computation and keeps
    the no-scipy rule; only called a handful of times per test session.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"quantile probability must be in (0, 1), got {p}")
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def iid_assert_thresholds(runs: int, comparisons: int = 1) -> tuple:
    """Assertion thresholds ``(ww_critical, ks_alpha)`` scaled to the sample.

    The paper's E1 asserts |WW| < 1.96 and KS p > 0.05 *per campaign* at
    1000 runs.  Re-asserting that verbatim over many campaigns at
    reduced scale makes the harness flaky by construction: each test
    has a 5% false-alarm rate, so a 20-campaign table fails about once
    per run of the suite.  This helper returns:

    * the paper's plain thresholds when ``runs >= FULL_CAMPAIGN_RUNS``
      or only one comparison is made;
    * Bonferroni-corrected thresholds (family-wise alpha 0.05 split
      across ``comparisons`` tests) in between — strictly *weaker* per
      test, never stronger, so a sample that passes the paper's check
      also passes here;
    * and refuses (:class:`~repro.errors.AnalysisError`) below
      ``MBPTA_MIN_IID_RUNS``, where the right move is to skip.
    """
    if runs < MBPTA_MIN_IID_RUNS:
        raise AnalysisError(
            f"asserting i.i.d. verdicts on {runs}-run campaigns is not "
            f"meaningful; skip below {MBPTA_MIN_IID_RUNS} runs"
        )
    if comparisons < 1:
        raise AnalysisError(f"comparisons must be >= 1, got {comparisons}")
    if runs >= FULL_CAMPAIGN_RUNS or comparisons == 1:
        return (WW_CRITICAL_5PCT, 0.05)
    alpha = 0.05 / comparisons
    return (_normal_quantile(1.0 - alpha / 2.0), alpha)


@dataclass(frozen=True)
class RunsTestResult:
    """Outcome of a Wald-Wolfowitz runs test."""

    statistic: float
    runs: int
    n_above: int
    n_below: int

    def passes(self, critical: float = WW_CRITICAL_5PCT) -> bool:
        """Independence not rejected at the given critical value."""
        return abs(self.statistic) < critical


@dataclass(frozen=True)
class KSTestResult:
    """Outcome of a two-sample Kolmogorov-Smirnov test."""

    statistic: float
    p_value: float

    def passes(self, alpha: float = 0.05) -> bool:
        """Identical distribution not rejected at significance ``alpha``."""
        return self.p_value > alpha


@dataclass(frozen=True)
class IIDResult:
    """Combined verdict of both tests, as the paper reports them."""

    ww: RunsTestResult
    ks: KSTestResult

    @property
    def passed(self) -> bool:
        """True when neither i.i.d. hypothesis is rejected at 5%."""
        return self.ww.passes() and self.ks.passes()


def wald_wolfowitz_test(sample: Sequence[float]) -> RunsTestResult:
    """Runs test for independence, dichotomised about the median.

    Observations equal to the median are dropped (the standard
    treatment of ties).  The statistic is the number of runs,
    standardised by its null mean and variance; under independence it
    is asymptotically standard normal.
    """
    arr = as_sample(sample)
    median = float(np.median(arr))
    signs = arr[arr != median] > median
    n1 = int(np.count_nonzero(signs))
    n0 = int(signs.size) - n1
    if n1 == 0 or n0 == 0:
        # Degenerate sample: (nearly) constant execution times, so the
        # runs statistic is undefined — and a constant sample carries
        # no evidence against independence.  Report a passing zero
        # statistic, which is what a perfectly deterministic program
        # deserves.
        return RunsTestResult(statistic=0.0, runs=0, n_above=n1, n_below=n0)
    runs = 1 + int(np.count_nonzero(signs[1:] != signs[:-1]))
    n = n0 + n1
    mean_runs = 2.0 * n0 * n1 / n + 1.0
    var_runs = 2.0 * n0 * n1 * (2.0 * n0 * n1 - n) / (n * n * (n - 1.0))
    if var_runs <= 0.0:
        raise AnalysisError("runs test variance non-positive (sample too small)")
    statistic = (runs - mean_runs) / math.sqrt(var_runs)
    return RunsTestResult(statistic=statistic, runs=runs, n_above=n1, n_below=n0)


def _ks_p_value(lam: float) -> float:
    """Asymptotic Kolmogorov distribution tail ``Q_KS(lambda)``."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


def kolmogorov_smirnov_test(
    first: Sequence[float], second: Sequence[float]
) -> KSTestResult:
    """Two-sample KS test with the asymptotic p-value.

    The statistic is the maximum distance between the two empirical
    CDFs; the p-value uses the Stephens small-sample correction of the
    Kolmogorov distribution.
    """
    a = np.sort(as_sample(first))
    b = np.sort(as_sample(second))
    n1, n2 = a.size, b.size
    if n1 < 2 or n2 < 2:
        raise AnalysisError("KS test needs at least 2 observations per sample")
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / n1
    cdf_b = np.searchsorted(b, values, side="right") / n2
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = n1 * n2 / (n1 + n2)
    lam = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * statistic
    return KSTestResult(statistic=statistic, p_value=_ks_p_value(lam))


def iid_test(sample: Sequence[float]) -> IIDResult:
    """Run both i.i.d. checks on one execution-time sample.

    Independence: WW runs test on the sample in collection order.
    Identical distribution: KS test between the first and second halves
    of the collection sequence — if the platform drifted between early
    and late runs, the halves' distributions would differ.
    """
    arr = as_sample(sample)
    if arr.size < 20:
        raise AnalysisError(
            f"i.i.d. testing on {arr.size} observations is meaningless; "
            f"collect at least 20"
        )
    half = arr.size // 2
    ww = wald_wolfowitz_test(arr)
    ks = kolmogorov_smirnov_test(arr[:half], arr[half:])
    return IIDResult(ww=ww, ks=ks)
