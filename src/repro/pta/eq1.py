"""Analytical miss-probability models for TR Evict-on-Miss caches.

Three models of increasing fidelity, all for random-placement,
random-replacement (Evict-on-Miss) caches with ``S`` sets and ``W``
ways:

1. :func:`miss_probability` — **the paper's Equation 1 as published**::

       P_miss(A_j) = (1 - ((W-1)/W) ** sum_l P_miss(B_l))
                     * (1 - ((S-1)/S) ** k)

   for the sequence ``<A_i, B_1..B_k, A_j>`` from an empty cache with
   distinct ``B_l``.  Exact for the fully-associative (``S == 1``) and
   direct-mapped (``W == 1``) corners, but — as the paper itself notes
   — an *approximation* in general; the product form double-counts
   (the first factor charges every eviction against A's way even when
   it lands in a different set), so it over-predicts for set-associative
   shapes.  The E5 benchmark quantifies this against simulation.

2. :func:`miss_probability_exact` — the exact value for the same
   scenario under independent uniform placement: each interfering miss
   evicts ``A`` with probability ``p_l / (S * W)`` (it must land in
   A's set *and* the random victim must be A's way)::

       P_miss(A_j) = 1 - prod_l (1 - P_miss(B_l) / (S * W))

   This reduces to the same corner cases and matches simulation.

3. :func:`steady_state_miss_ratio` — the long-run miss ratio of a
   repeatedly swept working set, from the Poisson-overflow view of
   random placement: with ``n`` lines hashed into ``S`` sets the
   per-set occupancy is ~Poisson(``n/S``); lines in sets holding more
   than ``W`` lines churn every sweep, the rest settle.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import AnalysisError
from repro.utils.validation import require_positive_int


def _validated(num_sets: int, num_ways: int, probs: Sequence[float]) -> float:
    require_positive_int("num_sets", num_sets)
    require_positive_int("num_ways", num_ways)
    total = 0.0
    for prob in probs:
        if not 0.0 <= prob <= 1.0:
            raise AnalysisError(f"miss probability {prob} not in [0, 1]")
        total += prob
    return total


def miss_probability(
    num_sets: int, num_ways: int, interfering_miss_probs: Sequence[float]
) -> float:
    """The paper's Equation 1, exactly as published.

    Parameters
    ----------
    num_sets, num_ways:
        Cache organisation ``S`` and ``W``.
    interfering_miss_probs:
        ``P_miss(B_l)`` for each of the ``k`` distinct lines accessed
        between the two accesses to A (the reuse distance is ``k``).

    >>> round(miss_probability(1, 4, [1.0, 1.0]), 4)  # fully associative
    0.4375
    >>> miss_probability(64, 8, [])  # immediate reuse never misses
    0.0
    """
    expected_evictions = _validated(num_sets, num_ways, interfering_miss_probs)
    k = len(interfering_miss_probs)

    if num_ways == 1:
        replacement_term = 0.0 if expected_evictions == 0 else 1.0
    else:
        replacement_term = 1.0 - ((num_ways - 1) / num_ways) ** expected_evictions
    if num_sets == 1:
        placement_term = 0.0 if k == 0 else 1.0
    else:
        placement_term = 1.0 - ((num_sets - 1) / num_sets) ** k
    return replacement_term * placement_term


def miss_probability_exact(
    num_sets: int, num_ways: int, interfering_miss_probs: Sequence[float]
) -> float:
    """Exact miss probability for Equation 1's scenario.

    Each interfering access, when it misses (probability ``p_l``),
    picks A's set with probability ``1/S`` (independent uniform
    placement) and then the EoM victim draw picks A's way with
    probability ``1/W``; survival events are independent across the
    distinct ``B_l``.

    >>> miss_probability_exact(1, 4, [1.0, 1.0]) == 1 - (3/4) ** 2
    True
    """
    _validated(num_sets, num_ways, interfering_miss_probs)
    survive = 1.0
    kill = 1.0 / (num_sets * num_ways)
    for prob in interfering_miss_probs:
        survive *= 1.0 - prob * kill
    return 1.0 - survive


def poisson_overflow_fraction(load: float, ways: int) -> float:
    """Expected overflowing-line fraction of a random-placement cache.

    With per-set occupancy ``X ~ Poisson(load)`` and ``ways`` frames
    per set, the expected number of lines beyond capacity in one set is
    ``E[max(X - ways, 0)]``; dividing by ``load`` gives the fraction of
    the working set that cannot settle.  This is the quantity that
    makes low-associativity partitions (CP1/CP2) churn under random
    placement even when nominal capacity suffices.
    """
    if load < 0:
        raise AnalysisError(f"load must be non-negative, got {load}")
    require_positive_int("ways", ways)
    if load == 0.0:
        return 0.0
    # E[max(X - W, 0)] = load - W + sum_{k<W} (W - k) P(X = k).
    term = 0.0
    p_k = math.exp(-load)
    for k in range(ways):
        term += (ways - k) * p_k
        p_k *= load / (k + 1)
    expected_overflow = load - ways + term
    return max(expected_overflow, 0.0) / load


def steady_state_miss_ratio(
    num_sets: int, num_ways: int, working_set: int
) -> float:
    """Long-run per-sweep miss ratio of a cyclically swept working set.

    Lines in overflowing sets (Poisson model) churn once per sweep;
    settled lines hit.  A good predictor of the simulator's measured
    steady-state miss ratios (asserted by the tests and bench E5).
    """
    require_positive_int("num_sets", num_sets)
    require_positive_int("num_ways", num_ways)
    require_positive_int("working_set", working_set)
    load = working_set / num_sets
    return poisson_overflow_fraction(load, num_ways)


def sequence_miss_probabilities(
    num_sets: int,
    num_ways: int,
    working_set: int,
    sweeps: int,
) -> List[float]:
    """Per-sweep miss probability for round-robin reuse of a working set.

    Sweep 0 is cold (probability 1); later sweeps miss at the
    steady-state churn rate of :func:`steady_state_miss_ratio`.

    Returns a list of ``sweeps`` probabilities (sweep 0 first).
    """
    require_positive_int("sweeps", sweeps)
    steady = steady_state_miss_ratio(num_sets, num_ways, working_set)
    return [1.0] + [steady] * (sweeps - 1)


def expected_miss_ratio(
    num_sets: int, num_ways: int, working_set: int, sweeps: int
) -> float:
    """Average miss ratio over ``sweeps`` round-robin sweeps.

    Cold first sweep plus steady-state churn afterwards; the E5
    benchmark compares this against the simulated TR cache.
    """
    probs = sequence_miss_probabilities(num_sets, num_ways, working_set, sweeps)
    return sum(probs) / len(probs)
