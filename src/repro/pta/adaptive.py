"""Streaming EVT convergence: campaigns stop when the pWCET is stable.

Fixed-R campaigns simulate a worst-case run count even when the Gumbel
tail stabilised hundreds of runs earlier.  This module turns them into
bounded-error campaigns, following the MBPTA convergence protocol of
Cucu-Grosjean et al. (ECRTS 2012): grow the sample wave by wave,
re-estimate the pWCET after each wave, and stop once the estimate no
longer moves.

Two pieces:

* :class:`ConvergencePolicy` — the declarative stopping rule.  A
  campaign converges at a wave boundary when the pWCET quantile moved
  less than ``rtol`` (relatively) for ``stable_waves`` consecutive
  waves, the i.i.d. tests (:mod:`repro.pta.iid`) pass on the prefix,
  and at least ``min_runs`` observations were collected; it always
  stops at ``max_runs``.  All parameters — including the
  ``exceedance`` probability, per the construction-time validation
  rule — are validated here with labelled
  :class:`~repro.errors.ConfigurationError`\\ s, never deep in a fit.

* :class:`StreamingGumbelEstimator` — the incremental fitter.  It
  maintains the *sorted order statistics of the block maxima* across
  waves by merging each wave's new maxima into the running sorted
  array (``searchsorted`` + ``insert``, O(n + w) per wave — no full
  re-sort), then re-fits via
  :func:`~repro.pta.evt.fit_gumbel_pwm_sorted`.

Determinism contract
--------------------
The stopping decision is a deterministic pure function of the sample
*prefix* and the policy: feeding the same observations in the same
order — whether freshly executed, replayed from a checkpoint journal,
or produced by a different engine — yields the same per-wave estimates,
the same convergence wave and therefore the same ``runs_executed``.
This is what preserves cross-engine bit-identity and checkpoint resume
for adaptive campaigns: per-run seeds are derived independently of
dispatch grouping, so an adaptive campaign's sample is always a prefix
of the fixed-R campaign's sample for the same master seed.

The bit-identity contract with the batch fitters is explicit: after any
number of waves, :meth:`StreamingGumbelEstimator.fit` equals
``fit_gumbel_pwm(block_maxima(prefix, block_size))`` and
:meth:`~StreamingGumbelEstimator.pwcet` equals
``pwcet_estimate(prefix, exceedance, block_size)`` bit-for-bit
(property-tested in ``tests/test_adaptive.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.pta.evt import (
    GumbelFit,
    block_exceedance,
    fit_gumbel_pwm_sorted,
    validate_exceedance,
)
from repro.pta.iid import iid_test

#: Default relative tolerance on the pWCET quantile between waves.
DEFAULT_RTOL = 0.005

#: Default geometric growth of speculative dispatch blocks (each
#: block covers ``growth``× as many policy waves as the previous one:
#: 25 → 100 → 400 ... for a 25-run wave).
DEFAULT_WAVE_GROWTH = 4.0

#: Default number of consecutive stable waves required to converge.
DEFAULT_STABLE_WAVES = 2

#: Per-benchmark convergence tolerances for
#: :meth:`ConvergencePolicy.for_benchmark`.  The cache-space-sensitive
#: benchmarks (II, PN, A2 — the paper's Figure 4 tail movers) get a
#: tighter tolerance so random-placement tail variation cannot pass as
#: convergence, while the miss-dominated traces (MA overflows the LLC;
#: CA is the cache stressor) get a looser one — their quantiles are
#: broad but stable, and the default tolerance mostly buys extra runs
#: there.  Everything else uses :data:`DEFAULT_RTOL`.
BENCHMARK_RTOL = {
    "ID": DEFAULT_RTOL,
    "MA": 0.01,
    "CN": DEFAULT_RTOL,
    "AI": DEFAULT_RTOL,
    "CA": 0.01,
    "PU": DEFAULT_RTOL,
    "RS": DEFAULT_RTOL,
    "II": 0.002,
    "PN": 0.002,
    "A2": 0.002,
}

#: :func:`repro.pta.iid.iid_test`'s own floor; below it the i.i.d.
#: gate simply reports "not yet" rather than erroring.
MIN_IID_OBSERVATIONS = 20


@dataclass(frozen=True)
class ConvergencePolicy:
    """Declarative stopping rule for an adaptive MBPTA campaign.

    ``min_runs``/``max_runs`` bound the sample size, ``wave_size`` is
    the dispatch granularity (convergence is only evaluated at wave
    boundaries — the barrier every execution backend already has),
    ``rtol``/``stable_waves`` define quantile stability, ``exceedance``
    is the per-run target probability the quantile is tracked at, and
    ``block_size`` is the block-maxima granularity of the Gumbel fit.
    ``require_iid=False`` drops the i.i.d. gate (useful for harnesses
    on tiny synthetic samples; the paper's protocol keeps it on).
    """

    min_runs: int
    max_runs: int
    wave_size: int
    rtol: float = DEFAULT_RTOL
    stable_waves: int = DEFAULT_STABLE_WAVES
    exceedance: float = 1e-15
    block_size: int = 25
    require_iid: bool = True

    def __post_init__(self) -> None:
        validate_exceedance(self.exceedance, label="ConvergencePolicy exceedance")
        if self.min_runs < 1:
            raise ConfigurationError(
                f"ConvergencePolicy min_runs must be >= 1, got {self.min_runs}"
            )
        if self.max_runs < self.min_runs:
            raise ConfigurationError(
                f"ConvergencePolicy max_runs ({self.max_runs}) must be >= "
                f"min_runs ({self.min_runs})"
            )
        if self.wave_size < 1:
            raise ConfigurationError(
                f"ConvergencePolicy wave_size must be >= 1, got {self.wave_size}"
            )
        if self.stable_waves < 1:
            raise ConfigurationError(
                f"ConvergencePolicy stable_waves must be >= 1, "
                f"got {self.stable_waves}"
            )
        if self.block_size < 1:
            raise ConfigurationError(
                f"ConvergencePolicy block_size must be >= 1, "
                f"got {self.block_size}"
            )
        if not (isinstance(self.rtol, float) and math.isfinite(self.rtol)
                and self.rtol > 0.0):
            raise ConfigurationError(
                f"ConvergencePolicy rtol must be a positive finite float, "
                f"got {self.rtol!r}"
            )
        if self.max_runs < 2 * self.block_size:
            raise ConfigurationError(
                f"ConvergencePolicy max_runs ({self.max_runs}) can never "
                f"produce the 2 blocks of {self.block_size} a Gumbel fit "
                f"needs"
            )

    @classmethod
    def for_scale(
        cls,
        scale,
        *,
        rtol: float = DEFAULT_RTOL,
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
        stable_waves: int = DEFAULT_STABLE_WAVES,
        exceedance: float = 1e-15,
        require_iid: bool = True,
    ) -> "ConvergencePolicy":
        """Policy matched to an :class:`~repro.workloads.scale.ExperimentScale`.

        ``max_runs`` defaults to the scale's fixed-R ``analysis_runs``
        (so an adaptive campaign can never exceed the fixed budget),
        ``wave_size``/``block_size`` to the scale's EVT block size (one
        whole block per wave), and ``min_runs`` to the smallest prefix
        both the fit and the i.i.d. tests accept.  Passing
        ``min_runs == max_runs == R`` reproduces a fixed-R campaign
        exactly.
        """
        block = scale.block_size
        if max_runs is None:
            max_runs = scale.analysis_runs
        if min_runs is None:
            min_runs = min(max(2 * block, MIN_IID_OBSERVATIONS), max_runs)
        return cls(
            min_runs=min_runs,
            max_runs=max_runs,
            wave_size=block,
            rtol=rtol,
            stable_waves=stable_waves,
            exceedance=exceedance,
            block_size=block,
            require_iid=require_iid,
        )

    @classmethod
    def for_benchmark(
        cls,
        bench_id: str,
        scale,
        *,
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
        stable_waves: int = DEFAULT_STABLE_WAVES,
        exceedance: float = 1e-15,
        require_iid: bool = True,
    ) -> "ConvergencePolicy":
        """Policy with the benchmark's preset tolerance, at ``scale``.

        Looks ``bench_id`` up in :data:`BENCHMARK_RTOL` (the paper's
        ten two-letter benchmark ids) and builds the scale-matched
        policy with that tolerance; everything else follows
        :meth:`for_scale`.  Unknown ids raise a labelled
        :class:`~repro.errors.ConfigurationError` rather than silently
        falling back to the default tolerance.
        """
        try:
            rtol = BENCHMARK_RTOL[bench_id]
        except KeyError:
            known = ", ".join(sorted(BENCHMARK_RTOL))
            raise ConfigurationError(
                f"no per-benchmark convergence preset for {bench_id!r}; "
                f"known benchmark ids: {known} (pass an explicit rtol "
                f"via for_scale for other traces)"
            ) from None
        return cls.for_scale(
            scale,
            rtol=rtol,
            min_runs=min_runs,
            max_runs=max_runs,
            stable_waves=stable_waves,
            exceedance=exceedance,
            require_iid=require_iid,
        )

    def fingerprint_key(self) -> tuple:
        """Stable identity tuple for fingerprints and job specs.

        Floats ride as ``repr`` strings so the key survives JSON
        round-trips without precision surprises.
        """
        return (
            self.min_runs,
            self.max_runs,
            self.wave_size,
            repr(self.rtol),
            self.stable_waves,
            repr(self.exceedance),
            self.block_size,
            self.require_iid,
        )

    def to_dict(self) -> dict:
        """JSON-ready form (the service journal's wire format)."""
        return {
            "min_runs": self.min_runs,
            "max_runs": self.max_runs,
            "wave_size": self.wave_size,
            "rtol": self.rtol,
            "stable_waves": self.stable_waves,
            "exceedance": self.exceedance,
            "block_size": self.block_size,
            "require_iid": self.require_iid,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConvergencePolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(
            min_runs=payload["min_runs"],
            max_runs=payload["max_runs"],
            wave_size=payload["wave_size"],
            rtol=payload["rtol"],
            stable_waves=payload["stable_waves"],
            exceedance=payload["exceedance"],
            block_size=payload["block_size"],
            require_iid=payload.get("require_iid", True),
        )


@dataclass(frozen=True)
class WaveScheduler:
    """Speculative dispatch schedule for an adaptive campaign.

    The convergence *decision* is taken at policy wave boundaries (a
    pure function of the observation prefix — see
    :class:`StreamingGumbelEstimator`), but the dispatch *granularity*
    is free: on an engine whose per-sweep cost is amortised over lanes
    (batch/kernel/sharded), issuing one ``wave_size`` block at a time
    pays the full sweep overhead per 25 runs, which is exactly the
    BENCH_adaptive ``kernel_tradeoff`` regression.  A scheduler
    dispatches geometrically growing blocks — ``wave_size`` runs, then
    ``growth``× as many, then ``growth``× that — and the campaign
    evaluates the stopping rule at every policy boundary *inside* each
    completed block.

    Because per-run seeds are derived independently of dispatch
    grouping and the stopping rule never sees past the boundary that
    declared convergence, the executed sample stays the bit-identical
    prefix of the fixed-R sample and the stopping decision is
    identical to wave-by-wave dispatch — speculation can only cost
    *wasted* runs past the stopping boundary (discarded from the
    sample, accounted as ``runs_speculated_waste``), never change a
    result.

    ``growth=1.0`` reproduces wave-by-wave dispatch exactly (zero
    waste); an explicit ``schedule`` of block sizes (in runs, last
    entry repeating) overrides the geometric rule — the property-test
    seam: *any* schedule must land on the same stopping decision.
    """

    policy: ConvergencePolicy
    growth: float = DEFAULT_WAVE_GROWTH
    schedule: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.schedule is not None:
            entries = tuple(self.schedule)
            if not entries or any(
                isinstance(size, bool)
                or not isinstance(size, (int, np.integer))
                or size < 1
                for size in entries
            ):
                raise ConfigurationError(
                    f"WaveScheduler schedule must be a non-empty sequence "
                    f"of positive integer block sizes (in runs), got "
                    f"{self.schedule!r}"
                )
            object.__setattr__(self, "schedule",
                               tuple(int(size) for size in entries))
            return
        growth = self.growth
        if isinstance(growth, bool) or not isinstance(growth, (int, float)):
            raise ConfigurationError(
                f"WaveScheduler growth must be a number >= 1, "
                f"got {growth!r}"
            )
        growth = float(growth)
        if not (math.isfinite(growth) and growth >= 1.0):
            raise ConfigurationError(
                f"WaveScheduler growth must be finite and >= 1 "
                f"(1 means wave-by-wave dispatch), got {self.growth!r}"
            )
        object.__setattr__(self, "growth", growth)

    def blocks(self, runs: int):
        """Yield ``(start, end)`` dispatch spans covering ``range(runs)``.

        Geometric mode: block ``i`` covers ``ceil(growth**i)`` policy
        waves (so ``growth=1`` is one wave per block).  Explicit mode:
        ``schedule[i]`` runs per block, the last entry repeating.  The
        final block is always clipped to ``runs``.
        """
        position = 0
        waves = 1
        index = 0
        wave_size = self.policy.wave_size
        while position < runs:
            if self.schedule is not None:
                size = self.schedule[min(index, len(self.schedule) - 1)]
            else:
                size = waves * wave_size
                # ceil keeps fractional growth moving (1.5× of one
                # wave is two waves, not one forever); growth=1 is a
                # fixed point.
                waves = max(waves, int(math.ceil(waves * self.growth)))
            end = min(position + size, runs)
            yield position, end
            position = end
            index += 1


class StreamingGumbelEstimator:
    """Incremental block-maxima Gumbel fit with a convergence verdict.

    Feed whole waves of execution times in collection order via
    :meth:`observe_wave`; the estimator folds completed blocks into its
    sorted-maxima array, re-fits, and updates the stability counter.
    ``observe_wave`` returns (and :attr:`converged` latches) ``True``
    at the first wave boundary satisfying the policy.

    The estimator is a pure function of the observation prefix — it
    holds no clocks, no randomness and no engine state — so replaying a
    checkpoint journal through it reproduces the original stopping
    decision exactly.
    """

    def __init__(self, policy: ConvergencePolicy) -> None:
        self.policy = policy
        self._block_prob = block_exceedance(policy.exceedance, policy.block_size)
        self._times: List[float] = []
        #: Sorted block maxima, merged incrementally (never re-sorted).
        self._maxima = np.empty(0, dtype=float)
        self._hwm = -math.inf
        #: pWCET estimate at each wave boundary (None before 2 blocks).
        self.history: List[Optional[float]] = []
        #: Relative quantile movement at each boundary (None when
        #: either side of the comparison had no estimate yet).
        self.deltas: List[Optional[float]] = []
        self._stable = 0
        self.converged = False
        self.waves = 0

    @property
    def runs(self) -> int:
        """Observations consumed so far."""
        return len(self._times)

    @property
    def sorted_maxima(self) -> np.ndarray:
        """Copy of the incrementally-merged sorted block maxima."""
        return self._maxima.copy()

    def fit(self) -> Optional[GumbelFit]:
        """Current Gumbel fit, or None before two blocks completed."""
        if self._maxima.size < 2:
            return None
        return fit_gumbel_pwm_sorted(self._maxima)

    def pwcet(self) -> Optional[float]:
        """Current pWCET estimate at the policy's exceedance target.

        Bit-identical to ``pwcet_estimate(prefix, exceedance,
        block_size)`` on the consumed prefix; None before two blocks.
        """
        fit = self.fit()
        if fit is None:
            return None
        return max(fit.quantile_of_exceedance(self._block_prob), self._hwm)

    @property
    def achieved_rtol(self) -> Optional[float]:
        """Largest relative quantile movement over the deciding window.

        When converged, the maximum delta across the ``stable_waves``
        boundaries that declared convergence (all strictly below the
        policy's ``rtol``); otherwise the last measured delta, i.e. how
        far from stable the campaign still was at ``max_runs``.
        """
        if self.converged:
            window = self.deltas[-self.policy.stable_waves:]
            return max(window)
        measured = [delta for delta in self.deltas if delta is not None]
        return measured[-1] if measured else None

    def observe_wave(self, wave: Sequence[float]) -> bool:
        """Consume one completed wave; return the convergence verdict.

        The wave must be the next contiguous chunk of the campaign's
        observations in collection order (resumed runs included — the
        journal replays through the same code path as fresh execution).
        """
        if self.converged:
            return True
        values = [float(value) for value in wave]
        self._times.extend(values)
        if values:
            high = max(values)
            if high > self._hwm:
                self._hwm = high
        self._merge_new_blocks()
        self.waves += 1
        previous = self.history[-1] if self.history else None
        estimate = self.pwcet()
        self.history.append(estimate)
        if estimate is None or previous is None:
            self.deltas.append(None)
            self._stable = 0
        else:
            if previous:
                delta = abs(estimate - previous) / previous
            else:
                delta = 0.0 if estimate == previous else math.inf
            self.deltas.append(delta)
            if delta < self.policy.rtol:
                self._stable += 1
            else:
                self._stable = 0
        if (self._stable >= self.policy.stable_waves
                and self.runs >= self.policy.min_runs
                and self._iid_passes()):
            self.converged = True
        return self.converged

    def _merge_new_blocks(self) -> None:
        """Fold newly-completed blocks into the sorted-maxima array.

        Blocks are fixed ``block_size`` windows of the observation
        sequence (a trailing partial block stays pending), so the block
        maxima are exactly :func:`~repro.pta.evt.block_maxima` of the
        prefix.  Only the wave's own maxima are sorted; the running
        array is merged into, never re-sorted.
        """
        block = self.policy.block_size
        total_blocks = len(self._times) // block
        new_blocks = total_blocks - self._maxima.size
        if new_blocks <= 0:
            return
        start = self._maxima.size * block
        chunk = np.asarray(
            self._times[start:start + new_blocks * block], dtype=float
        )
        fresh = np.sort(chunk.reshape(new_blocks, block).max(axis=1))
        self._maxima = np.insert(
            self._maxima, np.searchsorted(self._maxima, fresh), fresh
        )

    def _iid_passes(self) -> bool:
        """i.i.d. gate on the consumed prefix (5% thresholds)."""
        if not self.policy.require_iid:
            return True
        if self.runs < MIN_IID_OBSERVATIONS:
            return False
        return iid_test(self._times).passed
