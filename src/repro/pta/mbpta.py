"""The end-to-end MBPTA procedure.

Ties the pieces together the way an MBPTA tool does (§2.1):

1. collect end-to-end execution times on the time-randomised platform
   (done by :mod:`repro.sim.campaign`);
2. check the i.i.d. hypotheses (Wald-Wolfowitz + Kolmogorov-Smirnov);
3. check convergence: the tail estimate must be stable against adding
   more observations;
4. fit the EVT tail and report pWCET at the requested exceedance
   probabilities.

The paper reports pWCET at 1e-15 per run (with 1e-17/1e-19 giving the
same conclusions); :data:`DEFAULT_EXCEEDANCE_PROBS` mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.pta.evt import pwcet_curve
from repro.pta.iid import IIDResult, iid_test
from repro.utils.stats_utils import as_sample

#: The cutoff probabilities the paper evaluates (per run).
DEFAULT_EXCEEDANCE_PROBS = (1e-15, 1e-17, 1e-19)

#: Default block size for the block-maxima Gumbel fit.
DEFAULT_BLOCK_SIZE = 25


@dataclass(frozen=True)
class MBPTAResult:
    """Everything MBPTA produces for one (task, scenario) sample."""

    task: str
    scenario_label: str
    runs: int
    min_time: float
    max_time: float
    mean_time: float
    iid: Optional[IIDResult]
    pwcet: Dict[float, float]
    converged: bool
    convergence_delta: float

    def pwcet_at(self, prob: float) -> float:
        """pWCET at exceedance probability ``prob`` (must be precomputed)."""
        try:
            return self.pwcet[prob]
        except KeyError:
            raise AnalysisError(
                f"pWCET at {prob} was not computed; available: "
                f"{sorted(self.pwcet)}"
            ) from None


def convergence_check(
    execution_times: Sequence[float],
    exceedance_prob: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    tolerance: float = 0.02,
) -> Tuple[bool, float]:
    """MBPTA convergence criterion on a collected sample.

    The pWCET estimate from the first ~2/3 of the observations is
    compared with the estimate from the full sample; the sample has
    converged when the relative change is below ``tolerance`` (default
    2%).  This is the practical criterion MBPTA tools apply run-by-run
    — here applied retrospectively to decide whether the campaign
    collected enough runs.

    Returns ``(converged, relative_delta)``.
    """
    arr = as_sample(execution_times)
    partial = arr[: max((arr.size * 2) // 3, 2 * block_size)]
    if partial.size < 2 * block_size or partial.size >= arr.size:
        return False, float("inf")
    estimate_partial = pwcet_curve(partial, [exceedance_prob], block_size)[
        exceedance_prob
    ]
    estimate_full = pwcet_curve(arr, [exceedance_prob], block_size)[exceedance_prob]
    if estimate_full <= 0:
        raise AnalysisError("non-positive pWCET estimate")
    delta = abs(estimate_full - estimate_partial) / estimate_full
    return delta <= tolerance, delta


def estimate_pwcet(
    execution_times: Sequence[float],
    task: str = "task",
    scenario_label: str = "",
    exceedance_probs: Sequence[float] = DEFAULT_EXCEEDANCE_PROBS,
    block_size: int = DEFAULT_BLOCK_SIZE,
    check_iid: bool = True,
) -> MBPTAResult:
    """Run the full MBPTA pipeline on an execution-time sample.

    ``check_iid=False`` skips the statistical tests (useful for tiny
    smoke-test samples where they are meaningless); the i.i.d. field of
    the result is then ``None``.
    """
    arr = as_sample(execution_times)
    iid_result = iid_test(arr) if check_iid else None
    curve = pwcet_curve(arr, exceedance_probs, block_size)
    converged, delta = convergence_check(
        arr, min(exceedance_probs), block_size
    )
    return MBPTAResult(
        task=task,
        scenario_label=scenario_label,
        runs=int(arr.size),
        min_time=float(arr.min()),
        max_time=float(arr.max()),
        mean_time=float(arr.mean()),
        iid=iid_result,
        pwcet=curve,
        converged=converged,
        convergence_delta=delta,
    )
