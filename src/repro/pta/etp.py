"""Execution Time Profiles (ETPs).

PTA represents the probabilistic timing of one dynamic instruction as
an ETP — a pair of vectors ``(latencies, probabilities)`` describing a
discrete random variable (§2.1 of the paper).  ETPs compose:

* the ETP of a *sequence* of independent instructions is the
  convolution of their ETPs;
* a probabilistic choice between behaviours (e.g. hit vs miss) is a
  mixture.

These operations let tests verify the simulator's timing distributions
against closed-form expectations, and make the Equation 1 model
(:mod:`repro.pta.eq1`) executable end-to-end.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import AnalysisError

_PROB_TOLERANCE = 1e-9


class ExecutionTimeProfile:
    """A discrete latency distribution ``{latency: probability}``.

    Probabilities must sum to 1 (within tolerance).  Instances are
    immutable; all operations return new profiles.

    >>> hit_or_miss = ExecutionTimeProfile({1: 0.9, 100: 0.1})
    >>> round(hit_or_miss.mean(), 2)
    10.9
    """

    __slots__ = ("_dist",)

    def __init__(self, distribution: Dict[int, float]) -> None:
        if not distribution:
            raise AnalysisError("an ETP needs at least one latency")
        total = 0.0
        clean: Dict[int, float] = {}
        for latency, prob in distribution.items():
            if latency < 0:
                raise AnalysisError(f"negative latency {latency}")
            if prob < -_PROB_TOLERANCE:
                raise AnalysisError(f"negative probability {prob} for latency {latency}")
            if prob <= 0.0:
                continue
            clean[latency] = clean.get(latency, 0.0) + prob
            total += prob
        if abs(total - 1.0) > 1e-6:
            raise AnalysisError(f"ETP probabilities sum to {total}, expected 1")
        # Renormalise away accumulated float error.
        self._dist = {lat: prob / total for lat, prob in sorted(clean.items())}

    @classmethod
    def deterministic(cls, latency: int) -> "ExecutionTimeProfile":
        """ETP of a fixed-latency instruction."""
        return cls({latency: 1.0})

    @classmethod
    def hit_miss(
        cls, hit_latency: int, miss_latency: int, miss_probability: float
    ) -> "ExecutionTimeProfile":
        """ETP of a cache access with the given miss probability."""
        if not 0.0 <= miss_probability <= 1.0:
            raise AnalysisError(f"miss probability {miss_probability} not in [0, 1]")
        if miss_probability == 0.0:
            return cls.deterministic(hit_latency)
        if miss_probability == 1.0:
            return cls.deterministic(miss_latency)
        return cls(
            {hit_latency: 1.0 - miss_probability, miss_latency: miss_probability}
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def latencies(self) -> Tuple[int, ...]:
        """Sorted support of the distribution."""
        return tuple(self._dist.keys())

    @property
    def probabilities(self) -> Tuple[float, ...]:
        """Probabilities aligned with :attr:`latencies`."""
        return tuple(self._dist.values())

    def probability_of(self, latency: int) -> float:
        """P(X == latency)."""
        return self._dist.get(latency, 0.0)

    def mean(self) -> float:
        """Expected latency."""
        return sum(lat * prob for lat, prob in self._dist.items())

    def variance(self) -> float:
        """Variance of the latency."""
        mean = self.mean()
        return sum(prob * (lat - mean) ** 2 for lat, prob in self._dist.items())

    def exceedance(self, threshold: float) -> float:
        """P(X > threshold) — one point of the CCDF."""
        return sum(prob for lat, prob in self._dist.items() if lat > threshold)

    def quantile(self, p: float) -> int:
        """Smallest latency ``x`` with ``P(X <= x) >= p``."""
        if not 0.0 <= p <= 1.0:
            raise AnalysisError(f"quantile level {p} not in [0, 1]")
        cumulative = 0.0
        last = 0
        for lat, prob in self._dist.items():
            cumulative += prob
            last = lat
            if cumulative >= p - _PROB_TOLERANCE:
                return lat
        return last

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def convolve(self, other: "ExecutionTimeProfile") -> "ExecutionTimeProfile":
        """ETP of this instruction followed by an independent ``other``."""
        result: Dict[int, float] = {}
        for lat_a, p_a in self._dist.items():
            for lat_b, p_b in other._dist.items():
                key = lat_a + lat_b
                result[key] = result.get(key, 0.0) + p_a * p_b
        return ExecutionTimeProfile(result)

    def __add__(self, other: "ExecutionTimeProfile") -> "ExecutionTimeProfile":
        return self.convolve(other)

    @staticmethod
    def sequence(profiles: Iterable["ExecutionTimeProfile"]) -> "ExecutionTimeProfile":
        """Convolution of a whole instruction sequence."""
        result = None
        for profile in profiles:
            result = profile if result is None else result.convolve(profile)
        if result is None:
            raise AnalysisError("cannot compose an empty sequence of ETPs")
        return result

    @staticmethod
    def mixture(
        branches: Sequence[Tuple[float, "ExecutionTimeProfile"]]
    ) -> "ExecutionTimeProfile":
        """Probabilistic choice: ``branches`` are (weight, profile) pairs.

        Weights must sum to 1; models control-flow divergence or any
        discrete random selection between timing behaviours.
        """
        if not branches:
            raise AnalysisError("mixture needs at least one branch")
        total_weight = sum(weight for weight, _profile in branches)
        if abs(total_weight - 1.0) > 1e-6:
            raise AnalysisError(f"mixture weights sum to {total_weight}, expected 1")
        result: Dict[int, float] = {}
        for weight, profile in branches:
            if weight < 0:
                raise AnalysisError(f"negative mixture weight {weight}")
            for lat, prob in profile._dist.items():
                result[lat] = result.get(lat, 0.0) + weight * prob
        return ExecutionTimeProfile(result)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionTimeProfile):
            return NotImplemented
        if self.latencies != other.latencies:
            return False
        return all(
            abs(a - b) <= 1e-9
            for a, b in zip(self.probabilities, other.probabilities)
        )

    def __hash__(self) -> int:
        return hash(self.latencies)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{lat}: {prob:.4g}" for lat, prob in self._dist.items())
        return f"ExecutionTimeProfile({{{pairs}}})"
