"""Pure-scalar reference forms of the vectorised PTA statistics.

The EVT and i.i.d. statistics in :mod:`repro.pta.evt` and
:mod:`repro.pta.iid` are NumPy-vectorised because adaptive campaigns
(:mod:`repro.pta.adaptive`) re-evaluate them at every wave boundary.
This module keeps the pre-vectorisation, ``math``-only forms alive as
oracles — the same role :mod:`repro.sim.reference` plays for the
simulator hot path — and ``tests/test_pta_reference.py`` holds the two
implementations equivalent on randomised samples.

These functions are deliberately slow and simple.  They exist to be
obviously correct, not to be used in production paths.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import AnalysisError
from repro.pta.evt import EULER_GAMMA, GumbelFit
from repro.pta.iid import KSTestResult, RunsTestResult, _ks_p_value


def _scalar_sample(values: Sequence[float]) -> List[float]:
    """Scalar twin of :func:`repro.utils.stats_utils.as_sample`."""
    sample = [float(value) for value in values]
    if not sample:
        raise AnalysisError("sample is empty")
    if not all(math.isfinite(value) for value in sample):
        raise AnalysisError("sample contains non-finite values")
    return sample


def _scalar_median(values: List[float]) -> float:
    """Sample median with NumPy's convention (mean of middle pair)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def block_maxima_reference(
    sample: Sequence[float], block_size: int
) -> List[float]:
    """Scalar twin of :func:`repro.pta.evt.block_maxima`."""
    values = _scalar_sample(sample)
    if block_size <= 0:
        raise AnalysisError(f"block size must be positive, got {block_size}")
    num_blocks = len(values) // block_size
    if num_blocks < 2:
        raise AnalysisError(
            f"{len(values)} observations give only {num_blocks} blocks of "
            f"{block_size}; need at least 2"
        )
    return [
        max(values[block * block_size:(block + 1) * block_size])
        for block in range(num_blocks)
    ]


def fit_gumbel_pwm_reference(sample: Sequence[float]) -> GumbelFit:
    """Scalar twin of :func:`repro.pta.evt.fit_gumbel_pwm`."""
    ordered = sorted(_scalar_sample(sample))
    n = len(ordered)
    if n < 2:
        raise AnalysisError("Gumbel fit needs at least 2 observations")
    b0 = math.fsum(ordered) / n
    b1 = math.fsum(
        (rank / (n - 1)) * value for rank, value in enumerate(ordered)
    ) / n
    scale = (2.0 * b1 - b0) / math.log(2.0)
    if scale < 0.0:
        scale = 0.0
    location = b0 - EULER_GAMMA * scale
    return GumbelFit(location=location, scale=scale)


def wald_wolfowitz_reference(sample: Sequence[float]) -> RunsTestResult:
    """Scalar twin of :func:`repro.pta.iid.wald_wolfowitz_test`."""
    values = _scalar_sample(sample)
    median = _scalar_median(values)
    signs = [1 if value > median else 0 for value in values if value != median]
    n1 = sum(signs)
    n0 = len(signs) - n1
    if n1 == 0 or n0 == 0:
        return RunsTestResult(statistic=0.0, runs=0, n_above=n1, n_below=n0)
    runs = 1 + sum(1 for a, b in zip(signs, signs[1:]) if a != b)
    n = n0 + n1
    mean_runs = 2.0 * n0 * n1 / n + 1.0
    var_runs = 2.0 * n0 * n1 * (2.0 * n0 * n1 - n) / (n * n * (n - 1.0))
    if var_runs <= 0.0:
        raise AnalysisError("runs test variance non-positive (sample too small)")
    statistic = (runs - mean_runs) / math.sqrt(var_runs)
    return RunsTestResult(statistic=statistic, runs=runs, n_above=n1, n_below=n0)


def kolmogorov_smirnov_reference(
    first: Sequence[float], second: Sequence[float]
) -> KSTestResult:
    """Scalar twin of :func:`repro.pta.iid.kolmogorov_smirnov_test`."""
    a = sorted(_scalar_sample(first))
    b = sorted(_scalar_sample(second))
    n1, n2 = len(a), len(b)
    if n1 < 2 or n2 < 2:
        raise AnalysisError("KS test needs at least 2 observations per sample")
    statistic = 0.0
    for value in a + b:
        cdf_a = sum(1 for x in a if x <= value) / n1
        cdf_b = sum(1 for x in b if x <= value) / n2
        statistic = max(statistic, abs(cdf_a - cdf_b))
    n_eff = n1 * n2 / (n1 + n2)
    lam = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * statistic
    return KSTestResult(statistic=statistic, p_value=_ks_p_value(lam))
