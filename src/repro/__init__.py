"""repro — Time-Analysable Non-Partitioned Shared Caches (DAC 2014).

A library-grade reproduction of Slijepcevic et al., "Time-Analysable
Non-Partitioned Shared Caches for Real-Time Multicore Systems"
(DAC 2014): the EFL eviction-frequency-limiting mechanism for shared
time-randomised last-level caches, a probabilistically analysable
4-core platform simulator, an MBPTA toolkit and the paper's full
evaluation harness.

Quick start::

    from repro import (
        SystemConfig, Scenario, build_benchmark,
        collect_execution_times, estimate_pwcet,
    )

    config = SystemConfig()                      # the paper's platform
    trace = build_benchmark("ID", scale=0.1)     # a small IDCT kernel
    scenario = Scenario.efl(mid=500)             # EFL500, analysis mode
    sample = collect_execution_times(trace, config, scenario, runs=80)
    result = estimate_pwcet(sample.execution_times,
                            task="ID", scenario_label="EFL500")
    print(result.pwcet_at(1e-15))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.errors import (
    AnalysisError,
    CampaignRunError,
    CheckpointError,
    ConfigurationError,
    ReproError,
    RunTimeoutError,
    ServiceError,
    SimulationError,
    TraceError,
    TransientRunError,
)
from repro.observability import (
    MetricsRegistry,
    StructuredLogger,
    Telemetry,
    Tracer,
)
from repro.core import (
    AccessControlUnit,
    CacheRequestGenerator,
    EFLConfig,
    EFLController,
    OperationMode,
)
from repro.mem import (
    Cache,
    CacheGeometry,
    EvictOnMissRandom,
    LRUReplacement,
    ModuloPlacement,
    PartitionedLLC,
    RandomPlacement,
    SharedBus,
    WayPartition,
)
from repro.cpu import InOrderPipeline, OpKind, Trace, TraceBuilder
from repro.sim import (
    BatchBackend,
    CampaignCheckpoint,
    CampaignResult,
    ENGINE_NAMES,
    ExecutionBackend,
    FaultInjectingBackend,
    FaultPlan,
    PlanCache,
    ProcessPoolBackend,
    RetryPolicy,
    RunObserver,
    RunRecord,
    RunRequest,
    RunResult,
    Scenario,
    SerialBackend,
    ShardedBatchBackend,
    SystemConfig,
    collect_execution_times,
    execute_request,
    make_backend,
    run_isolation,
    run_workload,
)
from repro.pta import (
    ExecutionTimeProfile,
    GumbelFit,
    MBPTAResult,
    estimate_pwcet,
    iid_test,
    miss_probability,
    pwcet_estimate,
)
from repro.workloads import (
    BENCHMARK_IDS,
    ExperimentScale,
    build_all_benchmarks,
    build_benchmark,
    random_workloads,
)
from repro.analysis import (
    PWCETTable,
    best_mid,
    best_partition,
    guaranteed_ipc,
    run_fig3,
    run_fig4,
    run_iid_compliance,
)
from repro.rtos import CyclicExecutive, FrameSchedule, MinorFrame, Task
from repro.service import CampaignJob, JobQueue, ResultStore
from repro.sim.telemetry import TelemetryObserver

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CampaignRunError",
    "TransientRunError",
    "RunTimeoutError",
    "CheckpointError",
    "ServiceError",
    "AnalysisError",
    "TraceError",
    # EFL (the paper's contribution)
    "EFLConfig",
    "EFLController",
    "AccessControlUnit",
    "CacheRequestGenerator",
    "OperationMode",
    # memory hierarchy
    "Cache",
    "CacheGeometry",
    "RandomPlacement",
    "ModuloPlacement",
    "EvictOnMissRandom",
    "LRUReplacement",
    "PartitionedLLC",
    "WayPartition",
    "SharedBus",
    # cpu
    "OpKind",
    "Trace",
    "TraceBuilder",
    "InOrderPipeline",
    # simulation
    "SystemConfig",
    "Scenario",
    "RunResult",
    "RunRequest",
    "CampaignResult",
    "run_isolation",
    "run_workload",
    "execute_request",
    "collect_execution_times",
    # execution backends + observability
    "ExecutionBackend",
    "SerialBackend",
    "BatchBackend",
    "ShardedBatchBackend",
    "PlanCache",
    "ENGINE_NAMES",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunObserver",
    "RunRecord",
    "make_backend",
    # resilience
    "CampaignCheckpoint",
    "FaultPlan",
    "FaultInjectingBackend",
    # observability
    "Telemetry",
    "TelemetryObserver",
    "StructuredLogger",
    "MetricsRegistry",
    "Tracer",
    # campaign service
    "CampaignJob",
    "JobQueue",
    "ResultStore",
    # PTA
    "ExecutionTimeProfile",
    "GumbelFit",
    "MBPTAResult",
    "miss_probability",
    "pwcet_estimate",
    "estimate_pwcet",
    "iid_test",
    # workloads
    "BENCHMARK_IDS",
    "ExperimentScale",
    "build_benchmark",
    "build_all_benchmarks",
    "random_workloads",
    # analysis
    "PWCETTable",
    "guaranteed_ipc",
    "best_partition",
    "best_mid",
    "run_iid_compliance",
    "run_fig3",
    "run_fig4",
    # RTOS layer
    "Task",
    "CyclicExecutive",
    "FrameSchedule",
    "MinorFrame",
    "__version__",
]
