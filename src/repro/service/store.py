"""Content-addressed result store with in-flight coalescing.

A campaign is a pure function of ``(trace content, config, scenario,
master seed, runs)``; :func:`~repro.sim.checkpoint.campaign_fingerprint`
digests exactly that tuple.  The store uses the fingerprint as the
address: one JSON entry per fingerprint, holding the full
:meth:`~repro.sim.campaign.CampaignResult.to_dict` payload plus a
sha256 checksum over its canonical serialisation.

**Dedup contract** (the service's headline guarantee): resubmitting a
byte-identical campaign performs **zero** simulation runs and returns
a result whose samples, seeds and per-run records are bit-identical to
the first submission's.  Three paths deliver it:

* **store hit** — the fingerprint is on disk: the entry is loaded,
  its checksum re-verified, and the job completes in state ``cached``
  without ever entering the queue;
* **in-flight coalescing** — an identical campaign is *currently*
  running: the new submission attaches to the running job and both
  waiters receive the same result object when it finishes;
* **miss** — the campaign is simulated once, and a completion
  callback persists the result before any waiter is released (so a
  submission that observed a ``done`` job can immediately hit the
  store).

Integrity is never assumed: :meth:`ResultStore.get` recomputes the
checksum on every load and raises
:class:`~repro.errors.ResultIntegrityError` on mismatch —
:meth:`get_or_submit` treats a corrupt entry as a miss and re-simulates
(counted by ``store_integrity_failures``), so bit-rot degrades to a
cache miss, never to a wrong sample.

**Accounting** (metrics on the queue's registry)::

    runs_requested == runs_simulated + runs_served_from_cache

``runs_requested`` counts every run asked of :meth:`get_or_submit`;
``runs_served_from_cache`` covers store hits *and* coalesced
attachments (their runs were requested but not re-simulated);
``runs_simulated`` is incremented per executed run by the
:class:`~repro.sim.telemetry.TelemetryObserver`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ResultIntegrityError, ServiceError
from repro.sim.campaign import CampaignResult
from repro.service.jobs import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_FAILED,
    CampaignJob,
    JobQueue,
)

#: Entry format version — bumped if the payload schema ever changes.
STORE_VERSION = 1


def _canonical(payload: dict) -> bytes:
    """The byte string the entry checksum covers.

    Sorted keys and fixed separators make the serialisation canonical:
    the same payload dict always hashes identically, independent of
    insertion order or writer version.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical serialisation of a result payload."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


class ResultStore:
    """Directory of content-addressed campaign results.

    Entries live at ``<root>/<fingerprint>.json``.  Writes are atomic
    (temp file + ``os.replace``) so a crash mid-write leaves either the
    old entry or none — never a torn one; the checksum catches anything
    that slips through anyway.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: fingerprint -> running job, for in-flight coalescing.
        self._inflight: Dict[str, CampaignJob] = {}

    # ------------------------------------------------------------------
    # plain store API
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives."""
        return self.root / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> List[str]:
        """Every stored fingerprint, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def put(self, fingerprint: str, result: CampaignResult) -> Path:
        """Persist a result under its fingerprint (atomic, idempotent)."""
        payload = result.to_dict()
        entry = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        path = self.path_for(fingerprint)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(entry, indent=2))
        os.replace(tmp, path)
        return path

    def get(self, fingerprint: str) -> CampaignResult:
        """Load and integrity-verify the entry for ``fingerprint``.

        Raises :class:`~repro.errors.ServiceError` when absent and
        :class:`~repro.errors.ResultIntegrityError` when the entry is
        unparsable, structurally wrong, or fails its checksum.
        """
        path = self.path_for(fingerprint)
        if not path.exists():
            raise ServiceError(
                f"result store {self.root} has no entry for "
                f"fingerprint {fingerprint}"
            )
        try:
            entry = json.loads(path.read_text())
            version = entry["version"]
            stored_fp = entry["fingerprint"]
            checksum = entry["checksum"]
            payload = entry["payload"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ResultIntegrityError(
                f"store entry {path} is malformed: {exc}"
            ) from exc
        if version != STORE_VERSION:
            raise ResultIntegrityError(
                f"store entry {path} has version {version!r}, "
                f"this library reads version {STORE_VERSION}"
            )
        if stored_fp != fingerprint:
            raise ResultIntegrityError(
                f"store entry {path} claims fingerprint {stored_fp}, "
                f"expected {fingerprint}"
            )
        actual = payload_checksum(payload)
        if actual != checksum:
            raise ResultIntegrityError(
                f"store entry {path} failed integrity verification: "
                f"checksum {actual} != recorded {checksum}"
            )
        try:
            return CampaignResult.from_dict(payload)
        except (KeyError, TypeError) as exc:
            raise ResultIntegrityError(
                f"store entry {path} payload cannot be rebuilt: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # dedup front door
    # ------------------------------------------------------------------
    def get_or_submit(self, job: CampaignJob, queue: JobQueue) -> CampaignJob:
        """Answer ``job`` from storage, an in-flight twin, or the queue.

        Always returns a job that will resolve to the campaign's
        result — possibly ``job`` itself (simulated), possibly an
        already-running identical job (coalesced).  See the module
        docstring for the three paths and the accounting contract.
        """
        metrics = queue.telemetry.metrics
        metrics.counter("runs_requested").inc(job.runs)
        fingerprint = job.fingerprint

        # The whole hit/coalesce/miss decision happens under the store
        # lock: concurrent identical submissions must resolve to exactly
        # one simulation, so checking the in-flight table, probing the
        # disk entry and claiming the in-flight slot must be atomic
        # (a lock-free check-then-claim would let two threads both miss
        # and simulate the same campaign twice).
        result = None
        integrity_error: Optional[ResultIntegrityError] = None
        with self._lock:
            running = self._inflight.get(fingerprint)
            if running is not None and running.done:
                running = None  # finished; its entry is on disk below
            elif running is not None and running.state in (
                JOB_FAILED, JOB_CANCELLED
            ):
                # Dead claim: a failed or cancelled job never writes a
                # store entry, so its slot no longer represents a
                # simulation in flight — coalescing onto it would hand
                # this submitter the old failure instead of a fresh
                # simulation.  ``state`` (set before the terminal event)
                # is checked deliberately: it closes the window where
                # the dead job's cleanup callback has not yet released
                # the slot.  Done jobs keep the ``done`` check above —
                # their entry is only guaranteed on disk once the
                # terminal event fires.
                running = None
            if running is None:
                if self.path_for(fingerprint).exists():
                    try:
                        result = self.get(fingerprint)
                    except ResultIntegrityError as exc:
                        integrity_error = exc
                        self.path_for(fingerprint).unlink(missing_ok=True)
                if result is None:
                    # Miss: claim the slot before releasing the lock.
                    self._inflight[fingerprint] = job

        if running is not None:
            # In-flight coalescing: ride the running job.
            metrics.counter("jobs_coalesced").inc()
            metrics.counter("runs_served_from_cache").inc(job.runs)
            job.job_id = running.job_id
            job.source = "coalesced"
            queue.telemetry.logger.info(
                "job_coalesced",
                message=f"submission coalesced onto running job "
                        f"{running.job_id} (fingerprint {fingerprint})",
                job=running.job_id, fingerprint=fingerprint,
            )
            return running

        if result is not None:
            metrics.counter("store_hits").inc()
            metrics.counter("runs_served_from_cache").inc(job.runs)
            job.job_id = f"cached-{fingerprint}"
            job.result = result
            job.source = "store"
            queue.telemetry.logger.info(
                "job_cached",
                message=f"campaign served from store "
                        f"(fingerprint {fingerprint}, "
                        f"{result.runs} runs, 0 simulated)",
                job=job.job_id, fingerprint=fingerprint,
                runs=result.runs,
            )
            job._finish(JOB_CACHED)
            return job

        if integrity_error is not None:
            # Corrupt entry was dropped above; re-simulate.
            metrics.counter("store_integrity_failures").inc()
            queue.telemetry.logger.warning(
                "store_integrity_failure",
                message=f"store entry for {fingerprint} failed "
                        f"verification; re-simulating "
                        f"({str(integrity_error).strip().splitlines()[-1]})",
                fingerprint=fingerprint,
            )
        metrics.counter("store_misses").inc()
        job.add_callback(lambda done: self._persist(done, queue))
        try:
            return queue.submit(job)
        except Exception as exc:
            # The claim slot was taken under the lock above; a job the
            # queue refused (shut down, say) will never reach a terminal
            # state on its own, so the slot would leak and every later
            # duplicate would coalesce onto a job that never finishes.
            # Release the claim, fail the job (which releases any
            # waiters), then let the submission error propagate.
            with self._lock:
                if self._inflight.get(fingerprint) is job:
                    del self._inflight[fingerprint]
            job.error = f"submission failed: {exc}"
            job._finish(JOB_FAILED)
            queue.telemetry.logger.error(
                "submit_failed",
                message=f"queue refused campaign submission "
                        f"(fingerprint {fingerprint}): {exc}",
                fingerprint=fingerprint,
            )
            raise

    def _persist(self, job: CampaignJob, queue: JobQueue) -> None:
        """Completion callback: write done jobs, clear the in-flight slot.

        Runs on the worker thread *before* waiters are released
        (``CampaignJob._finish`` fires callbacks ahead of the terminal
        event), so a submitter that observed a ``done`` job can
        immediately hit the store.  The entry is written *before* the
        in-flight slot clears — a new submission always finds the slot
        or the entry, never a gap that would trigger a duplicate
        simulation.  A failed write degrades to a cache miss on the
        next submission — logged, never fatal to the job.
        """
        try:
            if job.result is not None and job.state != JOB_CACHED:
                try:
                    self.put(job.fingerprint, job.result)
                except OSError as exc:
                    queue.telemetry.logger.error(
                        "store_write_failed",
                        message=f"could not persist job {job.job_id} "
                                f"(fingerprint {job.fingerprint}): {exc}",
                        job=job.job_id, fingerprint=job.fingerprint,
                    )
        finally:
            with self._lock:
                if self._inflight.get(job.fingerprint) is job:
                    del self._inflight[job.fingerprint]

    def submit(
        self, job: CampaignJob, queue: Optional[JobQueue] = None, **queue_opts
    ) -> CampaignResult:
        """One-call convenience: dedup-submit and wait for the result.

        With no ``queue``, a private single-worker queue is created and
        torn down around the call (the CLI ``submit`` verb's path);
        ``queue_opts`` are forwarded to it.
        """
        if queue is not None:
            return self.get_or_submit(job, queue).wait()
        with JobQueue(workers=1, **queue_opts) as private:
            return self.get_or_submit(job, private).wait()
