"""Content-addressed result store with in-flight coalescing and GC.

A campaign is a pure function of ``(trace content, config, scenario,
master seed, runs)``; :func:`~repro.sim.checkpoint.campaign_fingerprint`
digests exactly that tuple.  The store uses the fingerprint as the
address: one JSON entry per fingerprint, holding the full
:meth:`~repro.sim.campaign.CampaignResult.to_dict` payload plus a
sha256 checksum over its canonical serialisation.

**Dedup contract** (the service's headline guarantee): resubmitting a
byte-identical campaign performs **zero** simulation runs and returns
a result whose samples, seeds and per-run records are bit-identical to
the first submission's.  Three paths deliver it:

* **store hit** — the fingerprint is on disk: the entry is loaded,
  its checksum re-verified, and the job completes in state ``cached``
  without ever entering the queue;
* **in-flight coalescing** — an identical campaign is *currently*
  running: the new submission attaches to the running job and both
  waiters receive the same result object when it finishes;
* **miss** — the campaign is simulated once, and a completion
  callback persists the result before any waiter is released (so a
  submission that observed a ``done`` job can immediately hit the
  store).

Integrity is never assumed: :meth:`ResultStore.get` recomputes the
checksum on every load and raises
:class:`~repro.errors.ResultIntegrityError` on mismatch —
:meth:`get_or_submit` treats a corrupt entry as a miss and re-simulates
(counted by ``store_integrity_failures``), so bit-rot degrades to a
cache miss, never to a wrong sample.

**Garbage collection** (:class:`StoreQuota`): an unbounded store on a
bounded disk is a production outage on a timer.  A store constructed
with a quota evicts least-recently-*accessed* entries (mtime is
touched on every verified read) whenever it exceeds its byte / entry
bounds, and drops entries older than ``max_age_s`` outright.  Two
classes of entry are never evicted: explicitly :meth:`pin`-ned
fingerprints, and fingerprints with an in-flight ``get_or_submit``
claim (evicting an entry the persist callback is about to rely on
would turn a finished simulation into a miss).  Because every entry
is a pure function of its fingerprint, eviction is always safe for
correctness — a re-submission of an evicted campaign re-simulates
bit-identically; GC trades CPU for disk, never samples.

**Accounting** (metrics on the queue's registry)::

    runs_requested == runs_simulated + runs_resumed
                      + runs_served_from_cache + runs_shed
                      + runs_saved_converged

``runs_requested`` counts every run asked of :meth:`get_or_submit`;
``runs_served_from_cache`` covers store hits *and* coalesced
attachments (their runs were requested but not re-simulated);
``runs_simulated`` is incremented per executed run by the
:class:`~repro.sim.telemetry.TelemetryObserver`; ``runs_resumed``
covers runs taken over from a dead process's checkpoint after crash
recovery (simulated — and counted — before this process started);
``runs_shed`` covers
front-door jobs the admission layer refused (queue full, circuit
open, deadline) or that were cancelled while queued;
``runs_saved_converged`` covers runs an adaptive campaign's
:class:`~repro.pta.adaptive.ConvergencePolicy` proved unnecessary —
requested up to ``max_runs`` but never simulated because the pWCET
quantile stabilised early.  Under overload
or not, no requested run is ever silently dropped from the ledger.
(Jobs that *fail* in simulation sit outside the invariant — their
runs are requested but neither simulated to completion, served, nor
shed; the suite asserts the invariant on success-and-shed paths.)
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, ResultIntegrityError, ServiceError
from repro.sim.campaign import CampaignResult
from repro.service.jobs import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_SHED,
    CampaignJob,
    JobQueue,
)

#: Entry format version — bumped if the payload schema ever changes.
STORE_VERSION = 1

#: Multipliers for the ``k``/``m``/``g`` byte suffixes of
#: :meth:`StoreQuota.parse` (binary, as disks are billed).
_BYTE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
#: Multipliers for the ``s``/``m``/``h``/``d`` age suffixes.
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _canonical(payload: dict) -> bytes:
    """The byte string the entry checksum covers.

    Sorted keys and fixed separators make the serialisation canonical:
    the same payload dict always hashes identically, independent of
    insertion order or writer version.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical serialisation of a result payload."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass(frozen=True)
class StoreQuota:
    """Bounds a :class:`ResultStore` enforces at every write.

    Any field may be ``None`` (unbounded along that axis); a quota
    with every field ``None`` is legal and makes GC a no-op, which is
    also the behaviour of a store constructed without a quota.
    """

    #: Total bytes of stored entries (evict LRU past this).
    max_bytes: Optional[int] = None
    #: Total number of stored entries (evict LRU past this).
    max_entries: Optional[int] = None
    #: Seconds since last access after which an entry is dropped.
    max_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ConfigurationError(
                f"store quota max_bytes must be >= 1, got {self.max_bytes}"
            )
        if self.max_entries is not None and self.max_entries < 1:
            raise ConfigurationError(
                f"store quota max_entries must be >= 1, got {self.max_entries}"
            )
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ConfigurationError(
                f"store quota max_age_s must be positive, got {self.max_age_s}"
            )

    @property
    def bounded(self) -> bool:
        """Whether any axis is actually limited."""
        return (self.max_bytes is not None or self.max_entries is not None
                or self.max_age_s is not None)

    @classmethod
    def parse(cls, spec: str) -> "StoreQuota":
        """Parse the CLI quota syntax ``bytes[:entries[:age]]``.

        Bytes take ``k``/``m``/``g`` (binary) suffixes; age takes
        ``s``/``m``/``h``/``d``.  An empty segment leaves that axis
        unbounded: ``"100m"``, ``"100m:500"``, ``":500"``,
        ``"1g::7d"`` are all valid.
        """
        parts = spec.split(":")
        if len(parts) > 3:
            raise ConfigurationError(
                f"store quota {spec!r} has more than three segments "
                f"(expected bytes[:entries[:age]])"
            )
        parts += [""] * (3 - len(parts))
        raw_bytes, raw_entries, raw_age = (part.strip() for part in parts)

        max_bytes = None
        if raw_bytes:
            text = raw_bytes.lower()
            factor = 1
            if text[-1] in _BYTE_SUFFIXES:
                factor = _BYTE_SUFFIXES[text[-1]]
                text = text[:-1]
            try:
                max_bytes = int(float(text) * factor)
            except ValueError as exc:
                raise ConfigurationError(
                    f"store quota {spec!r}: bad byte bound {raw_bytes!r}"
                ) from exc

        max_entries = None
        if raw_entries:
            try:
                max_entries = int(raw_entries)
            except ValueError as exc:
                raise ConfigurationError(
                    f"store quota {spec!r}: bad entry bound {raw_entries!r}"
                ) from exc

        max_age_s = None
        if raw_age:
            text = raw_age.lower()
            factor = 1.0
            if text[-1] in _AGE_SUFFIXES:
                factor = _AGE_SUFFIXES[text[-1]]
                text = text[:-1]
            try:
                max_age_s = float(text) * factor
            except ValueError as exc:
                raise ConfigurationError(
                    f"store quota {spec!r}: bad age bound {raw_age!r}"
                ) from exc

        return cls(max_bytes=max_bytes, max_entries=max_entries,
                   max_age_s=max_age_s)


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk entry, as GC sees it."""

    fingerprint: str
    path: Path
    size_bytes: int
    #: Last verified read (or write), seconds since the epoch.
    last_access: float


class ResultStore:
    """Directory of content-addressed campaign results.

    Entries live at ``<root>/<fingerprint>.json``.  Writes are atomic
    (temp file + ``os.replace``) so a crash mid-write leaves either the
    old entry or none — never a torn one; the checksum catches anything
    that slips through anyway.  An optional :class:`StoreQuota` bounds
    the store: every :meth:`put` runs :meth:`gc` afterwards, evicting
    least-recently-accessed unpinned entries past the quota.
    """

    def __init__(self, root, quota: Optional[StoreQuota] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quota = quota
        self._lock = threading.Lock()
        #: fingerprint -> running job, for in-flight coalescing.
        self._inflight: Dict[str, CampaignJob] = {}
        #: fingerprint -> pin count; pinned entries are never evicted.
        self._pins: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # plain store API
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives."""
        return self.root / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> List[str]:
        """Every stored fingerprint, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def entries(self) -> List[StoreEntry]:
        """Every on-disk entry, least-recently-accessed first."""
        found: List[StoreEntry] = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with an eviction/replace
            found.append(StoreEntry(
                fingerprint=path.stem,
                path=path,
                size_bytes=stat.st_size,
                last_access=stat.st_mtime,
            ))
        found.sort(key=lambda entry: (entry.last_access, entry.fingerprint))
        return found

    def total_bytes(self) -> int:
        """Bytes currently occupied by stored entries."""
        return sum(entry.size_bytes for entry in self.entries())

    def put(self, fingerprint: str, result: CampaignResult,
            metrics=None) -> Path:
        """Persist a result under its fingerprint (atomic, idempotent).

        When the store has a quota, GC runs after the write so the
        store re-enters its bounds immediately (the entry just written
        is itself the most recently accessed, so it is evicted last —
        and never, while its submission's claim is still in flight).
        """
        payload = result.to_dict()
        entry = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        path = self.path_for(fingerprint)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(entry, indent=2))
        os.replace(tmp, path)
        if self.quota is not None and self.quota.bounded:
            self.gc(metrics=metrics)
        return path

    def get(self, fingerprint: str) -> CampaignResult:
        """Load and integrity-verify the entry for ``fingerprint``.

        Raises :class:`~repro.errors.ServiceError` when absent and
        :class:`~repro.errors.ResultIntegrityError` when the entry is
        unparsable, structurally wrong, or fails its checksum.  A
        verified read touches the entry's mtime — the LRU clock GC
        orders evictions by.
        """
        path = self.path_for(fingerprint)
        if not path.exists():
            raise ServiceError(
                f"result store {self.root} has no entry for "
                f"fingerprint {fingerprint}"
            )
        try:
            entry = json.loads(path.read_bytes().decode("utf-8"))
            version = entry["version"]
            stored_fp = entry["fingerprint"]
            checksum = entry["checksum"]
            payload = entry["payload"]
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError) as exc:
            raise ResultIntegrityError(
                f"store entry {path} is malformed: {exc}"
            ) from exc
        if version != STORE_VERSION:
            raise ResultIntegrityError(
                f"store entry {path} has version {version!r}, "
                f"this library reads version {STORE_VERSION}"
            )
        if stored_fp != fingerprint:
            raise ResultIntegrityError(
                f"store entry {path} claims fingerprint {stored_fp}, "
                f"expected {fingerprint}"
            )
        actual = payload_checksum(payload)
        if actual != checksum:
            raise ResultIntegrityError(
                f"store entry {path} failed integrity verification: "
                f"checksum {actual} != recorded {checksum}"
            )
        try:
            result = CampaignResult.from_dict(payload)
        except (KeyError, TypeError) as exc:
            raise ResultIntegrityError(
                f"store entry {path} payload cannot be rebuilt: {exc}"
            ) from exc
        try:
            os.utime(path)  # refresh the LRU clock on a verified read
        except OSError:
            pass  # the read stands even if the touch races an eviction
        return result

    # ------------------------------------------------------------------
    # pinning & garbage collection
    # ------------------------------------------------------------------
    def pin(self, fingerprint: str) -> None:
        """Exempt ``fingerprint`` from eviction until :meth:`unpin`-ned.

        Pins are counted: two pins need two unpins.  Pinning a
        fingerprint with no stored entry is legal — the pin protects
        whatever entry lands under that fingerprint later.
        """
        with self._lock:
            self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1

    def unpin(self, fingerprint: str) -> None:
        """Release one pin; raises on an unpin with no matching pin."""
        with self._lock:
            count = self._pins.get(fingerprint, 0)
            if count <= 0:
                raise ServiceError(
                    f"unpin of {fingerprint} without a matching pin"
                )
            if count == 1:
                del self._pins[fingerprint]
            else:
                self._pins[fingerprint] = count - 1

    def pinned(self) -> List[str]:
        """Fingerprints currently exempt from eviction (sorted).

        The union of explicit :meth:`pin`-s and in-flight
        ``get_or_submit`` claims: a claimed fingerprint's entry is
        about to be written (or was just written and is about to be
        relied on), so evicting it would race the claim's own
        persistence.
        """
        with self._lock:
            return sorted(set(self._pins) | set(self._inflight))

    def gc(self, metrics=None, now: Optional[float] = None) -> List[str]:
        """Evict entries until the store is back inside its quota.

        Eviction order: first every unpinned entry older than
        ``max_age_s``, then least-recently-accessed unpinned entries
        while the store exceeds ``max_bytes`` or ``max_entries``.
        Pinned and in-flight fingerprints are never evicted — a store
        whose quota cannot be met without touching them stays over
        quota (logged by counters, never by exception).  Returns the
        evicted fingerprints.
        """
        if self.quota is None or not self.quota.bounded:
            return []
        clock = time.time() if now is None else now
        protected = set(self.pinned())
        entries = self.entries()
        evicted: List[str] = []

        def evict(entry: StoreEntry) -> None:
            try:
                entry.path.unlink()  # no missing_ok: a raced eviction
            except OSError:          # must be accounted exactly once
                return
            evicted.append(entry.fingerprint)
            if metrics is not None:
                metrics.counter("store_evictions").inc()
                metrics.counter("store_evicted_bytes").inc(entry.size_bytes)

        survivors: List[StoreEntry] = []
        for entry in entries:
            expired = (
                self.quota.max_age_s is not None
                and clock - entry.last_access > self.quota.max_age_s
            )
            if expired and entry.fingerprint not in protected:
                evict(entry)
            else:
                survivors.append(entry)

        total = sum(entry.size_bytes for entry in survivors)
        count = len(survivors)
        remaining: List[StoreEntry] = []
        for entry in survivors:  # oldest first
            over_bytes = (self.quota.max_bytes is not None
                          and total > self.quota.max_bytes)
            over_count = (self.quota.max_entries is not None
                          and count > self.quota.max_entries)
            if not (over_bytes or over_count):
                remaining.append(entry)
                continue
            if entry.fingerprint in protected:
                remaining.append(entry)
                continue
            evict(entry)
            total -= entry.size_bytes
            count -= 1
        return evicted

    # ------------------------------------------------------------------
    # dedup front door
    # ------------------------------------------------------------------
    def get_or_submit(self, job: CampaignJob, queue: JobQueue) -> CampaignJob:
        """Answer ``job`` from storage, an in-flight twin, or the queue.

        Always returns a job that will resolve to the campaign's
        result — possibly ``job`` itself (simulated), possibly an
        already-running identical job (coalesced).  See the module
        docstring for the three paths and the accounting contract.
        A submission the queue sheds raises the labelled
        :class:`~repro.errors.AdmissionError` (and the shed runs land
        on ``runs_shed``, keeping the ledger exact).
        """
        metrics = queue.telemetry.metrics
        metrics.counter("runs_requested").inc(job.runs)
        fingerprint = job.fingerprint

        # The whole hit/coalesce/miss decision happens under the store
        # lock: concurrent identical submissions must resolve to exactly
        # one simulation, so checking the in-flight table, probing the
        # disk entry and claiming the in-flight slot must be atomic
        # (a lock-free check-then-claim would let two threads both miss
        # and simulate the same campaign twice).
        result = None
        integrity_error: Optional[ResultIntegrityError] = None
        with self._lock:
            running = self._inflight.get(fingerprint)
            if running is not None and running.done:
                running = None  # finished; its entry is on disk below
            elif running is not None and running.state in (
                JOB_FAILED, JOB_CANCELLED, JOB_SHED
            ):
                # Dead claim: a failed, cancelled or shed job never
                # writes a store entry, so its slot no longer represents
                # a simulation in flight — coalescing onto it would hand
                # this submitter the old failure instead of a fresh
                # simulation.  ``state`` (set before the terminal event)
                # is checked deliberately: it closes the window where
                # the dead job's cleanup callback has not yet released
                # the slot.  Done jobs keep the ``done`` check above —
                # their entry is only guaranteed on disk once the
                # terminal event fires.
                running = None
            if running is None:
                if self.path_for(fingerprint).exists():
                    try:
                        result = self.get(fingerprint)
                    except ResultIntegrityError as exc:
                        integrity_error = exc
                        self.path_for(fingerprint).unlink(missing_ok=True)
                if result is None:
                    # Miss: claim the slot before releasing the lock.
                    # The claim doubles as an eviction pin (see
                    # ``pinned``), so GC cannot race the persist.
                    self._inflight[fingerprint] = job

        if running is not None:
            # In-flight coalescing: ride the running job.
            metrics.counter("jobs_coalesced").inc()
            metrics.counter("runs_served_from_cache").inc(job.runs)
            job.job_id = running.job_id
            job.source = "coalesced"
            queue.telemetry.logger.info(
                "job_coalesced",
                message=f"submission coalesced onto running job "
                        f"{running.job_id} (fingerprint {fingerprint})",
                job=running.job_id, fingerprint=fingerprint,
            )
            return running

        if result is not None:
            metrics.counter("store_hits").inc()
            metrics.counter("runs_served_from_cache").inc(job.runs)
            job.job_id = f"cached-{fingerprint}"
            job.result = result
            job.source = "store"
            queue.telemetry.logger.info(
                "job_cached",
                message=f"campaign served from store "
                        f"(fingerprint {fingerprint}, "
                        f"{result.runs} runs, 0 simulated)",
                job=job.job_id, fingerprint=fingerprint,
                runs=result.runs,
            )
            job._finish(JOB_CACHED)
            return job

        if integrity_error is not None:
            # Corrupt entry was dropped above; re-simulate.
            metrics.counter("store_integrity_failures").inc()
            queue.telemetry.logger.warning(
                "store_integrity_failure",
                message=f"store entry for {fingerprint} failed "
                        f"verification; re-simulating "
                        f"({str(integrity_error).strip().splitlines()[-1]})",
                fingerprint=fingerprint,
            )
        metrics.counter("store_misses").inc()
        # Front-door accounting: this job's runs entered the ledger via
        # ``runs_requested`` above; if the job is later shed or
        # cancelled they must land on ``runs_shed``.  The callback (not
        # the queue) owns that increment so a direct ``job.cancel()``
        # is accounted identically to a queue-side shed.
        job.accounted_runs = job.runs
        job.add_callback(lambda done: self._account_shed(done, metrics))
        job.add_callback(lambda done: self._persist(done, queue))
        try:
            return queue.submit(job)
        except Exception as exc:
            # The claim slot was taken under the lock above; a job the
            # queue refused will never reach a terminal state *unless*
            # the refusal itself shed it (AdmissionError paths finish
            # the job as ``shed`` before raising, which also ran
            # _persist and released the claim).  Release the claim if
            # still ours, fail a job that is not yet terminal (which
            # releases any waiters), then let the error propagate.
            with self._lock:
                if self._inflight.get(fingerprint) is job:
                    del self._inflight[fingerprint]
            if not job.done:
                job.error = f"submission failed: {exc}"
                job._finish(JOB_FAILED)
            queue.telemetry.logger.error(
                "submit_failed",
                message=f"queue refused campaign submission "
                        f"(fingerprint {fingerprint}): {exc}",
                fingerprint=fingerprint,
            )
            raise

    def _account_shed(self, job: CampaignJob, metrics) -> None:
        """Completion callback: shed/cancelled front-door runs → ledger."""
        if job.state in (JOB_CANCELLED, JOB_SHED) and job.accounted_runs:
            metrics.counter("runs_shed").inc(job.accounted_runs)

    def _persist(self, job: CampaignJob, queue: JobQueue) -> None:
        """Completion callback: write done jobs, clear the in-flight slot.

        Runs on the worker thread *before* waiters are released
        (``CampaignJob._finish`` fires callbacks ahead of the terminal
        event), so a submitter that observed a ``done`` job can
        immediately hit the store.  The entry is written *before* the
        in-flight slot clears — a new submission always finds the slot
        or the entry, never a gap that would trigger a duplicate
        simulation.  A failed write degrades to a cache miss on the
        next submission — logged, never fatal to the job.
        """
        try:
            if job.result is not None and job.state != JOB_CACHED:
                try:
                    self.put(job.fingerprint, job.result,
                             metrics=queue.telemetry.metrics)
                except OSError as exc:
                    queue.telemetry.logger.error(
                        "store_write_failed",
                        message=f"could not persist job {job.job_id} "
                                f"(fingerprint {job.fingerprint}): {exc}",
                        job=job.job_id, fingerprint=job.fingerprint,
                    )
        finally:
            with self._lock:
                if self._inflight.get(job.fingerprint) is job:
                    del self._inflight[job.fingerprint]

    def submit(
        self, job: CampaignJob, queue: Optional[JobQueue] = None, **queue_opts
    ) -> CampaignResult:
        """One-call convenience: dedup-submit and wait for the result.

        With no ``queue``, a private single-worker queue is created and
        torn down around the call (the CLI ``submit`` verb's path);
        ``queue_opts`` are forwarded to it.
        """
        if queue is not None:
            return self.get_or_submit(job, queue).wait()
        with JobQueue(workers=1, **queue_opts) as private:
            return self.get_or_submit(job, private).wait()
