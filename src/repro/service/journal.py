"""Crash-safe write-ahead job journal for the campaign service.

A :class:`~repro.service.jobs.JobQueue` is in-memory: SIGKILL the
serving process and every queued or running :class:`CampaignJob`
vanishes.  This module makes the *job list* as durable as the
per-campaign run journals already are.  A :class:`JobJournal` is an
append-only JSONL file (the same torn-tail-tolerant format as
:mod:`repro.sim.checkpoint` — both loaders share
:func:`~repro.sim.checkpoint.scan_durable_jsonl`):

* line 1 — header: ``{"version", "kind"}``;
* ``admit`` events — written *before* the job enters the queue
  (write-ahead ordering), carrying the full :func:`job_spec` so the
  job can be rebuilt from the journal alone;
* ``state`` events — appended as the job transitions (``running``,
  ``done``, ``failed``, ``shed``, ``cancelled``, ``requeued``,
  ``recovered``).

**Recovery contract** (:func:`recover_jobs`): after a crash, reopen
the journal, rebuild every job whose last recorded state is
non-terminal (``queued``/``running``) and re-admit it through
``store.get_or_submit``.  Jobs that *completed* before the crash
became store entries, so re-admission answers them from the store with
zero simulation; jobs that were mid-campaign resume through their
per-campaign checkpoint, re-dispatching only the runs not already
journalled.  Either way the final samples are bit-identical to an
uninterrupted run — the queue adds scheduling, never semantics, and a
crash adds a restart, never a different sample.

Each recovery writes a ``recovered`` state event naming the new job
id, so a second restart does not re-admit the same work twice.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional

from repro.cpu.trace import Trace
from repro.errors import ServiceError
from repro.pta.adaptive import ConvergencePolicy
from repro.sim.checkpoint import scan_durable_jsonl
from repro.sim.config import Scenario, SystemConfig
from repro.core.config import OperationMode
from repro.service.jobs import (
    JOB_QUEUED,
    JOB_RUNNING,
    CampaignJob,
    JobQueue,
)

#: Job-journal schema version; bumped on any incompatible format change.
JOB_JOURNAL_VERSION = 1

#: Header ``kind`` value — distinguishes a job journal from a campaign
#: checkpoint at a glance (and at load time).
JOB_JOURNAL_KIND = "job-journal"


def job_spec(job: CampaignJob) -> dict:
    """Everything needed to rebuild ``job`` after a crash, as JSON.

    The spec embeds the full trace content (not a file path — the
    journal must be self-contained: a trace regenerated at a different
    scale after restart would silently change the sample).  The
    recorded fingerprint lets :func:`job_from_spec` verify the rebuild
    reproduced the identical campaign.
    """
    return {
        "trace": {
            "name": job.trace.name,
            "pcs": list(job.trace.pcs),
            "kinds": list(job.trace.kinds),
            "addresses": list(job.trace.addresses),
        },
        "config": {
            field.name: getattr(job.config, field.name)
            for field in fields(job.config)
        },
        "scenario": {
            "mechanism": job.scenario.mechanism,
            "mode": job.scenario.mode.value,
            "mid": job.scenario.mid,
            "randomise_mid": job.scenario.randomise_mid,
            "ways_per_core": (
                list(job.scenario.ways_per_core)
                if job.scenario.ways_per_core is not None else None
            ),
        },
        "runs": job.runs,
        "master_seed": job.master_seed,
        "engine": job.engine,
        "workers": job.workers,
        "cycle_budget": job.cycle_budget,
        "deadline_s": job.deadline_s,
        "adaptive": (job.adaptive.to_dict()
                     if job.adaptive is not None else None),
        "fingerprint": job.fingerprint,
    }


def job_from_spec(spec: dict) -> CampaignJob:
    """Rebuild a :class:`CampaignJob` from a journalled :func:`job_spec`.

    The rebuilt job's fingerprint must equal the recorded one — a
    mismatch means the journal (or this library's fingerprint
    function) changed underneath the spec, and silently resuming would
    splice a different campaign into the recovered job's identity.
    """
    try:
        trace_spec = spec["trace"]
        trace = Trace(
            name=trace_spec["name"],
            pcs=list(trace_spec["pcs"]),
            kinds=list(trace_spec["kinds"]),
            addresses=list(trace_spec["addresses"]),
        )
        config = SystemConfig(**spec["config"])
        scenario_spec = dict(spec["scenario"])
        ways = scenario_spec.pop("ways_per_core")
        scenario = Scenario(
            mode=OperationMode(scenario_spec.pop("mode")),
            ways_per_core=tuple(ways) if ways is not None else None,
            **scenario_spec,
        )
        # ``.get``: journals written before the adaptive layer carry no
        # policy and rebuild as fixed-R jobs.
        adaptive_spec = spec.get("adaptive")
        job = CampaignJob(
            trace,
            config,
            scenario,
            spec["runs"],
            master_seed=spec["master_seed"],
            engine=spec["engine"],
            workers=spec["workers"],
            cycle_budget=spec["cycle_budget"],
            deadline_s=spec.get("deadline_s"),
            adaptive=(ConvergencePolicy.from_dict(adaptive_spec)
                      if adaptive_spec is not None else None),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed job spec in journal: {exc}") from exc
    recorded = spec.get("fingerprint")
    if recorded is not None and job.fingerprint != recorded:
        raise ServiceError(
            f"journalled job spec rebuilds to fingerprint "
            f"{job.fingerprint}, journal recorded {recorded} — "
            f"refusing to resume a different campaign"
        )
    return job


@dataclass
class JournalEntry:
    """One journalled job: its spec plus the state trail seen so far."""

    job_id: str
    fingerprint: str
    spec: dict
    #: State trail in journal order, e.g. ``["queued", "running"]``.
    states: List[str]

    @property
    def last_state(self) -> str:
        return self.states[-1] if self.states else JOB_QUEUED

    @property
    def pending(self) -> bool:
        """Whether a crash interrupted this job before a terminal state.

        ``recovered`` counts as terminal *for the journal*: the work
        lives on under a new job id (recorded by the recovery event),
        so re-admitting this entry again would duplicate it.
        """
        return self.last_state in (JOB_QUEUED, JOB_RUNNING)


class JobJournal:
    """Append-only write-ahead journal of job admissions and transitions.

    Opening loads the durable prefix (torn trailing line from a crash
    mid-append is truncated away, exactly as campaign checkpoints do),
    replays it into per-job :class:`JournalEntry` state, and positions
    the file for appending.  All writes are flushed per event — at
    most the in-flight event is ever lost.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = None
        self._entries: Dict[str, JournalEntry] = {}
        self._open()

    # ------------------------------------------------------------------
    def _open(self) -> None:
        objects: list = []
        durable = 0
        if self.path.exists():
            with open(self.path, "rb") as stream:
                raw = stream.read()
            objects, durable = scan_durable_jsonl(raw)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if objects:
            header = objects[0]
            if (header.get("version") != JOB_JOURNAL_VERSION
                    or header.get("kind") != JOB_JOURNAL_KIND):
                raise ServiceError(
                    f"{self.path} is not a version-{JOB_JOURNAL_VERSION} "
                    f"job journal (header {header!r})"
                )
            for event in objects[1:]:
                self._replay(event)
            os.truncate(self.path, durable)  # drop any torn tail
            self._file = open(self.path, "a")
        else:
            self._file = open(self.path, "w")
            self._write({"version": JOB_JOURNAL_VERSION,
                         "kind": JOB_JOURNAL_KIND})

    def _replay(self, event: dict) -> None:
        job_id = event.get("job_id")
        if event.get("event") == "admit":
            self._entries[job_id] = JournalEntry(
                job_id=job_id,
                fingerprint=event.get("fingerprint", ""),
                spec=event.get("spec", {}),
                states=[JOB_QUEUED],
            )
        elif event.get("event") == "state":
            entry = self._entries.get(job_id)
            if entry is not None:
                entry.states.append(event.get("state", ""))
        # Unknown event kinds are skipped: a newer writer may add
        # event types an older reader can safely ignore.

    def _write(self, event: dict) -> None:
        if self._file is None:
            raise ServiceError(f"job journal {self.path} is closed")
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._file.flush()

    # ------------------------------------------------------------------
    def record_admitted(self, job: CampaignJob) -> None:
        """Journal an admission — call *before* the job enters the queue."""
        spec = job_spec(job)
        with self._lock:
            self._write({
                "event": "admit",
                "job_id": job.job_id,
                "fingerprint": job.fingerprint,
                "spec": spec,
            })
            self._entries[job.job_id] = JournalEntry(
                job_id=job.job_id,
                fingerprint=job.fingerprint,
                spec=spec,
                states=[JOB_QUEUED],
            )

    def record_state(self, job_id: str, state: str, **extra) -> None:
        """Journal a state transition for an admitted job."""
        with self._lock:
            self._write({"event": "state", "job_id": job_id,
                         "state": state, **extra})
            entry = self._entries.get(job_id)
            if entry is not None:
                entry.states.append(state)

    def record_recovered(self, job_id: str, new_job: CampaignJob) -> None:
        """Mark ``job_id`` as re-admitted under ``new_job``'s identity.

        Written by :func:`recover_jobs` so a *second* restart does not
        re-admit the same interrupted work twice.
        """
        self.record_state(
            job_id, "recovered",
            readmitted_as=new_job.job_id, fingerprint=new_job.fingerprint,
        )

    # ------------------------------------------------------------------
    def next_job_number(self) -> int:
        """One past the highest ``job-NNNNNN`` number journalled so far.

        A restarted queue seeds its id counter here so recovered jobs
        get *fresh* ids: if a re-admission reused a journalled id, its
        ``recovered`` marker would land on its own entry and a second
        crash-and-restart would silently skip the job.
        """
        with self._lock:
            highest = 0
            for job_id in self._entries:
                if job_id and job_id.startswith("job-"):
                    try:
                        highest = max(highest, int(job_id[4:]))
                    except ValueError:
                        continue
            return highest + 1

    def entries(self) -> List[JournalEntry]:
        """Every journalled job, in admission order."""
        with self._lock:
            return list(self._entries.values())

    def pending(self) -> List[JournalEntry]:
        """Jobs a crash interrupted (last state queued/running)."""
        with self._lock:
            return [entry for entry in self._entries.values() if entry.pending]

    def close(self) -> None:
        """Close the journal file (safe to call twice)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def recover_jobs(
    journal: JobJournal,
    queue: JobQueue,
    store=None,
) -> List[CampaignJob]:
    """Re-admit every job the journal shows as interrupted.

    Each pending entry is rebuilt via :func:`job_from_spec` and
    re-admitted — through ``store.get_or_submit`` when a
    :class:`~repro.service.store.ResultStore` is given (so work that
    actually completed before the crash is answered from the store
    with zero simulation, and identical interrupted jobs coalesce),
    plain ``queue.submit`` otherwise.  Campaigns that were mid-run
    resume through their per-campaign checkpoints if the queue has a
    ``checkpoint_dir``; the recovered samples are bit-identical to an
    uninterrupted run either way.

    A spec that cannot be rebuilt (malformed journal, fingerprint
    mismatch) is counted on ``journal_rebuild_failures`` and skipped —
    one bad entry must not block recovery of the rest.  Returns the
    newly admitted jobs, in journal order.
    """
    metrics = queue.telemetry.metrics
    recovered: List[CampaignJob] = []
    for entry in journal.pending():
        try:
            job = job_from_spec(entry.spec)
        except ServiceError as exc:
            metrics.counter("journal_rebuild_failures").inc()
            queue.telemetry.logger.error(
                "journal_rebuild_failed",
                message=f"cannot rebuild journalled job {entry.job_id}: {exc}",
                job=entry.job_id, fingerprint=entry.fingerprint,
            )
            continue
        if store is not None:
            admitted = store.get_or_submit(job, queue)
        else:
            admitted = queue.submit(job)
        journal.record_recovered(entry.job_id, admitted)
        metrics.counter("jobs_recovered").inc()
        queue.telemetry.logger.info(
            "job_recovered",
            message=f"journalled job {entry.job_id} re-admitted as "
                    f"{admitted.job_id} (last state {entry.last_state!r})",
            job=admitted.job_id, previous_job=entry.job_id,
            fingerprint=entry.fingerprint,
        )
        recovered.append(admitted)
    return recovered
