"""Admission control for the campaign service: bounded queues, deadlines,
retry budgets and a deterministic-failure circuit breaker.

The simulated platform's whole thesis is that a shared resource without
admission limits has no analysable worst case — the service layer obeys
the same rule.  A :class:`~repro.service.jobs.JobQueue` configured with
an :class:`AdmissionPolicy` *sheds* work it cannot absorb instead of
queueing unboundedly:

* **queue_full** — the bounded queue is at ``max_queue_depth``;
* **circuit_open** — a :class:`CircuitBreaker` has seen this job's
  fingerprint fail *deterministically* ``breaker_threshold`` times, so
  re-admitting it would burn a worker on a failure that reproduces
  bit-identically every attempt;
* **deadline** — the job waited in the queue longer than its deadline,
  so by the time a worker picked it up the answer was already late.

Shedding is always *labelled* (:class:`~repro.errors.AdmissionError`
with a machine-readable ``reason``) and *accounted* (the ``runs_shed``
counter), extending the service reconciliation invariant to

    ``runs_requested == runs_simulated + runs_resumed
    + runs_served_from_cache + runs_shed``

— overloaded or not, no requested run is ever silently dropped.

Retry *budgets* complement the per-run
:class:`~repro.sim.backend.RetryPolicy`: the run-level policy retries
individual transient run failures inside one campaign execution, while
the job-level ``retry_budget`` re-queues a whole job whose campaign
failed transiently (e.g. a chaos-killed queue worker), resuming through
the job's checkpoint so already-completed runs are never re-simulated.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Shed because the bounded queue was at ``max_queue_depth``.
SHED_QUEUE_FULL = "queue_full"
#: Shed because the circuit breaker is open for the job's fingerprint.
SHED_CIRCUIT_OPEN = "circuit_open"
#: Shed because the job outlived its deadline while still queued.
SHED_DEADLINE = "deadline"
#: Every machine-readable shed classification, in admission order.
SHED_REASONS = (SHED_QUEUE_FULL, SHED_CIRCUIT_OPEN, SHED_DEADLINE)


@dataclass(frozen=True)
class AdmissionPolicy:
    """What a :class:`~repro.service.jobs.JobQueue` will and won't absorb.

    The default policy is fully permissive (no bound, no deadline, no
    retries, no breaker) — exactly the pre-admission behaviour — so
    existing queue users are unaffected until they opt in.

    ``deadline_s`` is the *queue-wide* default; an individual
    :class:`~repro.service.jobs.CampaignJob` may carry its own
    ``deadline_s`` which takes precedence.  A deadline is measured from
    submission to worker pickup: once a worker starts a campaign it
    finishes it (results are cached content-addressed, so late work is
    never wasted), but stale queued work is shed before burning a
    worker on it.
    """

    #: Maximum jobs waiting in the queue (``None`` = unbounded).
    max_queue_depth: Optional[int] = None
    #: Default seconds a job may wait before pickup (``None`` = forever).
    deadline_s: Optional[float] = None
    #: Whole-job re-queues allowed after a *transient* campaign failure.
    retry_budget: int = 0
    #: Deterministic failures per fingerprint before the breaker opens
    #: (``None`` disables the breaker).
    breaker_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be non-negative, got {self.retry_budget}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )


class CircuitBreaker:
    """Per-fingerprint deterministic-failure tracking.

    A campaign whose failure classifies as *deterministic* (same seeds,
    same trace → same failure, bit-identically, every attempt) cannot
    be fixed by re-running it.  The breaker counts deterministic
    failures per campaign fingerprint; once a fingerprint accumulates
    ``threshold`` of them the breaker *opens* for that fingerprint and
    the queue sheds further submissions of the same campaign at
    admission (reason ``circuit_open``) instead of burning workers.

    A success for a fingerprint closes its circuit and clears its
    count (the world may have changed: new code, new trace file).
    Transient failures never count — they are the retry budget's
    domain.  ``threshold=None`` disables the breaker entirely.
    """

    def __init__(self, threshold: Optional[int]) -> None:
        if threshold is not None and threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}

    def record_failure(self, fingerprint: str) -> None:
        """Count one deterministic failure against ``fingerprint``."""
        if self.threshold is None:
            return
        with self._lock:
            self._failures[fingerprint] = self._failures.get(fingerprint, 0) + 1

    def record_success(self, fingerprint: str) -> None:
        """A success closes the fingerprint's circuit and clears its count."""
        with self._lock:
            self._failures.pop(fingerprint, None)

    def is_open(self, fingerprint: str) -> bool:
        """Whether admissions of ``fingerprint`` should be shed."""
        if self.threshold is None:
            return False
        with self._lock:
            return self._failures.get(fingerprint, 0) >= self.threshold

    def open_fingerprints(self) -> Tuple[str, ...]:
        """Every fingerprint whose circuit is currently open (sorted)."""
        if self.threshold is None:
            return ()
        with self._lock:
            return tuple(sorted(
                fingerprint
                for fingerprint, count in self._failures.items()
                if count >= self.threshold
            ))

    def reset(self, fingerprint: Optional[str] = None) -> None:
        """Manually close one fingerprint's circuit, or all of them."""
        with self._lock:
            if fingerprint is None:
                self._failures.clear()
            else:
                self._failures.pop(fingerprint, None)
