"""Campaign-as-a-service: job queue + content-addressed result store.

The one-shot campaign API (:func:`~repro.sim.campaign.collect_execution_times`)
answers "run this campaign now, here, once".  This package answers the
service-shaped questions layered on top of it:

* :mod:`repro.service.jobs` — :class:`CampaignJob` (a campaign
  submission with a ``queued → running → done/failed/cached``
  lifecycle) and :class:`JobQueue` (bounded worker threads executing
  jobs through the existing engine-selection policy);
* :mod:`repro.service.store` — :class:`ResultStore`, a
  content-addressed store keyed by
  :func:`~repro.sim.checkpoint.campaign_fingerprint` whose
  :meth:`~ResultStore.get_or_submit` deduplicates byte-identical
  submissions against disk (state ``cached``, zero runs simulated) and
  against in-flight twins (coalescing), with sha256 integrity
  re-verification on every load, bounded by an optional
  :class:`StoreQuota` with LRU eviction;
* :mod:`repro.service.admission` — :class:`AdmissionPolicy` (bounded
  queue depth, deadlines, job-level retry budgets) and
  :class:`CircuitBreaker` (stops re-admitting deterministically
  failing campaigns), both feeding labelled
  :class:`~repro.errors.AdmissionError` sheds;
* :mod:`repro.service.journal` — :class:`JobJournal`, a crash-safe
  write-ahead journal of job admissions so a SIGKILLed queue can be
  rebuilt on restart (:func:`recover_jobs`) with samples bit-identical
  to an uninterrupted run.

Everything here is scheduling and persistence, never semantics: a
sample obtained through the service is bit-identical to one obtained
by calling the campaign function directly — including after crashes,
restarts, sheds and evictions.
"""

from repro.service.admission import (
    SHED_CIRCUIT_OPEN,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHED_REASONS,
    AdmissionPolicy,
    CircuitBreaker,
)
from repro.service.jobs import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_SHED,
    JOB_STATES,
    TERMINAL_STATES,
    CampaignJob,
    JobQueue,
)
from repro.service.journal import (
    JOB_JOURNAL_VERSION,
    JobJournal,
    JournalEntry,
    job_from_spec,
    job_spec,
    recover_jobs,
)
from repro.service.store import (
    STORE_VERSION,
    ResultStore,
    StoreEntry,
    StoreQuota,
    payload_checksum,
)

__all__ = [
    "CampaignJob",
    "JobQueue",
    "ResultStore",
    "StoreEntry",
    "StoreQuota",
    "payload_checksum",
    "STORE_VERSION",
    "AdmissionPolicy",
    "CircuitBreaker",
    "SHED_QUEUE_FULL",
    "SHED_CIRCUIT_OPEN",
    "SHED_DEADLINE",
    "SHED_REASONS",
    "JobJournal",
    "JournalEntry",
    "job_spec",
    "job_from_spec",
    "recover_jobs",
    "JOB_JOURNAL_VERSION",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CACHED",
    "JOB_CANCELLED",
    "JOB_SHED",
    "JOB_STATES",
    "TERMINAL_STATES",
]
