"""Campaign-as-a-service: job queue + content-addressed result store.

The one-shot campaign API (:func:`~repro.sim.campaign.collect_execution_times`)
answers "run this campaign now, here, once".  This package answers the
service-shaped questions layered on top of it:

* :mod:`repro.service.jobs` — :class:`CampaignJob` (a campaign
  submission with a ``queued → running → done/failed/cached``
  lifecycle) and :class:`JobQueue` (bounded worker threads executing
  jobs through the existing engine-selection policy);
* :mod:`repro.service.store` — :class:`ResultStore`, a
  content-addressed store keyed by
  :func:`~repro.sim.checkpoint.campaign_fingerprint` whose
  :meth:`~ResultStore.get_or_submit` deduplicates byte-identical
  submissions against disk (state ``cached``, zero runs simulated) and
  against in-flight twins (coalescing), with sha256 integrity
  re-verification on every load.

Everything here is scheduling and persistence, never semantics: a
sample obtained through the service is bit-identical to one obtained
by calling the campaign function directly.
"""

from repro.service.jobs import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    TERMINAL_STATES,
    CampaignJob,
    JobQueue,
)
from repro.service.store import STORE_VERSION, ResultStore, payload_checksum

__all__ = [
    "CampaignJob",
    "JobQueue",
    "ResultStore",
    "payload_checksum",
    "STORE_VERSION",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CACHED",
    "JOB_CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
]
