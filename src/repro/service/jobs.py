"""Campaign jobs and the bounded-worker job queue.

The one-shot CLI runs a campaign and forgets it; the service layer
makes campaigns *jobs*: a :class:`CampaignJob` names everything the
campaign depends on (trace, config, scenario, runs, master seed,
engine choice), carries its lifecycle state, and resolves to a
:class:`~repro.sim.campaign.CampaignResult`.  A :class:`JobQueue`
executes jobs on a bounded pool of worker threads through the existing
engine-selection policy (:func:`~repro.sim.campaign.collect_execution_times`),
so everything already built under that seam — backends, sharding,
retries, telemetry — serves queued submissions unchanged.

**Job lifecycle**::

    queued ──► running ──► done
       │           ├─────► failed
       │           └─────► queued            (job-level retry: a
       │                                     transient campaign failure
       │                                     with retry budget left)
       ├─────────────────► cancelled        (cancel() before a worker
       │                                     picked the job up)
       ├─────────────────► shed             (admission control refused
       │                                     or deadline expired —
       │                                     labelled AdmissionError)
       └─────────────────► cached           (ResultStore answered the
                                             submission from storage —
                                             such jobs never enqueue)

Threads (not processes) are the right worker substrate here: a job's
heavy lifting already fans out through the process-pool/sharded
backends, so queue workers spend their time waiting, and threads share
the in-process :class:`~repro.sim.plancache.PlanCache` and telemetry
registry for free.

Determinism: a job is a pure function of ``(trace, config, scenario,
runs, master_seed)`` — the queue adds scheduling, never semantics, so
a job's sample is bit-identical to calling
:func:`~repro.sim.campaign.collect_execution_times` directly.  That
stays true under every robustness feature this module adds: a
journalled-and-recovered job, a checkpoint-resumed job and a
retry-after-chaos-kill job all produce the bit-identical sample.

**Durability & admission** (all opt-in, defaults preserve the plain
queue): an :class:`~repro.service.admission.AdmissionPolicy` bounds
queue depth, attaches deadlines and job-level retry budgets, and
drives a per-fingerprint circuit breaker; a
:class:`~repro.service.journal.JobJournal` write-ahead journals every
admission so a SIGKILLed queue can be rebuilt; a ``checkpoint_dir``
gives every executed campaign a per-fingerprint run checkpoint so a
recovered job resumes instead of restarting; a
:class:`~repro.sim.faults.ServiceFaultPlan` deterministically kills
queue workers to prove all of the above.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import threading
import time
import traceback
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.cpu.trace import Trace
from repro.errors import (
    AdmissionError,
    CampaignRunError,
    ConfigurationError,
    ERROR_KIND_TRANSIENT,
    JobFailedError,
    ServiceError,
    WorkerCrashError,
    classify_exception,
)
from repro.observability import Telemetry
from repro.service.admission import (
    SHED_CIRCUIT_OPEN,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionPolicy,
    CircuitBreaker,
)
from repro.sim.campaign import CampaignResult, collect_execution_times
from repro.sim.checkpoint import (
    CampaignCheckpoint,
    campaign_fingerprint,
    scan_durable_jsonl,
)
from repro.sim.config import Scenario, SystemConfig

#: Job lifecycle states (see the module docstring for the transitions).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CACHED = "cached"
JOB_CANCELLED = "cancelled"
JOB_SHED = "shed"
JOB_STATES = (
    JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CACHED,
    JOB_CANCELLED, JOB_SHED,
)

#: States a job can never leave.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CACHED, JOB_CANCELLED, JOB_SHED)


class CampaignJob:
    """One campaign submission and its lifecycle.

    Construction captures the campaign's identity; the queue (or the
    result store, for cache hits) drives the state machine.  ``wait``
    blocks until the job is terminal and returns the result — every
    concurrent waiter gets the same object, which is how in-flight
    coalescing hands one simulation to many submitters.
    """

    def __init__(
        self,
        trace: Trace,
        config: SystemConfig,
        scenario: Scenario,
        runs: int,
        master_seed: int = 0,
        engine: str = "auto",
        workers: Optional[int] = None,
        cycle_budget: Optional[int] = None,
        deadline_s: Optional[float] = None,
        adaptive=None,
    ) -> None:
        if runs <= 0:
            raise ConfigurationError(
                f"a campaign job needs at least one run, got {runs}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(
                f"a job deadline must be positive, got {deadline_s}"
            )
        if adaptive is not None and runs != adaptive.max_runs:
            raise ConfigurationError(
                f"adaptive job requested runs={runs} but its "
                f"ConvergencePolicy caps max_runs={adaptive.max_runs}; "
                f"submit with runs=policy.max_runs"
            )
        self.trace = trace
        self.config = config
        self.scenario = scenario
        self.runs = runs
        self.master_seed = master_seed
        self.engine = engine
        self.workers = workers
        self.cycle_budget = cycle_budget
        #: Per-job queue-wait deadline (seconds); overrides the queue's
        #: :class:`~repro.service.admission.AdmissionPolicy` default.
        self.deadline_s = deadline_s
        #: Streaming-convergence policy
        #: (:class:`~repro.pta.adaptive.ConvergencePolicy`); None runs
        #: the classic fixed-R campaign.
        self.adaptive = adaptive
        #: Content fingerprint — the dedup key of the result store.
        #: The convergence policy is part of the identity: an adaptive
        #: result is a *prefix* sample, so it must never answer a
        #: fixed-R submission from the store (nor vice versa).
        self.fingerprint = campaign_fingerprint(
            trace, config, scenario, master_seed, runs, adaptive=adaptive
        )
        self.job_id: Optional[str] = None
        self.state = JOB_QUEUED
        self.result: Optional[CampaignResult] = None
        self.error: Optional[str] = None
        #: How the result was obtained: ``"simulated"`` (a worker ran
        #: it), ``"store"`` (answered from the result store) or
        #: ``"coalesced"`` (attached to an identical in-flight job).
        self.source: Optional[str] = None
        #: Shed classification when the admission layer refused the job
        #: (one of :data:`~repro.service.admission.SHED_REASONS`).
        self.shed_reason: Optional[str] = None
        #: Execution attempts a queue worker has started (job-level
        #: retries re-queue the whole job and bump this).
        self.attempts = 0
        #: Runs the service front door accounted on ``runs_requested``
        #: for this job; the same number lands on ``runs_shed`` if the
        #: job is shed or cancelled.  Zero for jobs submitted directly
        #: to a queue (they are outside the reconciliation invariant).
        self.accounted_runs = 0
        #: ``(index, seed, message, kind)`` quadruples when the campaign
        #: failed with a :class:`~repro.errors.CampaignRunError`.
        self.failures: list = []
        #: Monotonic admission number — the index a
        #: :class:`~repro.sim.faults.ServiceFaultPlan` keys chaos on.
        self._admit_index = 0
        #: Checkpointed runs already on disk at this queue's first
        #: pickup — simulated by a previous process incarnation, so
        #: they land on ``runs_resumed`` (not ``runs_simulated``)
        #: when the job succeeds.
        self._foreign_runs = 0
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._terminal = threading.Event()
        self._callbacks: List[Callable[["CampaignJob"], None]] = []

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._terminal.is_set()

    def add_callback(self, callback: Callable[["CampaignJob"], None]) -> None:
        """Run ``callback(job)`` when the job turns terminal.

        Fires immediately if the job already is.  Callbacks run on the
        worker thread that finished the job (or the caller's, for
        already-terminal jobs); exceptions propagate to that thread's
        error handling, so persistence hooks should catch their own.
        """
        fire = False
        with self._lock:
            if self.state in TERMINAL_STATES:
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            callback(self)

    def _finish(self, state: str) -> None:
        """Transition to a terminal state and release every waiter.

        Callbacks run *before* the terminal event is set so that
        persistence hooks (the result store's write-through) complete
        before any waiter wakes: a submitter that saw its job finish
        can immediately re-hit the store.  The event is set even if a
        callback raises — a broken hook must never strand waiters.
        """
        with self._lock:
            self.state = state
            self.finished_at = time.time()
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        try:
            for callback in callbacks:
                callback(self)
        finally:
            self._terminal.set()

    def cancel(self) -> bool:
        """Cancel the job if no worker picked it up yet.

        Returns ``True`` when the job moved to ``cancelled``; ``False``
        when it already left the queue (running or terminal) — a
        campaign mid-execution is not interrupted, because its partial
        work is already journalled/observable and killing it buys
        nothing deterministic.
        """
        with self._lock:
            if self.state != JOB_QUEUED:
                return False
            self.state = JOB_CANCELLED
        self._finish(JOB_CANCELLED)
        return True

    def wait(self, timeout: Optional[float] = None) -> CampaignResult:
        """Block until terminal; return the result or raise.

        Failure surfaces as the most specific labelled error
        available: :class:`~repro.errors.AdmissionError` (with its
        machine-readable shed ``reason``) for a shed job,
        :class:`~repro.errors.JobFailedError` (carrying the
        transient/deterministic per-run failure breakdown) for a
        failed one, plain :class:`~repro.errors.ServiceError` for
        cancellation and timeout.
        """
        if not self._terminal.wait(timeout):
            raise ServiceError(
                f"job {self.job_id or '<unsubmitted>'} did not finish "
                f"within {timeout}s (state {self.state!r})"
            )
        if self.state == JOB_CANCELLED:
            raise ServiceError(f"job {self.job_id} was cancelled")
        if self.state == JOB_SHED:
            reason = self.shed_reason or "unknown"
            detail = (self.error or "").strip()
            raise AdmissionError(
                f"job {self.job_id or '<unadmitted>'} was shed "
                f"({reason}){': ' + detail if detail else ''}",
                reason=reason,
            )
        if self.state == JOB_FAILED:
            detail = (self.error or "unknown error").strip()
            raise JobFailedError(self.job_id, detail, failures=self.failures)
        assert self.result is not None
        return self.result

    def to_dict(self) -> dict:
        """Status summary as a JSON-ready dict (no sample payload)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "task": self.trace.name,
            "scenario": self.scenario.label(),
            "runs": self.runs,
            "master_seed": self.master_seed,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "shed_reason": self.shed_reason,
            "attempts": self.attempts,
            "deadline_s": self.deadline_s,
            "adaptive": (self.adaptive.to_dict()
                         if self.adaptive is not None else None),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": (self.error.strip().splitlines()[-1]
                      if self.error else None),
        }


class JobQueue:
    """Executes :class:`CampaignJob` submissions on bounded workers.

    Parameters
    ----------
    workers:
        Worker *threads* (not processes — see the module docstring).
        Each runs one job at a time, so this bounds the number of
        concurrent campaigns, not their internal parallelism.
    telemetry:
        :class:`~repro.observability.Telemetry` threaded into every
        executed campaign (metrics/spans/logs); also receives the
        queue's own ``jobs_submitted`` / ``jobs_completed`` /
        ``jobs_failed`` / ``jobs_cancelled`` / ``jobs_shed`` /
        ``jobs_requeued`` counters, the ``job_queue_wait_s`` latency
        histogram and the ``job_queue_depth`` / ``jobs_inflight``
        gauges.
    start:
        Start the workers immediately (default).  Tests pass ``False``
        to stage submissions deterministically, then call
        :meth:`start`.
    admission:
        :class:`~repro.service.admission.AdmissionPolicy` bounding what
        the queue absorbs.  The default policy is fully permissive —
        identical to the pre-admission queue.
    journal:
        Optional :class:`~repro.service.journal.JobJournal`: every
        admission is write-ahead journalled *before* it enters the
        queue, and every transition is appended, so a SIGKILLed
        process can rebuild its job list on restart
        (:func:`~repro.service.journal.recover_jobs`).
    checkpoint_dir:
        Optional directory of per-campaign run checkpoints (one
        ``<fingerprint>.jsonl`` per executed job).  With a journal,
        this is what turns restart-recovery from "re-simulate from
        scratch" into "resume where the crash struck"; the checkpoint
        is deleted once the job completes.
    fault_plan:
        Optional :class:`~repro.sim.faults.ServiceFaultPlan` — its
        ``kill`` faults raise a
        :class:`~repro.errors.WorkerCrashError` inside the worker at
        job pickup, exercising the job-level retry budget and
        checkpoint resume deterministically.

    Use as a context manager for deterministic teardown::

        with JobQueue(workers=2) as queue:
            job = queue.submit(CampaignJob(...))
            result = job.wait()
    """

    def __init__(
        self,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        start: bool = True,
        admission: Optional[AdmissionPolicy] = None,
        journal=None,
        checkpoint_dir=None,
        fault_plan=None,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError(
                f"job queue needs at least one worker, got {workers}"
            )
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.breaker = CircuitBreaker(self.admission.breaker_threshold)
        self.journal = journal
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.fault_plan = fault_plan
        self._queue: "queue_mod.Queue[Optional[CampaignJob]]" = queue_mod.Queue()
        self._jobs: Dict[str, CampaignJob] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        # A journal-backed queue continues the journal's id sequence so
        # recovered jobs never collide with the ids they had before the
        # crash (see JobJournal.next_job_number).
        first_id = 1
        if self.journal is not None:
            first_id = self.journal.next_job_number()
        self._ids = itertools.count(first_id)
        self._started = False
        self._stopped = False
        self.telemetry.metrics.gauge("job_queue_depth", self.queue_depth)
        self.telemetry.metrics.gauge("jobs_inflight", self.inflight)
        if start:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"campaign-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def queue_depth(self) -> int:
        """Jobs currently waiting for a worker (state ``queued``)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.state == JOB_QUEUED
            )

    def inflight(self) -> int:
        """Jobs a worker is currently executing (state ``running``)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.state == JOB_RUNNING
            )

    def submit(self, job: CampaignJob) -> CampaignJob:
        """Admit the job (or shed it), assign an id, enqueue.

        Raises a labelled :class:`~repro.errors.AdmissionError` when
        the admission policy sheds the submission (bounded queue full,
        circuit open for the job's fingerprint); the job itself also
        turns terminal (state ``shed``) so any waiter sees the same
        labelled error instead of hanging.
        """
        shed_reason = None
        shed_detail = None
        with self._lock:
            if self._stopped:
                raise ServiceError("job queue is shut down; cannot submit")
            if self.breaker.is_open(job.fingerprint):
                shed_reason = SHED_CIRCUIT_OPEN
                shed_detail = (
                    f"circuit breaker open for fingerprint "
                    f"{job.fingerprint}: {self.admission.breaker_threshold} "
                    f"deterministic failures recorded"
                )
            else:
                depth = sum(
                    1 for queued in self._jobs.values()
                    if queued.state == JOB_QUEUED
                )
                limit = self.admission.max_queue_depth
                if limit is not None and depth >= limit:
                    shed_reason = SHED_QUEUE_FULL
                    shed_detail = (
                        f"queue depth {depth} is at its bound {limit}"
                    )
                else:
                    index = next(self._ids)
                    job.job_id = f"job-{index:06d}"
                    job._admit_index = index
                    self._jobs[job.job_id] = job
        if shed_reason is not None:
            self._shed(job, shed_reason, shed_detail)
            raise AdmissionError(
                f"submission shed ({shed_reason}): {shed_detail}",
                reason=shed_reason,
            )
        if self.journal is not None:
            try:
                self.journal.record_admitted(job)
            except Exception as exc:  # noqa: BLE001 — availability first
                self.telemetry.logger.error(
                    "journal_write_failed",
                    message=f"could not journal admission of {job.job_id}: "
                            f"{exc} (job runs, but will not survive a crash)",
                    job=job.job_id,
                )
            job.add_callback(self._journal_terminal)
        self.telemetry.metrics.counter("jobs_submitted").inc()
        self.telemetry.logger.info(
            "job_submitted",
            message=f"job {job.job_id} queued: {job.trace.name} under "
                    f"{job.scenario.label()} ({job.runs} runs)",
            job=job.job_id, task=job.trace.name,
            scenario=job.scenario.label(), runs=job.runs,
            fingerprint=job.fingerprint,
        )
        self._queue.put(job)
        return job

    def status(self, job_id: str) -> CampaignJob:
        """Look a submitted job up by id."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> List[CampaignJob]:
        """Every job this queue has seen, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job by id (see :meth:`CampaignJob.cancel`)."""
        cancelled = self.status(job_id).cancel()
        if cancelled:
            self.telemetry.metrics.counter("jobs_cancelled").inc()
        return cancelled

    def health(self) -> dict:
        """Readiness snapshot: queue state + service counters, JSON-ready.

        ``ok`` means the queue is accepting work (started, not shut
        down).  The ``runs`` block carries the reconciliation
        invariant's terms; the ``store`` block mirrors the result-store
        counters emitted on this queue's registry.
        """
        metrics = self.telemetry.metrics
        with self._lock:
            jobs = list(self._jobs.values())
            ok = self._started and not self._stopped
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "ok": ok,
            "workers": self.workers,
            "queue_depth": by_state.get(JOB_QUEUED, 0),
            "inflight": by_state.get(JOB_RUNNING, 0),
            "breaker_open": list(self.breaker.open_fingerprints()),
            "jobs": {
                "by_state": by_state,
                "submitted": metrics.value("jobs_submitted"),
                "completed": metrics.value("jobs_completed"),
                "failed": metrics.value("jobs_failed"),
                "cancelled": metrics.value("jobs_cancelled"),
                "shed": metrics.value("jobs_shed"),
                "requeued": metrics.value("jobs_requeued"),
                "recovered": metrics.value("jobs_recovered"),
                "coalesced": metrics.value("jobs_coalesced"),
            },
            "runs": {
                "requested": metrics.value("runs_requested"),
                "simulated": metrics.value("runs_simulated"),
                "resumed": metrics.value("runs_resumed"),
                "served_from_cache": metrics.value("runs_served_from_cache"),
                "shed": metrics.value("runs_shed"),
                "saved_converged": metrics.value("runs_saved_converged"),
                "speculated_waste": metrics.value("runs_speculated_waste"),
            },
            "convergence": {
                "adaptive_campaigns": metrics.value("adaptive_campaigns"),
                "campaigns_converged": metrics.value("campaigns_converged"),
            },
            "store": {
                "hits": metrics.value("store_hits"),
                "misses": metrics.value("store_misses"),
                "integrity_failures": metrics.value("store_integrity_failures"),
                "evictions": metrics.value("store_evictions"),
                "evicted_bytes": metrics.value("store_evicted_bytes"),
            },
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally drain and join the workers.

        With ``wait=True`` queued jobs still in the pipe are executed
        before the workers exit (a submission accepted is a submission
        answered).  With ``wait=False`` the queue stops *now*: jobs
        still queued are cancelled — terminal, so their waiters raise
        a labelled error instead of hanging forever — while running
        jobs finish on their (daemon) workers.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        if not started or not wait:
            # Nothing will drain the queue (workers never existed, or
            # the caller is abandoning it): cancel queued jobs loudly
            # rather than strand their waiters.
            self._drain_cancelling()
            if started:
                for _ in self._threads:
                    self._queue.put(None)
            return
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        # A job-level retry racing the shutdown can re-queue a job
        # behind the sentinels, where no worker will ever reach it.
        self._drain_cancelling()

    def _drain_cancelling(self) -> None:
        """Empty the queue, cancelling every job found (not sentinels)."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue_mod.Empty:
                return
            if job is not None and job.cancel():
                self.telemetry.metrics.counter("jobs_cancelled").inc()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _shed(self, job: CampaignJob, reason: str, detail: str) -> None:
        """Turn ``job`` terminal with a labelled shed classification."""
        job.shed_reason = reason
        job.error = detail
        metrics = self.telemetry.metrics
        metrics.counter("jobs_shed").inc()
        metrics.counter(f"jobs_shed_{reason}").inc()
        self.telemetry.logger.warning(
            "job_shed",
            message=f"job {job.job_id or '<unadmitted>'} shed "
                    f"({reason}): {detail}",
            job=job.job_id, reason=reason, fingerprint=job.fingerprint,
        )
        if self.journal is not None and job.job_id is not None:
            try:
                self.journal.record_state(job.job_id, JOB_SHED, reason=reason)
            except Exception:  # noqa: BLE001 — shed must not explode
                pass
        job._finish(JOB_SHED)

    def _journal_terminal(self, job: CampaignJob) -> None:
        """Terminal-state callback: append the final state to the journal.

        Swallows journal errors — a full disk must degrade durability
        (the job re-runs after a crash), never correctness (the job's
        waiters still get their result).
        """
        if self.journal is None or job.job_id is None:
            return
        try:
            self.journal.record_state(job.job_id, job.state)
        except Exception as exc:  # noqa: BLE001 — see docstring
            self.telemetry.logger.error(
                "journal_write_failed",
                message=f"could not journal terminal state of {job.job_id}: "
                        f"{exc}",
                job=job.job_id,
            )

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.done:  # cancelled/shed while queued
                continue
            self._execute(job)

    def _deadline_for(self, job: CampaignJob) -> Optional[float]:
        if job.deadline_s is not None:
            return job.deadline_s
        return self.admission.deadline_s

    def _execute(self, job: CampaignJob) -> None:
        deadline = self._deadline_for(job)
        if (deadline is not None
                and time.time() - job.submitted_at > deadline):
            # Shed-on-pickup: the job outlived its deadline while
            # queued, so the answer is already late — don't burn a
            # worker producing it.  (Once running, a job always
            # finishes: its result is cached content-addressed, so
            # completed work is never wasted.)
            self._shed(
                job, SHED_DEADLINE,
                f"queued {time.time() - job.submitted_at:.3f}s, "
                f"deadline was {deadline}s",
            )
            return
        with job._lock:
            if job.state != JOB_QUEUED:
                return
            job.state = JOB_RUNNING
            job.started_at = time.time()
            job.attempts += 1
        self.telemetry.metrics.histogram("job_queue_wait_s").observe(
            job.started_at - job.submitted_at
        )
        if self.journal is not None:
            try:
                self.journal.record_state(
                    job.job_id, JOB_RUNNING, attempt=job.attempts
                )
            except Exception:  # noqa: BLE001 — durability, not correctness
                pass
        checkpoint = None
        if self.checkpoint_dir is not None:
            checkpoint = CampaignCheckpoint(
                self.checkpoint_dir / f"{job.fingerprint}.jsonl"
            )
            if job.attempts == 1 and checkpoint.path.exists():
                # Runs already checkpointed at this queue's FIRST
                # pickup were simulated by a previous incarnation
                # (crash recovery): this process's ``runs_simulated``
                # never saw them, so they get their own ledger slot
                # (``runs_resumed``) when the job succeeds.  Runs
                # checkpointed by a failed earlier attempt of *this*
                # queue were already counted live and must not be.
                try:
                    durable, _ = scan_durable_jsonl(
                        checkpoint.path.read_bytes()
                    )
                    job._foreign_runs = max(0, len(durable) - 1)
                except OSError:
                    job._foreign_runs = 0
        try:
            if self.fault_plan is not None:
                fault = self.fault_plan.fault_for(
                    job._admit_index, job.attempts
                )
                if fault == "kill":
                    raise WorkerCrashError(
                        f"chaos: queue worker killed executing "
                        f"{job.job_id} (attempt {job.attempts})"
                    )
            result = collect_execution_times(
                job.trace,
                job.config,
                job.scenario,
                job.runs,
                master_seed=job.master_seed,
                engine=job.engine,
                workers=job.workers,
                cycle_budget=job.cycle_budget,
                checkpoint=checkpoint,
                telemetry=self.telemetry,
                job_id=job.job_id,
                adaptive=job.adaptive,
            )
        except Exception as exc:  # noqa: BLE001 — captured onto the job
            self._handle_failure(job, exc)
            return
        self.breaker.record_success(job.fingerprint)
        if job._foreign_runs and result.resumed_runs:
            # A rejected/stale checkpoint resumes nothing: account
            # only what the campaign actually took over.
            self.telemetry.metrics.counter("runs_resumed").inc(
                min(job._foreign_runs, result.resumed_runs)
            )
        if checkpoint is not None:
            # The result is about to be persisted content-addressed;
            # the run-level checkpoint has served its purpose.
            checkpoint.path.unlink(missing_ok=True)
        job.result = result
        job.source = "simulated"
        self.telemetry.metrics.counter("jobs_completed").inc()
        if result.adaptive:
            # Early convergence frees this worker slot ``runs_saved``
            # runs sooner than the fixed-R budget; the campaign layer
            # already reconciled the saving on ``runs_saved_converged``.
            self.telemetry.logger.info(
                "job_converged",
                message=f"job {job.job_id} "
                        f"{'converged' if result.converged else 'hit max_runs'}"
                        f": {result.runs_executed} of "
                        f"{result.runs_executed + result.runs_saved + result.runs_speculated_waste} runs "
                        f"({result.runs_saved} saved)",
                job=job.job_id, converged=result.converged,
                runs_executed=result.runs_executed,
                runs_saved=result.runs_saved,
                runs_speculated_waste=result.runs_speculated_waste,
            )
        self.telemetry.logger.info(
            "job_done",
            message=f"job {job.job_id} done: {result.runs} runs in "
                    f"{result.wall_time_s:.2f}s ({result.backend})",
            job=job.job_id, runs=result.runs,
            wall_time_s=round(result.wall_time_s, 6), backend=result.backend,
        )
        job._finish(JOB_DONE)

    def _handle_failure(self, job: CampaignJob, exc: Exception) -> None:
        """Classify a campaign failure: breaker, retry budget, or fail.

        Deterministic failures (same seeds → same failure, every
        attempt) count against the circuit breaker and are never
        retried at the job level.  Transient failures re-queue the
        whole job while its ``retry_budget`` lasts — the job's
        checkpoint (if any) carries completed runs across the retry,
        so a retry resumes rather than restarts.
        """
        job.error = traceback.format_exc()
        if isinstance(exc, CampaignRunError):
            job.failures = list(exc.failures)
        kind = classify_exception(exc)
        if isinstance(exc, CampaignRunError):
            # The campaign error aggregates per-run kinds: transient
            # only if every failed run was (a single deterministic run
            # failure reproduces identically on retry).
            kind = (
                ERROR_KIND_TRANSIENT
                if all(f[3] == ERROR_KIND_TRANSIENT for f in exc.failures)
                else "deterministic"
            )
        if kind != ERROR_KIND_TRANSIENT:
            self.breaker.record_failure(job.fingerprint)
        elif job.attempts <= self.admission.retry_budget:
            with self._lock:
                stopped = self._stopped
            if not stopped:
                with job._lock:
                    job.state = JOB_QUEUED
                self.telemetry.metrics.counter("jobs_requeued").inc()
                self.telemetry.logger.warning(
                    "job_requeued",
                    message=f"job {job.job_id} failed transiently "
                            f"(attempt {job.attempts}/"
                            f"{self.admission.retry_budget + 1}); requeued",
                    job=job.job_id, attempt=job.attempts,
                )
                if self.journal is not None:
                    try:
                        self.journal.record_state(
                            job.job_id, "requeued", attempt=job.attempts
                        )
                    except Exception:  # noqa: BLE001
                        pass
                self._queue.put(job)
                return
        self.telemetry.metrics.counter("jobs_failed").inc()
        self.telemetry.logger.error(
            "job_failed",
            message=f"job {job.job_id} failed ({kind}): "
                    f"{job.error.strip().splitlines()[-1]}",
            job=job.job_id, kind=kind,
        )
        job._finish(JOB_FAILED)
