"""Campaign jobs and the bounded-worker job queue.

The one-shot CLI runs a campaign and forgets it; the service layer
makes campaigns *jobs*: a :class:`CampaignJob` names everything the
campaign depends on (trace, config, scenario, runs, master seed,
engine choice), carries its lifecycle state, and resolves to a
:class:`~repro.sim.campaign.CampaignResult`.  A :class:`JobQueue`
executes jobs on a bounded pool of worker threads through the existing
engine-selection policy (:func:`~repro.sim.campaign.collect_execution_times`),
so everything already built under that seam — backends, sharding,
retries, telemetry — serves queued submissions unchanged.

**Job lifecycle**::

    queued ──► running ──► done
       │           └─────► failed
       ├─────────────────► cancelled        (cancel() before a worker
       │                                     picked the job up)
       └─────────────────► cached           (ResultStore answered the
                                             submission from storage —
                                             such jobs never enqueue)

Threads (not processes) are the right worker substrate here: a job's
heavy lifting already fans out through the process-pool/sharded
backends, so queue workers spend their time waiting, and threads share
the in-process :class:`~repro.sim.plancache.PlanCache` and telemetry
registry for free.

Determinism: a job is a pure function of ``(trace, config, scenario,
runs, master_seed)`` — the queue adds scheduling, never semantics, so
a job's sample is bit-identical to calling
:func:`~repro.sim.campaign.collect_execution_times` directly.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional

from repro.cpu.trace import Trace
from repro.errors import ConfigurationError, ServiceError
from repro.observability import Telemetry
from repro.sim.campaign import CampaignResult, collect_execution_times
from repro.sim.checkpoint import campaign_fingerprint
from repro.sim.config import Scenario, SystemConfig

#: Job lifecycle states (see the module docstring for the transitions).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CACHED = "cached"
JOB_CANCELLED = "cancelled"
JOB_STATES = (
    JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CACHED, JOB_CANCELLED
)

#: States a job can never leave.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CACHED, JOB_CANCELLED)


class CampaignJob:
    """One campaign submission and its lifecycle.

    Construction captures the campaign's identity; the queue (or the
    result store, for cache hits) drives the state machine.  ``wait``
    blocks until the job is terminal and returns the result — every
    concurrent waiter gets the same object, which is how in-flight
    coalescing hands one simulation to many submitters.
    """

    def __init__(
        self,
        trace: Trace,
        config: SystemConfig,
        scenario: Scenario,
        runs: int,
        master_seed: int = 0,
        engine: str = "auto",
        workers: Optional[int] = None,
        cycle_budget: Optional[int] = None,
    ) -> None:
        if runs <= 0:
            raise ConfigurationError(
                f"a campaign job needs at least one run, got {runs}"
            )
        self.trace = trace
        self.config = config
        self.scenario = scenario
        self.runs = runs
        self.master_seed = master_seed
        self.engine = engine
        self.workers = workers
        self.cycle_budget = cycle_budget
        #: Content fingerprint — the dedup key of the result store.
        self.fingerprint = campaign_fingerprint(
            trace, config, scenario, master_seed, runs
        )
        self.job_id: Optional[str] = None
        self.state = JOB_QUEUED
        self.result: Optional[CampaignResult] = None
        self.error: Optional[str] = None
        #: How the result was obtained: ``"simulated"`` (a worker ran
        #: it), ``"store"`` (answered from the result store) or
        #: ``"coalesced"`` (attached to an identical in-flight job).
        self.source: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._terminal = threading.Event()
        self._callbacks: List[Callable[["CampaignJob"], None]] = []

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._terminal.is_set()

    def add_callback(self, callback: Callable[["CampaignJob"], None]) -> None:
        """Run ``callback(job)`` when the job turns terminal.

        Fires immediately if the job already is.  Callbacks run on the
        worker thread that finished the job (or the caller's, for
        already-terminal jobs); exceptions propagate to that thread's
        error handling, so persistence hooks should catch their own.
        """
        fire = False
        with self._lock:
            if self.state in TERMINAL_STATES:
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            callback(self)

    def _finish(self, state: str) -> None:
        """Transition to a terminal state and release every waiter.

        Callbacks run *before* the terminal event is set so that
        persistence hooks (the result store's write-through) complete
        before any waiter wakes: a submitter that saw its job finish
        can immediately re-hit the store.  The event is set even if a
        callback raises — a broken hook must never strand waiters.
        """
        with self._lock:
            self.state = state
            self.finished_at = time.time()
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        try:
            for callback in callbacks:
                callback(self)
        finally:
            self._terminal.set()

    def cancel(self) -> bool:
        """Cancel the job if no worker picked it up yet.

        Returns ``True`` when the job moved to ``cancelled``; ``False``
        when it already left the queue (running or terminal) — a
        campaign mid-execution is not interrupted, because its partial
        work is already journalled/observable and killing it buys
        nothing deterministic.
        """
        with self._lock:
            if self.state != JOB_QUEUED:
                return False
            self.state = JOB_CANCELLED
        self._finish(JOB_CANCELLED)
        return True

    def wait(self, timeout: Optional[float] = None) -> CampaignResult:
        """Block until terminal; return the result or raise.

        Raises :class:`~repro.errors.ServiceError` on failure,
        cancellation or timeout — the job's captured error text rides
        in the message.
        """
        if not self._terminal.wait(timeout):
            raise ServiceError(
                f"job {self.job_id or '<unsubmitted>'} did not finish "
                f"within {timeout}s (state {self.state!r})"
            )
        if self.state == JOB_CANCELLED:
            raise ServiceError(f"job {self.job_id} was cancelled")
        if self.state == JOB_FAILED:
            detail = (self.error or "unknown error").strip()
            raise ServiceError(f"job {self.job_id} failed:\n{detail}")
        assert self.result is not None
        return self.result

    def to_dict(self) -> dict:
        """Status summary as a JSON-ready dict (no sample payload)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "task": self.trace.name,
            "scenario": self.scenario.label(),
            "runs": self.runs,
            "master_seed": self.master_seed,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": (self.error.strip().splitlines()[-1]
                      if self.error else None),
        }


class JobQueue:
    """Executes :class:`CampaignJob` submissions on bounded workers.

    Parameters
    ----------
    workers:
        Worker *threads* (not processes — see the module docstring).
        Each runs one job at a time, so this bounds the number of
        concurrent campaigns, not their internal parallelism.
    telemetry:
        :class:`~repro.observability.Telemetry` threaded into every
        executed campaign (metrics/spans/logs); also receives the
        queue's own ``jobs_submitted`` / ``jobs_completed`` /
        ``jobs_failed`` / ``jobs_cancelled`` counters and
        ``job_queue_wait_s`` latency histogram.
    start:
        Start the workers immediately (default).  Tests pass ``False``
        to stage submissions deterministically, then call
        :meth:`start`.

    Use as a context manager for deterministic teardown::

        with JobQueue(workers=2) as queue:
            job = queue.submit(CampaignJob(...))
            result = job.wait()
    """

    def __init__(
        self,
        workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        start: bool = True,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError(
                f"job queue needs at least one worker, got {workers}"
            )
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._queue: "queue_mod.Queue[Optional[CampaignJob]]" = queue_mod.Queue()
        self._jobs: Dict[str, CampaignJob] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._ids = itertools.count(1)
        self._started = False
        self._stopped = False
        if start:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"campaign-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def submit(self, job: CampaignJob) -> CampaignJob:
        """Assign an id, enqueue, return the (same) job."""
        with self._lock:
            if self._stopped:
                raise ServiceError("job queue is shut down; cannot submit")
            job.job_id = f"job-{next(self._ids):06d}"
            self._jobs[job.job_id] = job
        self.telemetry.metrics.counter("jobs_submitted").inc()
        self.telemetry.logger.info(
            "job_submitted",
            message=f"job {job.job_id} queued: {job.trace.name} under "
                    f"{job.scenario.label()} ({job.runs} runs)",
            job=job.job_id, task=job.trace.name,
            scenario=job.scenario.label(), runs=job.runs,
            fingerprint=job.fingerprint,
        )
        self._queue.put(job)
        return job

    def status(self, job_id: str) -> CampaignJob:
        """Look a submitted job up by id."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> List[CampaignJob]:
        """Every job this queue has seen, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job by id (see :meth:`CampaignJob.cancel`)."""
        cancelled = self.status(job_id).cancel()
        if cancelled:
            self.telemetry.metrics.counter("jobs_cancelled").inc()
        return cancelled

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally drain and join the workers.

        Queued jobs still in the pipe are executed before the workers
        exit (a submission accepted is a submission answered).
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        if not started:
            # Workers never existed: nothing will drain the queue, so
            # fail queued jobs loudly rather than strand their waiters.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue_mod.Empty:
                    break
                if job is not None and job.cancel():
                    self.telemetry.metrics.counter("jobs_cancelled").inc()
            return
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.done:  # cancelled while queued
                continue
            self._execute(job)

    def _execute(self, job: CampaignJob) -> None:
        with job._lock:
            if job.state != JOB_QUEUED:
                return
            job.state = JOB_RUNNING
            job.started_at = time.time()
        self.telemetry.metrics.histogram("job_queue_wait_s").observe(
            job.started_at - job.submitted_at
        )
        try:
            result = collect_execution_times(
                job.trace,
                job.config,
                job.scenario,
                job.runs,
                master_seed=job.master_seed,
                engine=job.engine,
                workers=job.workers,
                cycle_budget=job.cycle_budget,
                telemetry=self.telemetry,
                job_id=job.job_id,
            )
        except Exception:  # noqa: BLE001 — captured onto the job
            job.error = traceback.format_exc()
            self.telemetry.metrics.counter("jobs_failed").inc()
            self.telemetry.logger.error(
                "job_failed",
                message=f"job {job.job_id} failed: "
                        f"{job.error.strip().splitlines()[-1]}",
                job=job.job_id,
            )
            job._finish(JOB_FAILED)
            return
        job.result = result
        job.source = "simulated"
        self.telemetry.metrics.counter("jobs_completed").inc()
        self.telemetry.logger.info(
            "job_done",
            message=f"job {job.job_id} done: {result.runs} runs in "
                    f"{result.wall_time_s:.2f}s ({result.backend})",
            job=job.job_id, runs=result.runs,
            wall_time_s=round(result.wall_time_s, 6), backend=result.backend,
        )
        job._finish(JOB_DONE)
