"""Guaranteed and average performance metrics (§4.2 of the paper).

* **gIPC** — guaranteed instructions per cycle of one benchmark under
  one setup: committed instructions divided by the pWCET estimate at a
  cutoff probability (the paper uses 1e-15 per run).
* **wgIPC** — workload guaranteed IPC: the sum of the gIPC of the
  benchmarks composing a workload.
* **waIPC** — workload average IPC: the sum of per-task IPCs observed
  when the workload actually co-runs (measured by the simulator, not
  derived from pWCET).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import AnalysisError


def guaranteed_ipc(instructions: int, pwcet: float) -> float:
    """gIPC of one benchmark: ``instructions / pWCET``.

    >>> guaranteed_ipc(1000, 4000.0)
    0.25
    """
    if instructions <= 0:
        raise AnalysisError(f"instructions must be positive, got {instructions}")
    if pwcet <= 0:
        raise AnalysisError(f"pWCET must be positive, got {pwcet}")
    return instructions / pwcet


def workload_guaranteed_ipc(
    workload: Sequence[str],
    instructions_of: Callable[[str], int],
    pwcet_of: Callable[[str, int], float],
    allocation: Sequence[int],
) -> float:
    """wgIPC of a workload under a per-task resource allocation.

    ``allocation[i]`` is the resource parameter of task ``i`` — a way
    count for CP or a MID value for EFL — and ``pwcet_of(bench, alloc)``
    returns the pWCET of that benchmark under that per-task setup.

    >>> workload_guaranteed_ipc(
    ...     ["X", "Y"],
    ...     instructions_of=lambda b: 100,
    ...     pwcet_of=lambda b, a: 400.0,
    ...     allocation=[2, 2],
    ... )
    0.5
    """
    if len(workload) != len(allocation):
        raise AnalysisError(
            f"workload of {len(workload)} tasks but allocation of "
            f"{len(allocation)} entries"
        )
    return sum(
        guaranteed_ipc(instructions_of(bench), pwcet_of(bench, alloc))
        for bench, alloc in zip(workload, allocation)
    )


def improvement(new: float, baseline: float) -> float:
    """Relative improvement of ``new`` over ``baseline``.

    Positive when ``new`` is better; e.g. ``0.56`` is the paper's "56%
    improvement".
    """
    if baseline <= 0:
        raise AnalysisError(f"baseline must be positive, got {baseline}")
    return (new - baseline) / baseline


def summarise_improvements(improvements: Sequence[float]) -> dict:
    """Summary statistics in the form the paper quotes for Figure 4.

    Returns a dict with: the number/fraction of workloads where EFL
    wins, quartile and median improvements, the mean improvement, the
    maximum, and the mean/max degradation over the losing workloads.
    """
    if not improvements:
        raise AnalysisError("no improvements to summarise")
    ordered = sorted(improvements, reverse=True)
    n = len(ordered)
    wins = [value for value in ordered if value > 0]
    losses = [-value for value in ordered if value < 0]
    return {
        "workloads": n,
        "wins": len(wins),
        "win_fraction": len(wins) / n,
        "top_quartile_improvement": ordered[max(n // 4 - 1, 0)],
        "median_improvement": ordered[max(n // 2 - 1, 0)],
        "mean_improvement": sum(ordered) / n,
        "max_improvement": ordered[0],
        "mean_degradation": sum(losses) / len(losses) if losses else 0.0,
        "max_degradation": max(losses) if losses else 0.0,
    }
