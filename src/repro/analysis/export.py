"""CSV export of experiment results.

The text tables in :mod:`repro.analysis.reporting` are for humans;
these writers emit the same data as CSV for plotting pipelines
(matplotlib/pgfplots reproduce the paper's figures directly from
them).  All writers accept any text file object and return the number
of data rows written.
"""

from __future__ import annotations

import csv
import json
from typing import TextIO

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    IIDComplianceResult,
)
from repro.sim.campaign import CampaignResult


def write_campaign_csv(result: CampaignResult, stream: TextIO) -> int:
    """Per-run campaign records: one row per run, full provenance.

    Each row carries the run's reproduction handle (index + seed) and
    its observability record (cycles, LLC/EFL interference counters,
    wall time), so throughput and interference statistics are available
    without rerunning the campaign.
    """
    writer = csv.writer(stream)
    writer.writerow(
        ["task", "scenario", "run_index", "seed", "cycles", "instructions",
         "llc_hits", "llc_misses", "llc_forced_evictions",
         "efl_stall_cycles", "efl_evictions", "memory_reads",
         "memory_writes", "wall_time_s"]
    )
    for record in result.records:
        writer.writerow([
            result.task, result.scenario_label, record.index,
            f"{record.seed:#x}", record.cycles, record.instructions,
            record.llc_hits, record.llc_misses, record.llc_forced_evictions,
            record.efl_stall_cycles, record.efl_evictions,
            record.memory_reads, record.memory_writes,
            f"{record.wall_time_s:.6f}",
        ])
    return len(result.records)


def write_campaign_json(
    result: CampaignResult, stream: TextIO, indent: int = 2
) -> int:
    """Full campaign provenance as one JSON document.

    The machine-readable sibling of :func:`write_campaign_csv`: the
    exact :meth:`~repro.sim.campaign.CampaignResult.to_dict` payload
    the result store persists and the service API serves, so a file
    written here round-trips through
    :meth:`~repro.sim.campaign.CampaignResult.from_dict`.  Returns the
    number of runs serialised.
    """
    json.dump(result.to_dict(), stream, indent=indent)
    stream.write("\n")
    return len(result.records)


def write_iid_csv(result: IIDComplianceResult, stream: TextIO) -> int:
    """E1 rows: benchmark, runs, WW statistic, KS p-value, verdict."""
    writer = csv.writer(stream)
    writer.writerow(["benchmark", "runs", "ww_statistic", "ks_p_value", "passed"])
    for row in result.rows:
        writer.writerow(
            [row.bench_id, row.runs, f"{row.ww_statistic:.6f}",
             f"{row.ks_p_value:.6f}", int(row.passed)]
        )
    return len(result.rows)


def write_fig3_csv(result: Fig3Result, stream: TextIO) -> int:
    """E2 rows: benchmark x setup, raw and normalised pWCET.

    One row per (benchmark, setup) pair — the long format plotting
    tools prefer.
    """
    writer = csv.writer(stream)
    writer.writerow(
        ["benchmark", "setup", "pwcet_cycles", f"normalised_to_{result.baseline_label}"]
    )
    rows = 0
    for bench in result.bench_ids:
        for setup in result.setups:
            writer.writerow(
                [bench, setup, f"{result.pwcet[bench][setup]:.1f}",
                 f"{result.normalised[bench][setup]:.6f}"]
            )
            rows += 1
    return rows


def write_fig4_csv(result: Fig4Result, stream: TextIO) -> int:
    """E3/E4 rows: one per workload, both setups and both improvements."""
    writer = csv.writer(stream)
    writer.writerow(
        ["workload", "cp_partition", "cp_wgipc", "efl_mid", "efl_wgipc",
         "wgipc_improvement", "cp_waipc", "efl_waipc", "waipc_improvement"]
    )
    for comparison in result.comparisons:
        writer.writerow([
            "+".join(comparison.workload),
            "-".join(str(w) for w in comparison.cp_partition),
            f"{comparison.cp_wgipc:.6f}",
            comparison.efl_mid,
            f"{comparison.efl_wgipc:.6f}",
            f"{comparison.wgipc_improvement:.6f}",
            "" if comparison.cp_waipc is None else f"{comparison.cp_waipc:.6f}",
            "" if comparison.efl_waipc is None else f"{comparison.efl_waipc:.6f}",
            "" if comparison.waipc_improvement is None
            else f"{comparison.waipc_improvement:.6f}",
        ])
    return len(result.comparisons)
