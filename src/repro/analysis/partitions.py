"""Per-workload setup optimisation: CP partitions and EFL MIDs.

Figure 4 of the paper compares, per workload, "the highest wgIPC that
CP and EFL can provide under any setup": for CP that means searching
the way partitions of the LLC across the four tasks; for EFL it means
picking the (single, shared) MID value that maximises wgIPC.  Both
searches work purely on the per-benchmark pWCET table — no additional
simulation — because analysis under both mechanisms is
time-composable.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, List, Sequence, Tuple

from repro.analysis.metrics import workload_guaranteed_ipc
from repro.errors import AnalysisError, ConfigurationError

#: The per-task way counts the paper studies (CP1, CP2, CP4).
DEFAULT_WAY_OPTIONS = (1, 2, 4)

#: The MID values the paper studies (EFL250, EFL500, EFL1000).
DEFAULT_MID_OPTIONS = (250, 500, 1000)


def enumerate_partitions(
    num_tasks: int,
    total_ways: int,
    way_options: Sequence[int] = DEFAULT_WAY_OPTIONS,
) -> List[Tuple[int, ...]]:
    """All per-task way assignments drawn from ``way_options`` that fit.

    An assignment fits when its counts sum to at most ``total_ways``
    (unused ways are legal — they simply idle, as when four tasks get
    one way each of an 8-way cache).

    >>> (2, 2, 2, 2) in enumerate_partitions(4, 8)
    True
    >>> (4, 4, 2, 1) in enumerate_partitions(4, 8)
    False
    """
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if total_ways <= 0:
        raise ConfigurationError(f"total_ways must be positive, got {total_ways}")
    if any(w <= 0 for w in way_options):
        raise ConfigurationError("way options must all be positive")
    fits = [
        combo
        for combo in product(sorted(set(way_options)), repeat=num_tasks)
        if sum(combo) <= total_ways
    ]
    if not fits:
        raise AnalysisError(
            f"no assignment of {way_options} ways to {num_tasks} tasks fits "
            f"in {total_ways} ways"
        )
    return fits


def best_partition(
    workload: Sequence[str],
    instructions_of: Callable[[str], int],
    pwcet_of_ways: Callable[[str, int], float],
    total_ways: int,
    way_options: Sequence[int] = DEFAULT_WAY_OPTIONS,
) -> Tuple[Tuple[int, ...], float]:
    """Exhaustive CP partition search maximising wgIPC.

    Returns ``(per-task way counts, wgIPC)``.  The search space is
    ``len(way_options) ** len(workload)`` (81 for the paper's setup) so
    exhaustive enumeration is exact and cheap.
    """
    best_counts = None
    best_value = -1.0
    for counts in enumerate_partitions(len(workload), total_ways, way_options):
        value = workload_guaranteed_ipc(
            workload, instructions_of, pwcet_of_ways, counts
        )
        if value > best_value:
            best_value = value
            best_counts = counts
    assert best_counts is not None  # enumerate_partitions raised otherwise
    return best_counts, best_value


def best_mid(
    workload: Sequence[str],
    instructions_of: Callable[[str], int],
    pwcet_of_mid: Callable[[str, int], float],
    mid_options: Sequence[int] = DEFAULT_MID_OPTIONS,
) -> Tuple[int, float]:
    """EFL MID selection maximising wgIPC (one MID shared by all tasks).

    Returns ``(mid, wgIPC)``.  The paper's search uses the same MID on
    every core, which preserves time composability trivially: any
    task's pWCET for MID ``m`` is valid whenever every co-runner is
    throttled at least as hard.
    """
    if not mid_options:
        raise ConfigurationError("mid_options is empty")
    best_value = -1.0
    best = None
    for mid in mid_options:
        value = workload_guaranteed_ipc(
            workload, instructions_of, pwcet_of_mid, [mid] * len(workload)
        )
        if value > best_value:
            best_value = value
            best = mid
    assert best is not None
    return best, best_value
