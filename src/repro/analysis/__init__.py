"""Evaluation-layer machinery: metrics, optimisers and experiment drivers.

* :mod:`repro.analysis.metrics` — guaranteed/average IPC metrics
  (gIPC, wgIPC, waIPC) as defined in §4.2 of the paper;
* :mod:`repro.analysis.partitions` — the CP way-partition search and
  the EFL MID selection that Figure 4's per-workload comparison needs;
* :mod:`repro.analysis.experiments` — drivers that regenerate every
  table and figure of the evaluation section;
* :mod:`repro.analysis.reporting` — plain-text rendering of results.
"""

from repro.analysis.metrics import guaranteed_ipc, workload_guaranteed_ipc
from repro.analysis.partitions import (
    enumerate_partitions,
    best_partition,
    best_mid,
)
from repro.analysis.experiments import (
    PWCETTable,
    run_iid_compliance,
    run_fig3,
    run_fig4,
)
from repro.analysis.export import (
    write_campaign_csv,
    write_fig3_csv,
    write_fig4_csv,
    write_iid_csv,
)

__all__ = [
    "write_campaign_csv",
    "write_iid_csv",
    "write_fig3_csv",
    "write_fig4_csv",
    "guaranteed_ipc",
    "workload_guaranteed_ipc",
    "enumerate_partitions",
    "best_partition",
    "best_mid",
    "PWCETTable",
    "run_iid_compliance",
    "run_fig3",
    "run_fig4",
]
