"""Plain-text rendering of experiment results.

Every experiment driver returns a structured result; these helpers
turn them into the tables and curve summaries that the benchmark
harness and CLI print, shaped after the paper's Figures 3 and 4 and
its MBPTA-compliance paragraph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    IIDComplianceResult,
)
from repro.sim.campaign import CampaignResult
from repro.sim.profiler import COMPONENTS, ProfileSnapshot


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a list of rows as an aligned monospace table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_campaign(result: CampaignResult) -> str:
    """One campaign's provenance, throughput and interference summary.

    Surfaces everything an operator needs without rerunning: the master
    seed, the seed of the high-water-mark run (rerun that one seed to
    reproduce the worst case in isolation), backend throughput, and the
    per-run mean shared-cache interference counters.
    """
    lines = [
        f"campaign {result.task} under {result.scenario_label}: "
        f"{result.runs} runs (master seed {result.master_seed:#x}, "
        f"backend {result.backend})",
        f"  times: min {result.min_time}  mean {result.mean_time:.1f}  "
        f"max {result.max_time} cycles",
    ]
    if result.hwm_seed is not None:
        lines.append(
            f"  HWM run: index {result.hwm_index}, seed {result.hwm_seed:#x}"
        )
    if result.wall_time_s > 0:
        lines.append(
            f"  throughput: {result.runs_per_second:.1f} runs/s "
            f"({result.wall_time_s:.2f}s wall)"
        )
    if result.adaptive:
        requested = (
            result.runs_executed + result.runs_saved
            + result.runs_speculated_waste
        )
        achieved = (
            f"{result.pwcet_rtol_achieved:.2e}"
            if result.pwcet_rtol_achieved is not None else "n/a"
        )
        verdict = "converged" if result.converged else "did NOT converge"
        waste_note = (
            f", {result.runs_speculated_waste} speculated past stop"
            if result.runs_speculated_waste else ""
        )
        lines.append(
            f"  convergence: {verdict} after {result.runs_executed} of "
            f"{requested} runs ({result.runs_saved} saved{waste_note}; "
            f"quantile movement {achieved}, rtol "
            f"{result.pwcet_rtol_requested:g})"
        )
    if result.resumed_runs or result.retried_runs:
        lines.append(
            f"  resilience: {result.resumed_runs} runs resumed from "
            f"checkpoint, {result.retried_runs} retries spent on "
            f"transient failures"
        )
    if result.plan_cache_hits or result.plan_cache_misses:
        lines.append(
            f"  plan cache: {result.plan_cache_misses} compile(s), "
            f"{result.plan_cache_hits} hit(s)"
        )
    if result.kernel_stats:
        stats = result.kernel_stats
        accesses = stats.get("ifetch", 0) + stats.get("dmem", 0)
        lines.append(
            f"  kernel plan: {stats.get('chains', 0)} chains "
            f"({stats.get('fused_phases', 0)} phases fused), "
            f"{stats.get('segments', 0)} megakernel segments covering "
            f"{stats.get('fused_accesses', 0)} of {accesses} accesses "
            f"(fusion ratio {stats.get('fusion_ratio', 0.0):.2f})"
        )
    if result.records:
        runs = len(result.records)
        def mean(attribute: str) -> float:
            return sum(getattr(r, attribute) for r in result.records) / runs
        lines.append(
            f"  per-run means: LLC {mean('llc_hits'):.1f} hits / "
            f"{mean('llc_misses'):.1f} misses / "
            f"{mean('llc_forced_evictions'):.1f} forced evictions, "
            f"EFL {mean('efl_stall_cycles'):.1f} stall cycles / "
            f"{mean('efl_evictions'):.1f} evictions"
        )
    return "\n".join(lines)


def render_iid(result: IIDComplianceResult) -> str:
    """E1: the MBPTA-compliance table."""
    rows = [
        [
            row.bench_id,
            str(row.runs),
            f"{row.ww_statistic:+.3f}",
            f"{row.ks_p_value:.3f}",
            "pass" if row.passed else "FAIL",
        ]
        for row in result.rows
    ]
    table = format_table(
        ["bench", "runs", "WW stat (<1.96)", "KS p (>0.05)", "i.i.d."], rows
    )
    verdict = (
        "all benchmarks MBPTA-compliant"
        if result.all_passed
        else "SOME BENCHMARKS REJECTED the i.i.d. hypotheses"
    )
    return (
        f"E1 - MBPTA compliance under EFL{result.mid} (alpha = 0.05)\n"
        f"{table}\n=> {verdict}"
    )


def render_fig3(result: Fig3Result) -> str:
    """E2: Figure 3 as a table (rows: benchmarks, cols: setups)."""
    headers = ["bench"] + list(result.setups)
    rows: List[List[str]] = []
    for bench in result.bench_ids:
        rows.append(
            [bench]
            + [f"{result.normalised[bench][setup]:.3f}" for setup in result.setups]
        )
    rows.append(
        ["geomean"]
        + [f"{result.geometric_mean_normalised(setup):.3f}" for setup in result.setups]
    )
    return (
        f"E2 - Figure 3: pWCET normalised to {result.baseline_label} "
        f"(lower is better)\n" + format_table(headers, rows)
    )


def _render_summary(summary: dict) -> List[str]:
    return [
        f"  EFL wins in {summary['wins']}/{summary['workloads']} workloads "
        f"({summary['win_fraction']:.1%})",
        f"  top-quartile improvement > {summary['top_quartile_improvement']:.1%}",
        f"  median improvement       > {summary['median_improvement']:.1%}",
        f"  average improvement        {summary['mean_improvement']:.1%}",
        f"  maximum improvement        {summary['max_improvement']:.1%}",
        f"  avg degradation (losses)   {summary['mean_degradation']:.1%}",
        f"  max degradation (losses)   {summary['max_degradation']:.1%}",
    ]


def render_fig4(result: Fig4Result) -> str:
    """E3/E4: Figure 4 summary plus a coarse textual S-curve."""
    lines = ["E3 - Figure 4 (wgIPC): EFL improvement over CP"]
    lines.extend(_render_summary(result.wgipc_summary))
    lines.append("  S-curve deciles: " + _deciles(result.wgipc_curve()))
    if result.waipc_summary is not None:
        lines.append("E4 - Figure 4 (waIPC): EFL improvement over CP")
        lines.extend(_render_summary(result.waipc_summary))
        lines.append("  S-curve deciles: " + _deciles(result.waipc_curve()))
    return "\n".join(lines)


def _deciles(curve: Sequence[float]) -> str:
    if not curve:
        return "(empty)"
    picks = [curve[min(int(len(curve) * frac), len(curve) - 1)]
             for frac in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
    # The final element of the sorted-descending curve is the minimum.
    picks[-1] = curve[-1]
    return " ".join(f"{value:+.0%}" for value in picks)


def render_profile(snapshot: ProfileSnapshot, runs: Optional[int] = None) -> str:
    """Per-component cycle/wall attribution table (``--profile`` output).

    ``runs`` labels the header with how many profiled runs the snapshot
    aggregates over.
    """
    total_cycles = snapshot.total_cycles
    total_wall = snapshot.total_wall_s
    rows = []
    for name in COMPONENTS:
        cycles = snapshot.cycles.get(name, 0)
        wall = snapshot.wall_s.get(name, 0.0)
        rows.append([
            name,
            f"{snapshot.events.get(name, 0)}",
            f"{cycles}",
            f"{cycles / total_cycles:.1%}" if total_cycles else "-",
            f"{wall:.3f}",
            f"{wall / total_wall:.1%}" if total_wall else "-",
        ])
    rows.append([
        "total", f"{sum(snapshot.events.values())}", f"{total_cycles}",
        "100.0%" if total_cycles else "-",
        f"{total_wall:.3f}", "100.0%" if total_wall else "-",
    ])
    header = "hot-path profile"
    if runs is not None:
        header += f" ({runs} profiled runs)"
    table = format_table(
        ["component", "events", "cycles", "cyc %", "wall s", "wall %"], rows
    )
    return header + "\n" + table
