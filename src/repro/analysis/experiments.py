"""Experiment drivers for every table and figure of the evaluation.

Experiment ids follow DESIGN.md:

* **E1** (:func:`run_iid_compliance`) — the MBPTA-compliance check:
  Wald-Wolfowitz and Kolmogorov-Smirnov results per benchmark under
  EFL;
* **E2** (:func:`run_fig3`) — Figure 3: pWCET of EFL{250,500,1000} and
  CP{1,2,4} per benchmark, normalised to CP2;
* **E3/E4** (:func:`run_fig4`) — Figure 4: per-workload wgIPC (E3) and
  waIPC (E4) improvement of the best EFL setup over the best CP setup,
  with the S-curve data and the summary statistics the paper quotes.

The shared substrate is :class:`PWCETTable`, which lazily runs the
per-(benchmark, setup) analysis campaigns and caches their MBPTA
results so E2, E3 and E4 reuse the same estimates — exactly as the
paper derives Figure 4's wgIPC from Figure 3's analysis products.
"""

from __future__ import annotations

import re
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import improvement, summarise_improvements
from repro.analysis.partitions import (
    DEFAULT_WAY_OPTIONS,
    best_mid,
    best_partition,
)
from repro.core.config import OperationMode
from repro.errors import AnalysisError, CampaignRunError, ConfigurationError
from repro.pta.adaptive import ConvergencePolicy
from repro.pta.evt import validate_exceedance
from repro.pta.iid import IIDResult, iid_test
from repro.pta.mbpta import MBPTAResult, estimate_pwcet
from repro.sim.backend import ExecutionBackend, RunObserver, SerialBackend
from repro.sim.campaign import CampaignResult, collect_execution_times
from repro.sim.plancache import PlanCache
from repro.sim.checkpoint import CampaignCheckpoint
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import RunRequest
from repro.utils.rng import derive_seeds
from repro.workloads.generator import build_workload_traces, random_workloads
from repro.workloads.scale import ExperimentScale
from repro.workloads.suite import BENCHMARK_IDS, build_all_benchmarks


class PWCETTable:
    """Lazily computed pWCET estimates per (benchmark, setup).

    One instance owns the benchmark traces (built once at the campaign
    scale) and a cache of campaign + MBPTA results keyed by the setup
    label (``EFL500``, ``CP2``, ...).  Every campaign dispatches its
    runs through ``backend`` (default: serial) — the estimates are
    bit-identical across backends because per-run seeds derive from
    the campaign key, never from the worker layout — and reports
    per-run records to ``observer``.

    ``checkpoint_dir`` journals each analysis campaign to its own
    JSONL file (``<bench>__<setup>.jsonl``) so an interrupted Figure
    3/4 sweep resumes where it died instead of restarting: already
    journalled runs are loaded, not re-executed, and the resumed
    estimates are bit-identical to an uninterrupted sweep's.
    ``resume=False`` keeps journalling but discards any prior journal.

    ``adaptive`` (a :class:`~repro.pta.adaptive.ConvergencePolicy`)
    switches every analysis campaign from fixed-R to streaming
    convergence: each (benchmark, setup) campaign requests the policy's
    ``max_runs`` and stops at its own convergence point.  The executed
    samples are bit-identical prefixes of the fixed-R samples, so a
    tight-``rtol`` adaptive table reproduces the fixed table's figures
    at a fraction of the simulated runs.  Passing the string
    ``"per-benchmark"`` instead of a policy gives each benchmark its
    preset tolerance (:data:`~repro.pta.adaptive.BENCHMARK_RTOL`) via
    :meth:`~repro.pta.adaptive.ConvergencePolicy.for_benchmark`, with
    every other knob at the scale's defaults.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        scale: Optional[ExperimentScale] = None,
        seed: int = 0,
        exceedance_prob: float = 1e-15,
        backend: Optional[ExecutionBackend] = None,
        observer: Optional[RunObserver] = None,
        profile: bool = False,
        checkpoint_dir: Optional[Path] = None,
        resume: bool = True,
        cycle_budget: Optional[int] = None,
        engine: str = "auto",
        workers: Optional[int] = None,
        adaptive: Union[ConvergencePolicy, str, None] = None,
    ) -> None:
        self.scale = scale if scale is not None else ExperimentScale.default()
        # Default to the scale's proportionally shrunk platform; an
        # explicit config overrides (e.g. for ablations).
        self.config = config if config is not None else self.scale.system_config()
        self.seed = seed
        # Reject a bad cutoff here, at construction, rather than deep
        # in the first campaign's Gumbel fit.
        self.exceedance_prob = validate_exceedance(
            exceedance_prob, label="PWCETTable exceedance_prob"
        )
        #: Streaming-convergence policy for analysis campaigns (None =
        #: fixed-R at the scale's ``analysis_runs``;
        #: ``"per-benchmark"`` = each benchmark's preset tolerance).
        if not (adaptive is None or adaptive == "per-benchmark"
                or isinstance(adaptive, ConvergencePolicy)):
            raise ConfigurationError(
                f"PWCETTable adaptive must be a ConvergencePolicy, the "
                f"string 'per-benchmark', or None; got {adaptive!r}"
            )
        self.adaptive = adaptive
        self.backend = backend if backend is not None else SerialBackend()
        self.observer = observer if observer is not None else RunObserver()
        #: When set, every run is profiled and its attribution snapshot
        #: travels on the run's record (see ProfilingObserver).
        self.profile = profile
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = resume
        #: Per-run simulated-cycle budget (livelock guard); ``None``
        #: disables the guard entirely (no hot-path cost).
        self.cycle_budget = cycle_budget
        #: Run interpreter for analysis campaigns: ``"auto"`` (kernel /
        #: sharded-kernel where eligible), ``"scalar"``, ``"batch"``,
        #: ``"sharded"`` or ``"kernel"`` (the non-auto vector engines
        #: are strict: they raise rather than fall back).
        self.engine = engine
        #: Shard workers for the batch/sharded engines (None = policy
        #: default); mutually exclusive with a process backend.
        self.workers = workers
        #: One compiled trace program per (trace, geometry) across the
        #: whole sweep: every MID / way-count campaign over the same
        #: benchmark reuses the first campaign's compile.
        self.plan_cache = PlanCache()
        self.traces = build_all_benchmarks(self.scale.trace_scale)
        self._campaigns: Dict[Tuple[str, str], CampaignResult] = {}
        self._estimates: Dict[Tuple[str, str], MBPTAResult] = {}

    # ------------------------------------------------------------------
    def instructions(self, bench_id: str) -> int:
        """Dynamic instruction count of a benchmark at this scale."""
        return self.traces[bench_id].instruction_count

    def _scenario(self, label_kind: str, value: int) -> Scenario:
        if label_kind == "efl":
            return Scenario.efl(value, mode=OperationMode.ANALYSIS)
        if label_kind == "cp":
            return Scenario.cache_partitioning(
                value, num_cores=self.config.num_cores, mode=OperationMode.ANALYSIS
            )
        raise AnalysisError(f"unknown setup kind {label_kind!r}")

    def _checkpoint_for(self, bench_id: str, scenario_label: str):
        """The campaign's journal, or ``None`` without a checkpoint dir."""
        if self.checkpoint_dir is None:
            return None
        safe = re.sub(r"[^A-Za-z0-9._-]", "-", f"{bench_id}__{scenario_label}")
        return CampaignCheckpoint(
            self.checkpoint_dir / f"{safe}.jsonl", resume=self.resume
        )

    @contextmanager
    def bench_row(self, bench_id: str) -> Iterator[None]:
        """Pin ``bench_id``'s compiled plans for the scope of one row.

        A Figure-3/4 row scans one benchmark across every MID and
        way-count setup; all those campaigns share one compiled
        :class:`~repro.sim.plancache.TraceProgram`.  Pinning the
        ``(trace, config)`` entry for the row's duration guarantees the
        plan cache's LRU eviction cannot drop the program between two
        setups of the *same* benchmark (which would silently recompile
        it); the pin is always released when the row finishes — also on
        error — so a long sweep never accumulates stale pins.
        """
        trace = self.traces[bench_id]
        self.plan_cache.pin(trace, self.config)
        try:
            yield
        finally:
            self.plan_cache.unpin(trace, self.config)

    def _policy_for(self, bench_id: str) -> Optional[ConvergencePolicy]:
        """This benchmark's convergence policy, or ``None`` (fixed-R)."""
        if self.adaptive == "per-benchmark":
            return ConvergencePolicy.for_benchmark(bench_id, self.scale)
        return self.adaptive

    def campaign(self, bench_id: str, kind: str, value: int) -> CampaignResult:
        """Execution-time sample of one (benchmark, setup) campaign."""
        scenario = self._scenario(kind, value)
        key = (bench_id, scenario.label())
        if key not in self._campaigns:
            # Deterministic per-key seed (zlib.crc32, NOT Python's
            # hash(): the latter is salted per process and would make
            # campaigns irreproducible across invocations).
            key_digest = zlib.crc32(f"{bench_id}/{scenario.label()}".encode())
            adaptive = self._policy_for(bench_id)
            # Adaptive campaigns request the policy's run ceiling (the
            # checkpoint fingerprint is taken on max_runs, so a fixed-R
            # journal at the same ceiling resumes interchangeably).
            runs = (
                adaptive.max_runs if adaptive is not None
                else self.scale.analysis_runs
            )
            self._campaigns[key] = collect_execution_times(
                self.traces[bench_id],
                self.config,
                scenario,
                runs=runs,
                master_seed=self.seed ^ key_digest,
                backend=self.backend,
                observer=self.observer,
                profile=self.profile,
                checkpoint=self._checkpoint_for(bench_id, scenario.label()),
                cycle_budget=self.cycle_budget,
                engine=self.engine,
                workers=self.workers,
                plan_cache=self.plan_cache,
                adaptive=adaptive,
            )
        return self._campaigns[key]

    def estimate(self, bench_id: str, kind: str, value: int) -> MBPTAResult:
        """MBPTA result (pWCET + i.i.d. verdicts) of one campaign."""
        scenario = self._scenario(kind, value)
        key = (bench_id, scenario.label())
        if key not in self._estimates:
            campaign = self.campaign(bench_id, kind, value)
            self._estimates[key] = estimate_pwcet(
                campaign.execution_times,
                task=bench_id,
                scenario_label=scenario.label(),
                exceedance_probs=(self.exceedance_prob,),
                block_size=self.scale.block_size,
                check_iid=len(campaign.execution_times) >= 20,
            )
        return self._estimates[key]

    def pwcet(self, bench_id: str, kind: str, value: int) -> float:
        """pWCET at the table's cutoff probability."""
        return self.estimate(bench_id, kind, value).pwcet_at(self.exceedance_prob)


# ----------------------------------------------------------------------
# E1: MBPTA compliance
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IIDRow:
    """i.i.d. test outcome of one benchmark."""

    bench_id: str
    runs: int
    ww_statistic: float
    ks_p_value: float
    passed: bool


@dataclass(frozen=True)
class IIDComplianceResult:
    """E1: the paper's MBPTA-compliance table under EFL."""

    mid: int
    rows: List[IIDRow]

    @property
    def all_passed(self) -> bool:
        """Whether no benchmark rejected either i.i.d. hypothesis."""
        return all(row.passed for row in self.rows)


def run_iid_compliance(
    table: Optional[PWCETTable] = None,
    mid: Optional[int] = None,
    bench_ids: Sequence[str] = BENCHMARK_IDS,
    **table_kwargs,
) -> IIDComplianceResult:
    """E1: run the WW/KS i.i.d. tests on EFL execution times.

    The paper applies the tests to execution times of the EEMBC
    benchmarks on the EFL platform and reports that, at the 5%
    significance level, all WW statistics stay below 1.96 and all KS
    outcomes above 0.05.
    """
    if table is None:
        table = PWCETTable(**table_kwargs)
    if mid is None:
        # The middle MID option (the scale's equivalent of EFL500).
        mid = table.scale.mid_options[len(table.scale.mid_options) // 2]
    rows = []
    for bench_id in bench_ids:
        with table.bench_row(bench_id):
            campaign = table.campaign(bench_id, "efl", mid)
        verdict: IIDResult = iid_test(campaign.execution_times)
        rows.append(
            IIDRow(
                bench_id=bench_id,
                runs=campaign.runs,
                ww_statistic=verdict.ww.statistic,
                ks_p_value=verdict.ks.p_value,
                passed=verdict.passed,
            )
        )
    return IIDComplianceResult(mid=mid, rows=rows)


# ----------------------------------------------------------------------
# E2: Figure 3
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """E2: pWCET per benchmark per setup, normalised to the baseline."""

    baseline_label: str
    setups: List[str]
    bench_ids: List[str]
    pwcet: Dict[str, Dict[str, float]]
    normalised: Dict[str, Dict[str, float]]

    def geometric_mean_normalised(self, setup: str) -> float:
        """Geomean of a setup's normalised pWCET across benchmarks."""
        values = [self.normalised[bench][setup] for bench in self.bench_ids]
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))


def run_fig3(
    table: Optional[PWCETTable] = None,
    mids: Optional[Sequence[int]] = None,
    ways: Sequence[int] = DEFAULT_WAY_OPTIONS,
    baseline_ways: int = 2,
    bench_ids: Sequence[str] = BENCHMARK_IDS,
    **table_kwargs,
) -> Fig3Result:
    """E2: regenerate Figure 3.

    Computes the pWCET (default cutoff 1e-15 per run) of every
    benchmark under EFL{mids} and CP{ways} and normalises to CP with
    ``baseline_ways`` per core — the paper's CP2 reference, where each
    of the 4 cores owns exactly 2 of the 8 LLC ways.  ``mids`` defaults
    to the table's scale-equivalents of the paper's 250/500/1000.
    """
    if table is None:
        table = PWCETTable(**table_kwargs)
    if mids is None:
        mids = table.scale.mid_options
    setups: List[Tuple[str, str, int]] = [
        (f"EFL{mid}", "efl", mid) for mid in mids
    ] + [(f"CP{w}", "cp", w) for w in ways]
    setup_labels = [label for label, _kind, _value in setups]
    baseline_label = f"CP{baseline_ways}"
    if baseline_label not in setup_labels:
        setups.append((baseline_label, "cp", baseline_ways))

    pwcet: Dict[str, Dict[str, float]] = {}
    normalised: Dict[str, Dict[str, float]] = {}
    for bench_id in bench_ids:
        with table.bench_row(bench_id):
            pwcet[bench_id] = {
                label: table.pwcet(bench_id, kind, value)
                for label, kind, value in setups
            }
        base = pwcet[bench_id][baseline_label]
        normalised[bench_id] = {
            label: value / base for label, value in pwcet[bench_id].items()
        }
    return Fig3Result(
        baseline_label=baseline_label,
        setups=setup_labels,
        bench_ids=list(bench_ids),
        pwcet=pwcet,
        normalised=normalised,
    )


# ----------------------------------------------------------------------
# E3 + E4: Figure 4
# ----------------------------------------------------------------------
def _deployment_samples(
    table: "PWCETTable",
    traces: Sequence,
    scenario: Scenario,
    rep_seeds: Sequence[int],
    label: str,
) -> List[float]:
    """Co-run one workload ``len(rep_seeds)`` times through the backend."""
    if table.engine in ("batch", "sharded", "kernel"):
        raise ConfigurationError(
            f"the {table.engine} engine only vectorises analysis-mode "
            "isolation campaigns; deployment co-runs interleave cores "
            "dynamically and need the scalar interpreter (use "
            "engine='auto' or 'scalar' for deployment experiments)"
        )
    template = RunRequest.workload(
        traces, table.config, scenario, rep_seeds[0], index=0,
        profile=table.profile, cycle_budget=table.cycle_budget,
    )
    requests = [
        template.with_run(index, seed) for index, seed in enumerate(rep_seeds)
    ]
    outcomes = table.backend.execute(requests, observer=table.observer)
    failures = [
        (outcome.index, outcome.seed, outcome.error or "", outcome.error_kind)
        for outcome in outcomes
        if outcome.failed
    ]
    if failures:
        raise CampaignRunError(label, scenario.label(), failures)
    return [outcome.result.total_ipc for outcome in outcomes]


@dataclass(frozen=True)
class WorkloadComparison:
    """One workload's EFL-vs-CP comparison (a point on each S-curve)."""

    workload: Tuple[str, ...]
    cp_partition: Tuple[int, ...]
    cp_wgipc: float
    efl_mid: int
    efl_wgipc: float
    wgipc_improvement: float
    cp_waipc: Optional[float] = None
    efl_waipc: Optional[float] = None
    waipc_improvement: Optional[float] = None


@dataclass(frozen=True)
class Fig4Result:
    """E3/E4: the Figure 4 S-curves and their summary statistics."""

    comparisons: List[WorkloadComparison]
    wgipc_summary: dict
    waipc_summary: Optional[dict]

    def wgipc_curve(self) -> List[float]:
        """wgIPC improvements sorted descending (the plotted S-curve)."""
        return sorted(
            (c.wgipc_improvement for c in self.comparisons), reverse=True
        )

    def waipc_curve(self) -> List[float]:
        """waIPC improvements sorted descending (the lower S-curve)."""
        return sorted(
            (
                c.waipc_improvement
                for c in self.comparisons
                if c.waipc_improvement is not None
            ),
            reverse=True,
        )


def run_fig4(
    table: Optional[PWCETTable] = None,
    mids: Optional[Sequence[int]] = None,
    ways: Sequence[int] = DEFAULT_WAY_OPTIONS,
    measure_average: bool = True,
    workload_seed: int = 0x46494734,
    **table_kwargs,
) -> Fig4Result:
    """E3/E4: regenerate Figure 4.

    For each random 4-benchmark workload the best CP partition and the
    best EFL MID are chosen by wgIPC (at the table's cutoff
    probability), giving the guaranteed-performance S-curve (E3); with
    ``measure_average`` the chosen setups are then actually co-run in
    deployment mode to measure waIPC (E4).
    """
    if table is None:
        table = PWCETTable(**table_kwargs)
    if mids is None:
        mids = table.scale.mid_options
    config = table.config
    scale = table.scale
    workloads = random_workloads(
        scale.workload_count, tasks_per_workload=config.num_cores, seed=workload_seed
    )

    def instructions_of(bench: str) -> int:
        return table.instructions(bench)

    def pwcet_of_ways(bench: str, w: int) -> float:
        return table.pwcet(bench, "cp", w)

    def pwcet_of_mid(bench: str, mid: int) -> float:
        return table.pwcet(bench, "efl", mid)

    trace_cache: dict = {}
    comparisons: List[WorkloadComparison] = []
    deployment_seeds = derive_seeds(workload_seed ^ 0x5EED, len(workloads))
    for index, workload in enumerate(workloads):
        counts, cp_wgipc = best_partition(
            workload, instructions_of, pwcet_of_ways, config.llc_ways, ways
        )
        mid, efl_wgipc = best_mid(workload, instructions_of, pwcet_of_mid, mids)
        wg_improvement = improvement(efl_wgipc, cp_wgipc)

        cp_waipc = efl_waipc = wa_improvement = None
        if measure_average:
            label = "+".join(workload)
            table.observer.on_message(
                f"deployment workload {index + 1}/{len(workloads)}: "
                f"{label} (CP{counts} vs EFL{mid})"
            )
            traces = build_workload_traces(
                workload, scale.trace_scale, trace_cache
            )
            rep_seeds = derive_seeds(deployment_seeds[index], scale.deployment_reps)
            cp_scenario = Scenario.cache_partitioning(
                counts, num_cores=config.num_cores, mode=OperationMode.DEPLOYMENT
            )
            efl_scenario = Scenario.efl(mid, mode=OperationMode.DEPLOYMENT)
            cp_samples = _deployment_samples(
                table, traces, cp_scenario, rep_seeds, label
            )
            efl_samples = _deployment_samples(
                table, traces, efl_scenario, rep_seeds, label
            )
            cp_waipc = sum(cp_samples) / len(cp_samples)
            efl_waipc = sum(efl_samples) / len(efl_samples)
            wa_improvement = improvement(efl_waipc, cp_waipc)

        comparisons.append(
            WorkloadComparison(
                workload=workload,
                cp_partition=counts,
                cp_wgipc=cp_wgipc,
                efl_mid=mid,
                efl_wgipc=efl_wgipc,
                wgipc_improvement=wg_improvement,
                cp_waipc=cp_waipc,
                efl_waipc=efl_waipc,
                waipc_improvement=wa_improvement,
            )
        )

    wg_summary = summarise_improvements(
        [c.wgipc_improvement for c in comparisons]
    )
    wa_values = [
        c.waipc_improvement for c in comparisons if c.waipc_improvement is not None
    ]
    wa_summary = summarise_improvements(wa_values) if wa_values else None
    return Fig4Result(
        comparisons=comparisons,
        wgipc_summary=wg_summary,
        waipc_summary=wa_summary,
    )
