"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything raised by this package with a single handler while
still being able to discriminate configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at object-construction time (e.g. a cache whose size
    is not divisible by its line size, an EFL MID that is negative, a
    partition that assigns more ways than the LLC has).
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in the simulator or a misuse of its stepping
    API (e.g. running a core past the end of its trace), never a
    property of the simulated program.
    """


class CampaignRunError(SimulationError):
    """One or more runs of a measurement campaign failed.

    Execution backends capture per-run exceptions instead of aborting
    the whole campaign, so a single bad seed cannot kill a 1000-run
    fan-out; the campaign layer then raises this error carrying every
    ``(index, seed, message)`` triple, making the failing runs
    reproducible in isolation (re-run with exactly that seed).
    """

    def __init__(self, task: str, scenario_label: str, failures) -> None:
        self.task = task
        self.scenario_label = scenario_label
        #: List of ``(index, seed, message)`` triples, one per failed run.
        self.failures = list(failures)
        index, seed, message = self.failures[0]
        first = message.strip().splitlines()[-1] if message else "unknown error"
        super().__init__(
            f"campaign {task!r} under {scenario_label}: "
            f"{len(self.failures)} of the runs failed; first failure at "
            f"run {index} (seed {seed:#x}): {first}"
        )


class AnalysisError(ReproError):
    """A statistical analysis cannot be carried out.

    Raised by the PTA layer when inputs are unusable, e.g. fitting an
    EVT tail to fewer observations than the block size, or running an
    i.i.d. test on a constant sample.
    """


class TraceError(ReproError):
    """An instruction trace is malformed or exhausted unexpectedly."""
