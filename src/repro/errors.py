"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything raised by this package with a single handler while
still being able to discriminate configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at object-construction time (e.g. a cache whose size
    is not divisible by its line size, an EFL MID that is negative, a
    partition that assigns more ways than the LLC has).
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in the simulator or a misuse of its stepping
    API (e.g. running a core past the end of its trace), never a
    property of the simulated program.
    """


class TransientRunError(ReproError):
    """A run failed for infrastructure reasons, not simulation reasons.

    Transient failures (a worker process killed by the OS, a corrupted
    IPC payload, a wall-clock watchdog firing on a loaded host) say
    nothing about the simulated program: re-executing the same
    ``(index, seed)`` request yields the bit-identical result the
    failed attempt would have produced.  Backends therefore retry them
    under their :class:`~repro.sim.backend.RetryPolicy`, in contrast
    to deterministic :class:`SimulationError` failures which would
    fail identically on every attempt and are never retried.
    """


class WorkerCrashError(TransientRunError):
    """A worker process died hard (SIGKILL/OOM/``os._exit``).

    Hard deaths bypass Python-level exception capture entirely: the
    pool sees silence, not a traceback.  The parent synthesises this
    error for every run the dead worker still owed, rebuilds the pool
    and re-dispatches them.
    """


class ResultIntegrityError(TransientRunError):
    """A run result failed its integrity check after IPC transfer.

    Workers stamp each outcome with a checksum over the result payload;
    the parent recomputes it on receipt.  A mismatch means the payload
    was corrupted in flight — the simulation itself is fine, so the
    run is retried.
    """


class RunTimeoutError(ReproError):
    """A run exceeded a watchdog budget.

    Two watchdogs raise this error, with opposite retry semantics
    carried in :attr:`transient`:

    * the execution backend's **wall-clock** watchdog (a run made no
      progress for ``run_timeout_s`` host seconds) — transient: the
      host may simply have been loaded, so the run is retried;
    * the simulator's **simulated-cycle budget** guard (the run
      exceeded ``cycle_budget`` simulated cycles) — deterministic: the
      same seed livelocks identically on every attempt, so retrying
      is pointless and the failure is surfaced immediately.
    """

    def __init__(self, message: str, transient: bool) -> None:
        super().__init__(message)
        #: Whether a retry could plausibly succeed (wall-clock watchdog)
        #: or the timeout reproduces deterministically (cycle budget).
        self.transient = transient


class ServiceError(ReproError):
    """The campaign service cannot satisfy a request.

    Raised by the job layer for lifecycle misuse (waiting on a
    cancelled job, submitting to a stopped queue) and by
    :meth:`~repro.service.jobs.CampaignJob.wait` when the underlying
    campaign failed — the job's captured error (traceback text) rides
    in the message, so a service client sees why without access to the
    worker's stderr.
    """


class AdmissionError(ServiceError):
    """The service shed a submission instead of queueing it.

    Backpressure made explicit: a bounded queue that is full, a circuit
    breaker that is open for the submission's fingerprint, or a job
    that missed its deadline before a worker picked it up all *shed*
    the work with this labelled error rather than queueing unboundedly
    or failing silently.  :attr:`reason` carries the machine-readable
    shed classification (one of
    :data:`~repro.service.admission.SHED_REASONS`), and shed work is
    accounted on the ``runs_shed`` counter so the service invariant

        ``runs_requested == runs_simulated + runs_resumed
        + runs_served_from_cache + runs_shed``

    stays exact under overload.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        #: Machine-readable shed classification (``queue_full``,
        #: ``circuit_open`` or ``deadline``).
        self.reason = reason


class JobFailedError(ServiceError):
    """A campaign job reached the ``failed`` state.

    Raised by :meth:`~repro.service.jobs.CampaignJob.wait` in place of
    a bare :class:`ServiceError`: beyond the captured error text it
    carries the per-run failure classification the backend assigned —
    :attr:`failures` holds the ``(index, seed, message, kind)``
    quadruples of a :class:`CampaignRunError`, and
    :attr:`transient_failures` / :attr:`deterministic_failures` give
    the breakdown the admission layer's circuit breaker keys on.
    """

    def __init__(self, job_id, detail: str, failures=None) -> None:
        self.job_id = job_id
        #: ``(index, seed, message, kind)`` quadruples when the failure
        #: was a :class:`CampaignRunError`; empty otherwise.
        self.failures = [tuple(failure) for failure in (failures or [])]
        self.transient_failures = sum(
            1 for failure in self.failures
            if failure[3] == ERROR_KIND_TRANSIENT
        )
        self.deterministic_failures = (
            len(self.failures) - self.transient_failures
        )
        breakdown = ""
        if self.failures:
            breakdown = (
                f" ({len(self.failures)} failed runs: "
                f"{self.transient_failures} transient, "
                f"{self.deterministic_failures} deterministic)"
            )
        super().__init__(f"job {job_id} failed{breakdown}:\n{detail}")


class CheckpointError(ReproError):
    """A campaign checkpoint journal cannot be used.

    Raised when a journal's header does not match the campaign being
    resumed (different task, scenario, master seed or config
    fingerprint) or when a journalled run contradicts the campaign's
    derived seeds.  Resuming from a mismatched journal would splice
    samples from two different experiments, so this is never papered
    over.
    """


#: ``RunOutcome.error_kind`` value for retryable infrastructure failures.
ERROR_KIND_TRANSIENT = "transient"
#: ``RunOutcome.error_kind`` value for failures that reproduce per seed.
ERROR_KIND_DETERMINISTIC = "deterministic"


def classify_exception(exc: BaseException) -> str:
    """Classify an exception as transient (retryable) or deterministic.

    Transient means re-executing the same request could succeed
    (infrastructure failed, not the simulation); deterministic means
    every attempt fails identically, so backends must surface the
    failure after exactly one attempt.
    """
    if isinstance(exc, TransientRunError):
        return ERROR_KIND_TRANSIENT
    if isinstance(exc, RunTimeoutError):
        return ERROR_KIND_TRANSIENT if exc.transient else ERROR_KIND_DETERMINISTIC
    return ERROR_KIND_DETERMINISTIC


class CampaignRunError(SimulationError):
    """One or more runs of a measurement campaign failed.

    Execution backends capture per-run exceptions instead of aborting
    the whole campaign, so a single bad seed cannot kill a 1000-run
    fan-out; the campaign layer then raises this error carrying every
    ``(index, seed, message, kind)`` quadruple, making the failing
    runs reproducible in isolation (re-run with exactly that seed).
    ``kind`` is the retry classification the backend assigned
    (:data:`ERROR_KIND_TRANSIENT` failures exhausted their retry
    budget; :data:`ERROR_KIND_DETERMINISTIC` ones were never retried).
    """

    def __init__(self, task: str, scenario_label: str, failures) -> None:
        self.task = task
        self.scenario_label = scenario_label
        #: List of ``(index, seed, message, kind)`` quadruples, one per
        #: failed run.  Triples are accepted and default to
        #: deterministic for backward compatibility.
        self.failures = [
            tuple(failure) if len(failure) == 4
            else (*failure, ERROR_KIND_DETERMINISTIC)
            for failure in failures
        ]
        index, seed, message, kind = self.failures[0]
        first = message.strip().splitlines()[-1] if message else "unknown error"
        transient = sum(
            1 for _i, _s, _m, k in self.failures if k == ERROR_KIND_TRANSIENT
        )
        breakdown = (
            f" ({transient} transient after retries)" if transient else ""
        )
        super().__init__(
            f"campaign {task!r} under {scenario_label}: "
            f"{len(self.failures)} of the runs failed{breakdown}; "
            f"first failure ({kind}) at "
            f"run {index} (seed {seed:#x}): {first}"
        )


class AnalysisError(ReproError):
    """A statistical analysis cannot be carried out.

    Raised by the PTA layer when inputs are unusable, e.g. fitting an
    EVT tail to fewer observations than the block size, or running an
    i.i.d. test on a constant sample.
    """


class TraceError(ReproError):
    """An instruction trace is malformed or exhausted unexpectedly."""
