"""EFL — the paper's primary contribution.

The Eviction Frequency Limiting mechanism (§3 of the paper) is a small
per-core access-control unit sitting between each core and the shared
time-randomised LLC:

* :class:`~repro.core.config.EFLConfig` — the rMID/rmode software
  interface (desired Minimum Inter-eviction Delay and knobs);
* :class:`~repro.core.acu.AccessControlUnit` — the count-down counter
  (cdc), eviction-allowed bit (EAB) and MWC PRNG of one core;
* :class:`~repro.core.crg.CacheRequestGenerator` — the analysis-time
  artificial eviction source of one core;
* :class:`~repro.core.efl.EFLController` — the unit tying the per-core
  pieces to one LLC, in analysis or deployment mode.
"""

from repro.core.config import EFLConfig, OperationMode
from repro.core.acu import AccessControlUnit
from repro.core.crg import CacheRequestGenerator
from repro.core.efl import EFLController

__all__ = [
    "EFLConfig",
    "OperationMode",
    "AccessControlUnit",
    "CacheRequestGenerator",
    "EFLController",
]
