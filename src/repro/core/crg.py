"""Cache Request Generator: the analysis-time artificial co-runner.

At analysis time the task under analysis runs alone on one core while
the CRG of *every other* core issues eviction requests to the LLC "at
the maximum allowed frequency" (§3.4): each request is flagged
force-miss, so it evicts a line no matter what, and consecutive
requests are spaced by the same ``U[0, 2*MID]`` draws the ACU enforces.
This realises the worst inter-task interference the deployment-time
mechanism permits — co-runners that miss on every access and evict as
fast as EFL lets them — so analysis-time observations upper-bound
deployment probabilistically.

Each artificial request targets a set drawn uniformly at random, which
is exactly how a random-placement LLC spreads a co-runner's (unknown)
addresses across sets.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import EFLConfig
from repro.errors import ConfigurationError, SimulationError
from repro.utils.rng import MultiplyWithCarry


class CacheRequestGenerator:
    """Artificial eviction source for one interfering core.

    Parameters
    ----------
    config:
        The interfering core's EFL configuration; the CRG fires one
        forced eviction per ACU window, i.e. with inter-arrival times
        ``U[0, 2*MID]`` (mean MID).
    rng:
        The core's hardware PRNG, used both for the inter-arrival
        draws and for choosing the victim set.
    num_sets:
        Number of LLC sets to spread forced evictions over.
    """

    def __init__(
        self, config: EFLConfig, rng: MultiplyWithCarry, num_sets: int
    ) -> None:
        if not config.enabled:
            raise ConfigurationError(
                "a CRG needs a positive MID; with MID == 0 the artificial "
                "co-runner would evict every cycle and analysis time would "
                "be unbounded"
            )
        if num_sets <= 0:
            raise ConfigurationError(f"num_sets must be positive, got {num_sets}")
        self.config = config
        self._rng = rng
        self.num_sets = num_sets
        self._next_time = self._draw_gap()
        self.fired = 0

    def _draw_gap(self) -> int:
        if self.config.randomise_mid:
            return self._rng.randint_inclusive(0, 2 * self.config.mid)
        return self.config.mid

    def peek_next_time(self) -> int:
        """Absolute cycle of the next pending forced eviction."""
        return self._next_time

    def fire_until(self, now: int, evict: Callable[[int], None]) -> int:
        """Replay every forced eviction scheduled at or before ``now``.

        ``evict(set_index)`` is called once per artificial request, in
        time order.  Returns the number of evictions fired.  The
        simulator calls this lazily right before the analysed task
        touches the LLC, which is timing-equivalent to firing them
        eagerly because forced evictions only matter through the LLC
        state they leave behind.
        """
        if now < 0:
            raise SimulationError(f"negative time {now}")
        count = 0
        while self._next_time <= now:
            evict(self._rng.randrange(self.num_sets))
            self.fired += 1
            count += 1
            gap = self._draw_gap()
            # A zero gap is a legal draw (the ACU can grant back-to-back
            # evictions across two windows) but must still advance time
            # to keep this loop finite: hardware serves at most one
            # forced eviction per cycle per core.
            self._next_time += gap if gap > 0 else 1
        return count

    def reset(self) -> None:
        """Restart the arrival process from cycle 0 (new run)."""
        self._next_time = self._draw_gap()
        self.fired = 0

    def __repr__(self) -> str:
        return (
            f"CacheRequestGenerator(mid={self.config.mid}, "
            f"next={self._next_time}, fired={self.fired})"
        )
