"""Software-visible EFL configuration: the rMID and rmode registers.

The paper gives system software two registers per core (§3.5): ``rMID``
holds the desired Minimum Inter-eviction Delay, and ``rmode`` selects
analysis-time or deployment-time operation.  This module models that
interface as plain configuration objects consumed by the hardware
models in :mod:`repro.core.acu` and :mod:`repro.core.efl`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class OperationMode(enum.Enum):
    """The rmode register: which stage the platform is operating in.

    * ``ANALYSIS``: the task under analysis runs alone on one core; the
      CRGs of every other core inject force-miss eviction requests at
      the maximum frequency EFL allows, and all shared-resource
      latencies are charged their composable upper bounds.
    * ``DEPLOYMENT``: all cores run real tasks; CRGs are off and every
      core's real misses are rate-limited by its ACU.
    """

    ANALYSIS = "analysis"
    DEPLOYMENT = "deployment"


@dataclass(frozen=True)
class EFLConfig:
    """Per-core EFL parameters (the rMID register plus model knobs).

    Parameters
    ----------
    mid:
        Desired Minimum Inter-eviction Delay in cycles.  After each
        eviction the core draws its next inter-eviction delay uniformly
        from ``[0, 2*mid]``, so delays *average* ``mid``.  ``mid == 0``
        disables throttling (every eviction allowed immediately), which
        models a plain shared TR LLC.
    randomise_mid:
        ``True`` (paper behaviour): each delay is drawn uniformly from
        ``[0, 2*mid]`` so interfering accesses interleave randomly and
        the effect is MBPTA-capturable (§3.4 "Interleave").  ``False``
        uses the deterministic value ``mid`` every time — the strawman
        the paper rejects, kept for the A1 ablation.

    >>> EFLConfig(mid=500).mid
    500
    """

    mid: int
    randomise_mid: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.mid, int) or isinstance(self.mid, bool) or self.mid < 0:
            raise ConfigurationError(
                f"MID must be a non-negative integer number of cycles, got {self.mid!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether eviction throttling is active (``mid > 0``)."""
        return self.mid > 0

    @property
    def max_delay(self) -> int:
        """Largest single inter-eviction delay the ACU can draw."""
        return 2 * self.mid if self.randomise_mid else self.mid

    @classmethod
    def disabled(cls) -> "EFLConfig":
        """An EFL configuration that never throttles (plain TR LLC)."""
        return cls(mid=0)
