"""The per-core Access Control Unit: cdc, EAB and PRNG.

Hardware behaviour being modelled (§3.5, Figure 2 of the paper): on
every LLC eviction performed by a core, the core's Multiply-With-Carry
PRNG produces a value uniform in ``[0, 2*MID_desired]`` that is loaded
into a count-down counter (cdc).  The cdc decrements once per cycle;
the eviction-allowed bit (EAB) of the core's LLC port is 1 exactly when
the cdc has reached zero.  A request that misses in the LLC while
``EAB == 0`` is *stalled* (the port is held busy) until the cdc
expires; LLC hits proceed regardless because Evict-on-Miss hits do not
change cache state.

This model is event-driven rather than cycle-ticked: instead of
decrementing a counter every cycle it records the absolute cycle at
which the cdc will reach zero, which is timing-equivalent and lets the
simulator jump across idle periods.

Every LLC **miss** is treated as an eviction event for throttling
purposes, including misses that happen to fill an invalid way: the
hardware gates the miss *before* knowing whether the victim way holds
valid data, which is also the conservative choice for analysis.
"""

from __future__ import annotations

from repro.core.config import EFLConfig
from repro.errors import SimulationError
from repro.utils.rng import MultiplyWithCarry


class AccessControlUnit:
    """EFL gate logic for one core.

    Parameters
    ----------
    config:
        The core's :class:`~repro.core.config.EFLConfig` (rMID value
        and randomisation knob).
    rng:
        The core's hardware PRNG.  The paper notes this can reuse the
        32-bit-per-cycle MWC PRNG already present for the L1s' random
        replacement.
    """

    def __init__(self, config: EFLConfig, rng: MultiplyWithCarry) -> None:
        self.config = config
        self._rng = rng
        #: absolute cycle at which the cdc reaches zero (EAB turns 1).
        self._eab_time = 0
        #: monotonicity guard: evictions must be recorded in time order.
        self._last_event_time = 0
        self.evictions = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # EAB queries
    # ------------------------------------------------------------------
    def eviction_allowed(self, now: int) -> bool:
        """Return the EAB value at cycle ``now``."""
        return now >= self._eab_time

    def eviction_grant_time(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which an eviction may proceed.

        This is where the stall happens: a miss arriving at ``now``
        with ``EAB == 0`` waits until the cdc expires.  The stall
        length is recorded in :attr:`stall_cycles`.
        """
        if now < 0:
            raise SimulationError(f"negative time {now}")
        if not self.config.enabled:
            return now
        grant = self._eab_time if self._eab_time > now else now
        self.stall_cycles += grant - now
        return grant

    # ------------------------------------------------------------------
    # eviction bookkeeping
    # ------------------------------------------------------------------
    def record_eviction(self, time: int) -> None:
        """Note that the core evicted an LLC line at cycle ``time``.

        Reloads the cdc from the PRNG: the next eviction of this core
        becomes allowed ``U[0, 2*MID]`` cycles later (or exactly
        ``MID`` later with randomisation disabled).
        """
        if time < self._last_event_time:
            raise SimulationError(
                f"eviction recorded at {time}, before previous event at "
                f"{self._last_event_time}"
            )
        self._last_event_time = time
        self.evictions += 1
        if not self.config.enabled:
            return
        if self.config.randomise_mid:
            delay = self._rng.randint_inclusive(0, 2 * self.config.mid)
        else:
            delay = self.config.mid
        self._eab_time = time + delay

    def next_allowed_time(self) -> int:
        """Absolute cycle of the pending EAB expiry (for the CRG)."""
        return self._eab_time

    def reset(self) -> None:
        """Return to the power-on state (new run).  Counters cleared."""
        self._eab_time = 0
        self._last_event_time = 0
        self.evictions = 0
        self.stall_cycles = 0

    def __repr__(self) -> str:
        return (
            f"AccessControlUnit(mid={self.config.mid}, "
            f"eab_time={self._eab_time}, evictions={self.evictions})"
        )
