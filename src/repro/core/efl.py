"""EFL controller: per-core ACUs and CRGs wired to one shared LLC.

This is the "Access Control Unit" block of Figure 2 at system level:
one ACU per core, one CRG per core (active only at analysis time on
the cores the task under analysis does *not* occupy), the rmode
register, and the force-miss plumbing into the LLC.

The simulator interacts with EFL at exactly two points per LLC
transaction of a real task:

1. before serving a *miss*, it asks :meth:`EFLController.grant_eviction`
   for the cycle at which the eviction may proceed (the EAB stall);
2. in analysis mode, before *any* LLC access of the analysed task, it
   calls :meth:`EFLController.inject_interference` so the artificial
   co-runner evictions that happened since the previous access are
   applied to the LLC state.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.acu import AccessControlUnit
from repro.core.config import EFLConfig, OperationMode
from repro.core.crg import CacheRequestGenerator
from repro.errors import ConfigurationError
from repro.mem.cache import Cache
from repro.utils.rng import MultiplyWithCarry, SplitMix64


class EFLController:
    """System-level EFL mechanism for an ``num_cores``-core platform.

    Parameters
    ----------
    llc:
        The shared time-randomised LLC being protected.
    configs:
        One :class:`~repro.core.config.EFLConfig` per core (the rMID
        registers).  The paper always programs the same MID in every
        core; heterogeneous values are supported because nothing in the
        mechanism requires homogeneity.
    mode:
        The rmode register value.
    analysed_core:
        In analysis mode, the core the task under analysis runs on
        (core 0 in the paper's Figure 1); every *other* core's CRG is
        switched on.  Ignored in deployment mode.
    seed:
        Master seed from which every per-core hardware PRNG is derived.
    """

    def __init__(
        self,
        llc: Cache,
        configs: List[EFLConfig],
        mode: OperationMode = OperationMode.DEPLOYMENT,
        analysed_core: int = 0,
        seed: int = 0,
    ) -> None:
        if not configs:
            raise ConfigurationError("EFLController needs at least one core config")
        if mode is OperationMode.ANALYSIS and not 0 <= analysed_core < len(configs):
            raise ConfigurationError(
                f"analysed_core {analysed_core} out of range for "
                f"{len(configs)} cores"
            )
        self.llc = llc
        self.configs = list(configs)
        self.mode = mode
        self.analysed_core = analysed_core
        seeds = SplitMix64(seed)
        self.acus: List[AccessControlUnit] = [
            AccessControlUnit(cfg, MultiplyWithCarry(seeds.next_u64()))
            for cfg in self.configs
        ]
        self._crgs: Dict[int, CacheRequestGenerator] = {}
        if mode is OperationMode.ANALYSIS:
            for core, cfg in enumerate(self.configs):
                if core == analysed_core:
                    continue
                if not cfg.enabled:
                    raise ConfigurationError(
                        f"analysis mode requires a positive MID on interfering "
                        f"core {core} (got MID=0)"
                    )
                self._crgs[core] = CacheRequestGenerator(
                    cfg, MultiplyWithCarry(seeds.next_u64()), llc.geometry.num_sets
                )

    @property
    def num_cores(self) -> int:
        """Number of cores this controller manages."""
        return len(self.configs)

    # ------------------------------------------------------------------
    # deployment + analysis: eviction gating
    # ------------------------------------------------------------------
    def grant_eviction(self, core: int, now: int) -> int:
        """Return the cycle at which ``core`` may perform an eviction.

        Equals ``now`` when the core's EAB is already set; otherwise
        the EAB expiry time.  The caller must follow up with
        :meth:`record_eviction` at the granted time.
        """
        return self.acus[core].eviction_grant_time(now)

    def record_eviction(self, core: int, time: int) -> None:
        """Reload ``core``'s cdc after it evicted at ``time``."""
        self.acus[core].record_eviction(time)

    # ------------------------------------------------------------------
    # analysis mode: artificial interference
    # ------------------------------------------------------------------
    def inject_interference(self, now: int) -> int:
        """Apply all pending CRG evictions up to cycle ``now``.

        Returns the number of forced evictions applied.  A no-op in
        deployment mode (CRGs are off) — callers may invoke it
        unconditionally.
        """
        total = 0
        for crg in self._crgs.values():
            total += crg.fire_until(now, self.llc.force_eviction)
        return total

    def interference_evictions(self) -> int:
        """Total artificial evictions fired so far (all CRGs)."""
        return sum(crg.fired for crg in self._crgs.values())

    def stall_cycles(self, core: int) -> int:
        """Cycles ``core`` spent stalled on a clear EAB so far."""
        return self.acus[core].stall_cycles

    def reset(self) -> None:
        """Reset every ACU and CRG to the power-on state (new run)."""
        for acu in self.acus:
            acu.reset()
        for crg in self._crgs.values():
            crg.reset()

    def __repr__(self) -> str:
        mids = [cfg.mid for cfg in self.configs]
        return (
            f"EFLController(mode={self.mode.value}, mids={mids}, "
            f"analysed_core={self.analysed_core})"
        )
