"""Command-line interface: regenerate the paper's experiments.

Usage (after ``pip install -e .``)::

    repro-efl iid  --scale quick          # E1: MBPTA compliance table
    repro-efl fig3 --scale quick          # E2: normalised pWCET table
    repro-efl fig4 --scale quick          # E3/E4: S-curve summaries
    repro-efl all  --scale tiny           # everything, smoke scale
    repro-efl fig3 --backend process --workers 4   # parallel fan-out

Every command accepts ``--scale {tiny,quick,default,paper}`` and
``--seed`` for reproducibility, plus ``--backend {serial,process}``
and ``--workers N`` to fan simulation runs out over worker processes
(results are bit-identical across backends — seeds are derived per
run, not per worker); results print as plain-text tables.
``--engine {auto,scalar,batch,sharded,kernel}`` picks the run
interpreter for analysis campaigns: ``auto`` (default) compiles
eligible campaigns onto the grouped-opcode kernel engine — sharding
the lanes over worker processes when the host has CPUs to use —
``scalar`` forces the per-run interpreter, ``batch`` / ``sharded`` /
``kernel`` fail loudly instead of falling back; samples are
bit-identical across engines.  ``--engine kernel --workers N`` runs N
shards (``--workers`` composes with either the process backend or the
batch/sharded/kernel engines, never both at once).

Long sweeps survive interruption with ``--checkpoint-dir DIR``: every
analysis campaign journals its completed runs there, and rerunning
with ``--resume`` picks the sweep up from the journals instead of
restarting it.  ``--run-timeout`` arms the pool backend's per-run
wall-clock watchdog; ``--cycle-budget`` bounds each run's simulated
cycles (a livelock guard).

The campaign service adds two verbs::

    repro-efl submit --store results/ --bench RS --scenario EFL500
    repro-efl status --store results/ --json

``submit`` routes one campaign through the content-addressed result
store: a byte-identical resubmission (same trace content, config,
scenario, seed and runs) simulates **zero** runs and serves the stored
sample, bit-identical to the original.  ``--json`` emits the full
machine-readable result, ``--telemetry-dir DIR`` dumps the
submission's metrics and trace spans.  ``status`` lists a store's
entries, re-verifying each entry's integrity checksum
(``status --job ID`` inspects one entry).

The durable service adds a third verb::

    repro-efl --checkpoint-dir ckpt/ serve \\
        --journal jobs.jsonl --store results/ \\
        --bench RS --scenario EFL500 --runs 1000

``serve`` runs a crash-safe queue: every admission is write-ahead
journalled to ``--journal`` and every executed campaign checkpoints
its runs under ``--checkpoint-dir``, so a SIGKILLed serve can be
rerun with ``--resume-jobs`` and will re-admit interrupted jobs,
resume their campaigns run-for-run, and produce final samples
bit-identical to an uninterrupted run.  ``--store-quota
bytes[:entries[:age]]`` bounds the store with LRU eviction;
``--max-queue`` / ``--deadline`` / ``--retry-budget`` /
``--breaker-threshold`` configure admission control (overload sheds
with labelled errors instead of queueing unboundedly).

``--log-level {debug,info,warning,error,quiet}`` and ``--log-format
{plain,kv,json}`` control progress logging; the defaults reproduce the
historical ``--verbose`` text output exactly, while ``kv``/``json``
emit machine-parseable records for log aggregation.

``--adaptive`` turns every analysis campaign into an early-stopping
one: runs are dispatched wave by wave and the campaign stops as soon
as the pWCET quantile has been stable (moved less than
``--pwcet-rtol``, default 0.005, for two consecutive waves) and the
i.i.d. tests pass, instead of always simulating the scale's fixed run
count.  The executed sample is bit-identical to the prefix of the
fixed-R campaign's sample, so results are reproducible; ``--min-runs``
/ ``--max-runs`` bound the sample size (``--min-runs R --max-runs R``
reproduces a fixed-R campaign exactly).  The flags compose with
``submit``/``serve`` — adaptive jobs carry their convergence policy in
the store fingerprint, so they never answer a fixed-R submission.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.experiments import (
    PWCETTable,
    run_fig3,
    run_fig4,
    run_iid_compliance,
)
from repro.analysis.export import (
    write_campaign_json,
    write_fig3_csv,
    write_fig4_csv,
    write_iid_csv,
)
from repro.analysis.reporting import (
    render_campaign,
    render_fig3,
    render_fig4,
    render_iid,
    render_profile,
)
from repro.errors import (
    ConfigurationError,
    ResultIntegrityError,
    ServiceError,
)
from repro.observability import LEVELS, LOG_FORMATS, StructuredLogger, Telemetry
from repro.pta import ConvergencePolicy
from repro.service import (
    AdmissionPolicy,
    CampaignJob,
    JobJournal,
    JobQueue,
    ResultStore,
    StoreQuota,
    recover_jobs,
)
from repro.sim.backend import (
    BACKEND_NAMES,
    ProfilingObserver,
    StreamObserver,
    make_backend,
    usable_cpus,
)
from repro.sim.batch import ENGINE_NAMES
from repro.sim.config import Scenario, SystemConfig
from repro.utils.xp import ARRAY_BACKEND_NAMES, set_array_backend
from repro.workloads.scale import ExperimentScale
from repro.workloads.suite import BENCHMARK_IDS, build_benchmark


def _cli_logger(args: argparse.Namespace) -> StructuredLogger:
    """The structured logger the CLI's flags describe.

    Defaults (``--log-level info --log-format plain``) reproduce the
    historical text output byte for byte; ``--log-format kv|json``
    switches to machine-parseable records and ``--log-level quiet``
    silences progress entirely (the service mode).
    """
    return StructuredLogger(
        stream=sys.stderr, level=args.log_level, fmt=args.log_format
    )


def _rtol_arg(value: str):
    """``--pwcet-rtol`` value: a float, or the preset-table sentinel."""
    if value == "per-benchmark":
        return value
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a float or 'per-benchmark', got {value!r}"
        ) from None


def _adaptive_policy(args, scale, bench=None):
    """The convergence policy the CLI flags describe, or None.

    ``--max-runs`` (or, for the service verbs, ``--runs``) caps the
    sample; everything else defaults from the scale preset.  The
    rtol/min/max flags were already validated to require ``--adaptive``
    in :func:`main`.  ``--pwcet-rtol per-benchmark`` selects the
    benchmark preset table: with a concrete ``bench`` (the service
    verbs) it resolves to that benchmark's policy here, without one
    (the analysis table, which spans all ten) it returns the
    ``"per-benchmark"`` sentinel for :class:`PWCETTable` to resolve
    per campaign.
    """
    if not args.adaptive:
        return None
    max_runs = args.max_runs
    if max_runs is None:
        max_runs = getattr(args, "runs", None)
    if args.pwcet_rtol == "per-benchmark":
        if bench is None:
            return "per-benchmark"
        return ConvergencePolicy.for_benchmark(
            bench, scale, min_runs=args.min_runs, max_runs=max_runs
        )
    kwargs = {}
    if args.pwcet_rtol is not None:
        kwargs["rtol"] = args.pwcet_rtol
    return ConvergencePolicy.for_scale(
        scale, min_runs=args.min_runs, max_runs=max_runs, **kwargs
    )


def _build_table(args: argparse.Namespace) -> PWCETTable:
    scale = ExperimentScale.from_name(args.scale)
    if args.backend == "process" and usable_cpus() < 2:
        # Proceed anyway: results are bit-identical across backends,
        # and the backend itself degrades to in-process execution
        # rather than paying pool overhead for no parallelism.
        print(
            "warning: --backend process on a single-CPU host cannot run "
            "workers in parallel; the pool degrades to in-process serial "
            "execution (results are unaffected)",
            file=sys.stderr,
        )
    observer = (
        StreamObserver(sys.stderr, logger=_cli_logger(args))
        if args.verbose else None
    )
    if args.profile:
        observer = ProfilingObserver(observer)
    # --workers N means pool workers with --backend process, shard
    # workers otherwise (the conflicting combinations were rejected in
    # main()); only one of the two consumers ever receives it.
    pool_workers = args.workers if args.backend == "process" else None
    shard_workers = args.workers if args.backend != "process" else None
    return PWCETTable(
        config=SystemConfig(),
        scale=scale,
        seed=args.seed,
        backend=make_backend(
            args.backend, pool_workers, run_timeout_s=args.run_timeout
        ),
        observer=observer,
        profile=args.profile,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        cycle_budget=args.cycle_budget,
        engine=args.engine,
        workers=shard_workers,
        adaptive=_adaptive_policy(args, scale),
    )


def _finish(table: PWCETTable) -> None:
    """Print the aggregated hot-path profile when --profile was given."""
    observer = table.observer
    if isinstance(observer, ProfilingObserver) and observer.snapshots:
        print()
        print(render_profile(observer.total, runs=len(observer.snapshots)))


def _maybe_csv(args: argparse.Namespace, name: str, writer, result) -> None:
    """Write ``result`` to ``<prefix><name>.csv`` when --csv was given."""
    if getattr(args, "csv", None):
        path = f"{args.csv}{name}.csv"
        with open(path, "w", newline="") as stream:
            writer(result, stream)
        print(f"(wrote {path})", file=sys.stderr)


def _cmd_iid(args: argparse.Namespace) -> int:
    table = _build_table(args)
    result = run_iid_compliance(table, mid=args.mid)
    print(render_iid(result))
    _maybe_csv(args, "iid", write_iid_csv, result)
    _finish(table)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    table = _build_table(args)
    result = run_fig3(table)
    print(render_fig3(result))
    _maybe_csv(args, "fig3", write_fig3_csv, result)
    _finish(table)
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    table = _build_table(args)
    result = run_fig4(table, measure_average=not args.no_average)
    print(render_fig4(result))
    _maybe_csv(args, "fig4", write_fig4_csv, result)
    _finish(table)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    table = _build_table(args)
    started = time.time()
    print(render_iid(run_iid_compliance(table, mid=args.mid)))
    print()
    print(render_fig3(run_fig3(table)))
    print()
    print(render_fig4(run_fig4(table, measure_average=not args.no_average)))
    print(f"\n(total {time.time() - started:.1f}s at scale {args.scale!r})")
    _finish(table)
    return 0


def _write_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Dump metrics and trace spans to --telemetry-dir as JSON files."""
    if not getattr(args, "telemetry_dir", None):
        return
    directory = Path(args.telemetry_dir)
    directory.mkdir(parents=True, exist_ok=True)
    metrics_path = directory / "metrics.json"
    metrics_path.write_text(telemetry.metrics.to_json(indent=2) + "\n")
    spans_path = directory / "spans.json"
    spans_path.write_text(telemetry.tracer.to_json(indent=2) + "\n")
    print(f"(wrote {metrics_path} and {spans_path})", file=sys.stderr)


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one campaign through the service's dedup front door.

    The fingerprint decides the work: a store hit simulates nothing
    and serves the persisted sample (bit-identical to the original
    submission); a miss runs the campaign through the job queue and
    persists the result before returning.
    """
    scale = ExperimentScale.from_name(args.scale)
    trace = build_benchmark(args.bench, scale.trace_scale)
    scenario = Scenario.from_label(args.scenario)
    adaptive = _adaptive_policy(args, scale, bench=args.bench)
    if adaptive is not None:
        runs = adaptive.max_runs
    else:
        runs = args.runs if args.runs is not None else scale.analysis_runs
    telemetry = Telemetry(logger=_cli_logger(args))
    store = ResultStore(args.store)
    job = CampaignJob(
        trace,
        SystemConfig(),
        scenario,
        runs=runs,
        master_seed=args.seed,
        engine=args.engine,
        workers=args.workers,
        cycle_budget=args.cycle_budget,
        adaptive=adaptive,
    )
    with JobQueue(workers=1, telemetry=telemetry) as queue:
        resolved = store.get_or_submit(job, queue)
        result = resolved.wait()
    source = job.source or resolved.source or "simulated"
    simulated = telemetry.metrics.value("runs_simulated")
    print(
        f"(job {resolved.job_id}: {job.state}, source {source}, "
        f"{simulated} runs simulated, fingerprint {job.fingerprint})",
        file=sys.stderr,
    )
    if args.json:
        write_campaign_json(result, sys.stdout)
    else:
        print(render_campaign(result))
    _write_telemetry(args, telemetry)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a durable, admission-controlled campaign service pass.

    Admissions are write-ahead journalled; with ``--resume-jobs`` the
    journal's interrupted jobs are re-admitted first (completed-before
    -crash work answers from the store, mid-campaign work resumes
    through its checkpoint — samples bit-identical either way).  Exits
    0 when every job ended ``done``/``cached``, 1 otherwise.
    """
    telemetry = Telemetry(logger=_cli_logger(args))
    quota = (
        StoreQuota.parse(args.store_quota) if args.store_quota else None
    )
    store = ResultStore(args.store, quota=quota)
    journal = JobJournal(args.journal)
    admission = AdmissionPolicy(
        max_queue_depth=args.max_queue,
        deadline_s=args.deadline,
        retry_budget=args.retry_budget,
        breaker_threshold=args.breaker_threshold,
    )
    queue = JobQueue(
        workers=args.queue_workers,
        telemetry=telemetry,
        admission=admission,
        journal=journal,
        checkpoint_dir=args.checkpoint_dir,
    )
    jobs = []
    shed = 0
    try:
        if args.resume_jobs:
            jobs.extend(recover_jobs(journal, queue, store=store))
        if args.bench is not None:
            scale = ExperimentScale.from_name(args.scale)
            trace = build_benchmark(args.bench, scale.trace_scale)
            scenario = Scenario.from_label(args.scenario)
            adaptive = _adaptive_policy(args, scale, bench=args.bench)
            if adaptive is not None:
                runs = adaptive.max_runs
            else:
                runs = (
                    args.runs if args.runs is not None
                    else scale.analysis_runs
                )
            job = CampaignJob(
                trace,
                SystemConfig(),
                scenario,
                runs=runs,
                master_seed=args.seed,
                engine=args.engine,
                workers=args.workers,
                cycle_budget=args.cycle_budget,
                adaptive=adaptive,
            )
            try:
                jobs.append(store.get_or_submit(job, queue))
            except ServiceError as exc:
                shed += 1
                print(f"(submission shed: {exc})", file=sys.stderr)
        failed = 0
        for job in jobs:
            try:
                job.wait()
            except ServiceError as exc:
                failed += 1
                print(
                    f"(job {job.job_id} did not complete: "
                    f"{str(exc).strip().splitlines()[0]})",
                    file=sys.stderr,
                )
        queue.shutdown(wait=True)
        health = queue.health()
    finally:
        queue.shutdown(wait=False)
        journal.close()
    for job in jobs:
        print(
            f"(job {job.job_id}: {job.state}, source "
            f"{job.source or 'n/a'}, fingerprint {job.fingerprint})",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(health, indent=2, sort_keys=True))
    else:
        runs_block = health["runs"]
        print(
            f"serve: {len(jobs)} jobs ({failed} failed, {shed} shed at "
            f"admission); runs requested={runs_block['requested']} "
            f"simulated={runs_block['simulated']} "
            f"resumed={runs_block['resumed']} "
            f"cached={runs_block['served_from_cache']} "
            f"shed={runs_block['shed']} "
            f"saved={runs_block['saved_converged']}"
        )
    _write_telemetry(args, telemetry)
    return 1 if (failed or shed) else 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Report every entry in a result store, integrity-verified."""
    store = ResultStore(args.store)
    if args.job is not None:
        fingerprint = args.job
        if fingerprint.startswith("cached-"):
            fingerprint = fingerprint[len("cached-"):]
        if fingerprint.startswith("job-"):
            raise ConfigurationError(
                f"job id {args.job!r} is queue-local and cannot be "
                f"resolved from a store on disk; use the campaign "
                f"fingerprint (or a cached-<fingerprint> id) instead"
            )
        if fingerprint not in store:
            raise ConfigurationError(
                f"unknown job id {args.job!r}: store {store.root} has "
                f"no entry for fingerprint {fingerprint}"
            )
    entries = []
    corrupt = 0
    fingerprints = store.fingerprints()
    if args.job is not None:
        fingerprints = [fingerprint]
    for fingerprint in fingerprints:
        try:
            result = store.get(fingerprint)
        except ResultIntegrityError as exc:
            corrupt += 1
            entries.append({
                "fingerprint": fingerprint,
                "ok": False,
                "error": str(exc).strip().splitlines()[-1],
            })
        else:
            entry = {
                "fingerprint": fingerprint,
                "ok": True,
                "task": result.task,
                "scenario": result.scenario_label,
                "runs": result.runs,
                "backend": result.backend,
                "max_time": result.max_time,
            }
            if result.kernel_stats:
                entry["kernel"] = result.kernel_stats
            entries.append(entry)
    if args.json:
        print(json.dumps(
            {"store": str(store.root), "entries": entries}, indent=2
        ))
    elif not entries:
        print(f"store {store.root}: empty")
    else:
        print(f"store {store.root}: {len(entries)} entries"
              + (f" ({corrupt} corrupt)" if corrupt else ""))
        for entry in entries:
            if entry["ok"]:
                print(
                    f"  {entry['fingerprint']}  {entry['task']:>4} under "
                    f"{entry['scenario']:<8} {entry['runs']} runs "
                    f"({entry['backend']}, HWM {entry['max_time']})"
                )
            else:
                print(
                    f"  {entry['fingerprint']}  CORRUPT: {entry['error']}"
                )
    return 1 if corrupt else 0


def make_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-efl",
        description=(
            "Regenerate the experiments of 'Time-Analysable Non-Partitioned "
            "Shared Caches for Real-Time Multicore Systems' (DAC 2014)."
        ),
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("tiny", "quick", "default", "paper"),
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKEND_NAMES,
        help=(
            "execution backend for the simulation runs: 'serial' "
            "(in-process) or 'process' (multiprocessing fan-out); "
            "results are bit-identical either way (default: serial)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes: pool workers with --backend process, "
            "shard workers with --engine batch/sharded/auto "
            "(default: CPU count)"
        ),
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=ENGINE_NAMES,
        help=(
            "run interpreter for analysis campaigns: 'auto' uses the "
            "grouped-opcode kernel engine where eligible — sharded over "
            "worker processes when the host and campaign are big enough "
            "— and falls back to the scalar interpreter otherwise, "
            "'scalar' forces per-run interpretation, 'batch' demands "
            "lock-step NumPy execution, 'kernel' demands the compiled "
            "grouped-opcode form ('--workers N' shards either N ways) "
            "and 'sharded' demands the multi-process form; all three "
            "fail (naming the obstacle) on ineligible campaigns, e.g. "
            "deployment runs or --profile; samples are bit-identical "
            "across engines (default: auto)"
        ),
    )
    parser.add_argument(
        "--array-backend",
        default="auto",
        choices=ARRAY_BACKEND_NAMES,
        help=(
            "array namespace for the vector engines: 'auto' uses CuPy "
            "when a working GPU stack is importable and NumPy "
            "otherwise, 'numpy' pins the CPU path, 'cupy' demands the "
            "GPU and fails (naming the obstacle) when it is missing; "
            "samples are bit-identical across array backends "
            "(default: auto)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print per-campaign progress"
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=tuple(LEVELS),
        help=(
            "progress-log threshold: 'debug' adds per-run records, "
            "'quiet' silences progress entirely (service mode); the "
            "default 'info' with --log-format plain reproduces the "
            "historical text output exactly (default: info)"
        ),
    )
    parser.add_argument(
        "--log-format",
        default="plain",
        choices=LOG_FORMATS,
        help=(
            "progress-log record format: 'plain' (historical text), "
            "'kv' (key=value pairs) or 'json' (one JSON object per "
            "line) (default: plain)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal every analysis campaign's completed runs to "
            "DIR/<bench>__<setup>.jsonl so an interrupted sweep can be "
            "resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the journals in --checkpoint-dir: already "
            "completed runs are loaded, not re-executed (the resumed "
            "results are bit-identical to an uninterrupted sweep)"
        ),
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-run wall-clock watchdog for --backend process: a run "
            "making no progress for this long is killed and retried "
            "(default: no watchdog)"
        ),
    )
    parser.add_argument(
        "--cycle-budget",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "abort any run exceeding this many simulated cycles "
            "(livelock guard; such failures are deterministic and "
            "never retried; default: unbounded)"
        ),
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "stop each analysis campaign as soon as the pWCET quantile "
            "is stable (streaming EVT convergence) instead of always "
            "simulating the scale's fixed run count; the executed "
            "sample is bit-identical to the fixed campaign's prefix"
        ),
    )
    parser.add_argument(
        "--pwcet-rtol",
        type=_rtol_arg,
        default=None,
        metavar="RTOL",
        help=(
            "adaptive convergence tolerance: stop once the pWCET "
            "quantile moves less than this relative amount for two "
            "consecutive waves (needs --adaptive; default: 0.005); "
            "the literal 'per-benchmark' selects each benchmark's "
            "preset tolerance instead"
        ),
    )
    parser.add_argument(
        "--min-runs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "never declare convergence before N runs (needs "
            "--adaptive; default: the smallest prefix the Gumbel fit "
            "and i.i.d. tests accept)"
        ),
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "adaptive run ceiling: stop at N runs even if not "
            "converged (needs --adaptive; default: the scale preset's "
            "fixed run count); --min-runs R --max-runs R reproduces a "
            "fixed-R campaign exactly"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "attribute simulated cycles and host wall time per platform "
            "component (L1s, bus, LLC, EFL, memory controller) and print "
            "the aggregate table; simulated results are unaffected"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="PREFIX",
        default=None,
        help="also write results as CSV files named PREFIX<experiment>.csv",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub_iid = subparsers.add_parser("iid", help="E1: MBPTA compliance (WW/KS tests)")
    sub_iid.add_argument("--mid", type=int, default=None,
                         help="EFL MID in cycles (default: the scale's EFL500 equivalent)")
    sub_iid.set_defaults(func=_cmd_iid)

    sub_fig3 = subparsers.add_parser("fig3", help="E2: normalised pWCET per setup")
    sub_fig3.set_defaults(func=_cmd_fig3)

    sub_fig4 = subparsers.add_parser("fig4", help="E3/E4: wgIPC/waIPC S-curves")
    sub_fig4.add_argument(
        "--no-average",
        action="store_true",
        help="skip the deployment co-runs (wgIPC curve only)",
    )
    sub_fig4.set_defaults(func=_cmd_fig4)

    sub_all = subparsers.add_parser("all", help="run every experiment")
    sub_all.add_argument("--mid", type=int, default=None, help="EFL MID for E1")
    sub_all.add_argument(
        "--no-average", action="store_true", help="skip deployment co-runs"
    )
    sub_all.set_defaults(func=_cmd_all)

    sub_submit = subparsers.add_parser(
        "submit",
        help=(
            "submit one campaign to the content-addressed result store: "
            "a byte-identical resubmission simulates zero runs and "
            "serves the stored sample"
        ),
    )
    sub_submit.add_argument(
        "--store", metavar="DIR", required=True,
        help="result-store directory (created if missing)",
    )
    sub_submit.add_argument(
        "--bench", required=True, choices=BENCHMARK_IDS,
        help="benchmark id to run",
    )
    sub_submit.add_argument(
        "--scenario", required=True, metavar="LABEL",
        help=(
            "scenario label: EFL<mid> (e.g. EFL500), CP<ways> "
            "(e.g. CP2 or CP1-2-2-3) or SHARED"
        ),
    )
    sub_submit.add_argument(
        "--runs", type=int, default=None, metavar="N",
        help="campaign runs (default: the scale preset's analysis runs)",
    )
    sub_submit.add_argument(
        "--json", action="store_true",
        help="print the full campaign result as JSON instead of the table",
    )
    sub_submit.add_argument(
        "--telemetry-dir", metavar="DIR", default=None,
        help=(
            "also write the submission's metrics (metrics.json) and "
            "trace spans (spans.json) to DIR"
        ),
    )
    sub_submit.set_defaults(func=_cmd_submit)

    sub_serve = subparsers.add_parser(
        "serve",
        help=(
            "run a durable campaign service pass: write-ahead job "
            "journal, admission control, store quota; rerun with "
            "--resume-jobs after a crash to recover bit-identically"
        ),
    )
    sub_serve.add_argument(
        "--journal", metavar="FILE", required=True,
        help="write-ahead job journal (created if missing)",
    )
    sub_serve.add_argument(
        "--store", metavar="DIR", required=True,
        help="result-store directory (created if missing)",
    )
    sub_serve.add_argument(
        "--resume-jobs", action="store_true",
        help=(
            "re-admit the journal's interrupted jobs before taking new "
            "work: completed-before-crash jobs answer from the store, "
            "mid-campaign jobs resume through their checkpoints"
        ),
    )
    sub_serve.add_argument(
        "--store-quota", metavar="SPEC", default=None,
        help=(
            "bound the store as bytes[:entries[:age]] with k/m/g and "
            "s/m/h/d suffixes (e.g. '100m:500:7d'; empty segment = "
            "unbounded); LRU entries past the quota are evicted"
        ),
    )
    sub_serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound queued jobs; submissions past it shed (queue_full)",
    )
    sub_serve.add_argument(
        "--queue-workers", type=int, default=1, metavar="N",
        help="queue worker threads (default: 1)",
    )
    sub_serve.add_argument(
        "--retry-budget", type=int, default=0, metavar="N",
        help=(
            "whole-job re-queues allowed after a transient campaign "
            "failure (default: 0)"
        ),
    )
    sub_serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "shed jobs still queued after this long (labelled "
            "'deadline'; default: no deadline)"
        ),
    )
    sub_serve.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help=(
            "open the circuit for a campaign fingerprint after N "
            "deterministic failures (default: breaker disabled)"
        ),
    )
    sub_serve.add_argument(
        "--bench", default=None, choices=BENCHMARK_IDS,
        help="also submit this benchmark (needs --scenario)",
    )
    sub_serve.add_argument(
        "--scenario", default=None, metavar="LABEL",
        help="scenario label for --bench (EFL<mid>, CP<ways> or SHARED)",
    )
    sub_serve.add_argument(
        "--runs", type=int, default=None, metavar="N",
        help="campaign runs (default: the scale preset's analysis runs)",
    )
    sub_serve.add_argument(
        "--json", action="store_true",
        help="print the final health() snapshot as JSON",
    )
    sub_serve.add_argument(
        "--telemetry-dir", metavar="DIR", default=None,
        help=(
            "also write the service's metrics (metrics.json) and trace "
            "spans (spans.json) to DIR"
        ),
    )
    sub_serve.set_defaults(func=_cmd_serve)

    sub_status = subparsers.add_parser(
        "status",
        help="list a result store's entries (integrity-verified)",
    )
    sub_status.add_argument(
        "--store", metavar="DIR", required=True,
        help="result-store directory to inspect",
    )
    sub_status.add_argument(
        "--job", metavar="ID", default=None,
        help=(
            "inspect one entry by job id (cached-<fingerprint>) or "
            "bare fingerprint"
        ),
    )
    sub_status.add_argument(
        "--json", action="store_true",
        help="print the store summary as JSON",
    )
    sub_status.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers <= 0:
        raise ConfigurationError(
            f"--workers must be a positive integer, got {args.workers}"
        )
    if args.backend == "process" and args.engine in ("batch", "sharded",
                                                     "kernel"):
        raise ConfigurationError(
            f"--backend process conflicts with --engine {args.engine}: the "
            f"process backend interprets runs one at a time, while the "
            f"{args.engine} engine dispatches its own lane shards; drop "
            f"--backend process (use --engine {args.engine} --workers N "
            f"for N shards)"
        )
    if args.engine == "scalar" and args.workers is not None \
            and args.backend != "process":
        raise ConfigurationError(
            "--workers with --engine scalar needs --backend process: the "
            "scalar engine has no shards, so worker processes only exist "
            "in the process backend's pool"
        )
    if args.resume and args.checkpoint_dir is None:
        raise ConfigurationError(
            "--resume needs --checkpoint-dir to know where the journals live"
        )
    if not args.adaptive:
        for flag, value in (("--pwcet-rtol", args.pwcet_rtol),
                            ("--min-runs", args.min_runs),
                            ("--max-runs", args.max_runs)):
            if value is not None:
                raise ConfigurationError(
                    f"{flag} only shapes an adaptive campaign's "
                    f"convergence policy; add --adaptive"
                )
    if args.adaptive and args.max_runs is not None \
            and getattr(args, "runs", None) is not None \
            and args.max_runs != args.runs:
        raise ConfigurationError(
            f"--max-runs {args.max_runs} conflicts with --runs "
            f"{args.runs}: an adaptive job's run budget is its "
            f"max_runs; pass just one of the two"
        )
    # Select the array namespace before any engine touches it: the
    # compiled plans and lane state allocate through the global ``xp``
    # seam, so the switch must precede the first campaign.
    set_array_backend(args.array_backend)
    if args.command in ("submit", "serve") and args.backend != "serial":
        raise ConfigurationError(
            f"{args.command} runs through the service's engine selection "
            f"and takes no --backend; use --engine/--workers to pick the "
            f"interpreter"
        )
    if args.command == "serve":
        if (args.bench is None) != (args.scenario is None):
            raise ConfigurationError(
                "serve needs --bench and --scenario together (or neither, "
                "to only recover journalled jobs)"
            )
        if args.bench is None and not args.resume_jobs:
            raise ConfigurationError(
                "serve with no --bench does nothing unless --resume-jobs "
                "re-admits journalled work"
            )
        if args.queue_workers <= 0:
            raise ConfigurationError(
                f"--queue-workers must be a positive integer, "
                f"got {args.queue_workers}"
            )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
