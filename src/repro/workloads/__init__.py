"""Workloads: benchmark kernels and workload composition.

The paper evaluates on 10 EEMBC Autobench benchmarks.  EEMBC is a
proprietary suite, so this package provides 10 synthetic kernels with
the cache/memory characteristics the paper describes for each
benchmark id (see DESIGN.md, substitution 1), plus the machinery to
compose random multi-task workloads from them.
"""

from repro.workloads.scale import ExperimentScale
from repro.workloads.suite import (
    BENCHMARK_IDS,
    BENCHMARK_NAMES,
    build_benchmark,
    build_all_benchmarks,
)
from repro.workloads.generator import random_workloads, relocate_trace

__all__ = [
    "ExperimentScale",
    "BENCHMARK_IDS",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "build_all_benchmarks",
    "random_workloads",
    "relocate_trace",
]
