"""Benchmark registry: ids, names and constructors.

Maps the paper's two-letter benchmark ids to the kernel constructors
in :mod:`repro.workloads.eembc` and provides the lookup helpers every
experiment driver uses.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cpu.trace import Trace
from repro.errors import ConfigurationError
from repro.workloads import eembc

#: id -> (EEMBC-style name, constructor) in the paper's Figure 3 order.
_REGISTRY: Dict[str, tuple] = {
    "ID": ("idctrn", eembc.build_idctrn),
    "MA": ("matrix", eembc.build_matrix),
    "CN": ("canrdr", eembc.build_canrdr),
    "AI": ("aifftr", eembc.build_aifftr),
    "CA": ("cacheb", eembc.build_cacheb),
    "PU": ("puwmod", eembc.build_puwmod),
    "RS": ("rspeed", eembc.build_rspeed),
    "II": ("iirflt", eembc.build_iirflt),
    "PN": ("pntrch", eembc.build_pntrch),
    "A2": ("a2time", eembc.build_a2time),
}

#: The ten benchmark ids, in registry order.
BENCHMARK_IDS = tuple(_REGISTRY.keys())

#: id -> EEMBC-style benchmark name.
BENCHMARK_NAMES = {bench_id: name for bench_id, (name, _fn) in _REGISTRY.items()}

#: The ids the paper classes as cache-space sensitive.
SENSITIVE_IDS = ("II", "PN", "A2")

#: The id whose input set does not fit in the LLC.
LLC_OVERFLOW_IDS = ("MA",)


def build_benchmark(bench_id: str, scale: float = 1.0) -> Trace:
    """Build the trace of one benchmark by id.

    >>> build_benchmark("RS", scale=0.1).name
    'RS'
    """
    try:
        _name, constructor = _REGISTRY[bench_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark id {bench_id!r}; choose from {BENCHMARK_IDS}"
        ) from None
    return constructor(scale)


def build_all_benchmarks(scale: float = 1.0) -> Dict[str, Trace]:
    """Build all ten benchmark traces at the given scale."""
    return {bench_id: build_benchmark(bench_id, scale) for bench_id in BENCHMARK_IDS}


def builder_for(bench_id: str) -> Callable[[float], Trace]:
    """Return the constructor of one benchmark (for lazy building)."""
    try:
        return _REGISTRY[bench_id][1]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark id {bench_id!r}; choose from {BENCHMARK_IDS}"
        ) from None
