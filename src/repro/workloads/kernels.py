"""Reusable access-pattern primitives for building benchmark kernels.

Each primitive emits a loop nest into a :class:`~repro.cpu.trace.TraceBuilder`
with a realistic PC structure (the loop body re-executes at the same
addresses) and a characteristic data-reference pattern:

* :func:`stream_pass` — sequential word-granular sweep (spatial
  locality: several accesses per cache line);
* :func:`strided_pass` — line-granular strided walk (defeats spatial
  locality; the classic column-walk of matrix code);
* :func:`blocked_pass` — tiled reuse (temporal locality within a
  block, as in IDCT/FFT butterflies);
* :func:`pointer_chase` — a permutation-cycle walk (dependent loads,
  no spatial locality at all);
* :func:`table_lookup_pass` — data-dependent indexed reads into a
  lookup table (angle-to-time style);
* :func:`compute_block` — pure arithmetic filler.

All index randomisation inside kernels is *program* behaviour, so it
uses a fixed-seed :class:`~repro.utils.rng.SplitMix64` — the same
"random" indices every run, exactly like a real benchmark binary.
"""

from __future__ import annotations

from typing import List

from repro.cpu.trace import TraceBuilder
from repro.errors import ConfigurationError
from repro.utils.rng import SplitMix64

#: word size used for element-granular accesses (bytes).
WORD_BYTES = 4


def scaled_count(count: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count, never below ``minimum``."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    return max(int(round(count * scale)), minimum)


def compute_block(builder: TraceBuilder, alus: int = 0, muls: int = 0) -> None:
    """Emit a pure-compute stretch (no memory traffic)."""
    if alus:
        builder.alu(alus)
    if muls:
        builder.mul(muls)


def stream_pass(
    builder: TraceBuilder,
    base: int,
    num_words: int,
    alus_per_access: int = 1,
    store_every: int = 0,
    word_stride: int = 1,
) -> None:
    """Sweep ``num_words`` consecutive words starting at ``base``.

    Each iteration loads one word, does ``alus_per_access`` ALU ops and
    branches back; every ``store_every``-th iteration also stores to
    the same word (0 disables stores).  With 16B lines and
    ``word_stride == 1`` this produces the ~75% spatial-hit pattern of
    real array code.
    """
    if num_words <= 0:
        raise ConfigurationError(f"num_words must be positive, got {num_words}")
    body = builder.loop_start()
    for index in range(num_words):
        address = base + index * WORD_BYTES * word_stride
        builder.load(address)
        if alus_per_access:
            builder.alu(alus_per_access)
        if store_every and index % store_every == store_every - 1:
            builder.store(address)
        builder.branch(back_to=body if index < num_words - 1 else None)


def strided_pass(
    builder: TraceBuilder,
    base: int,
    num_accesses: int,
    stride_bytes: int,
    alus_per_access: int = 1,
    store: bool = False,
) -> None:
    """Walk ``num_accesses`` addresses ``stride_bytes`` apart.

    With a stride of one line or more, every access touches a new
    line — the pattern that exposes cache capacity and associativity.
    """
    if num_accesses <= 0:
        raise ConfigurationError(f"num_accesses must be positive, got {num_accesses}")
    if stride_bytes <= 0:
        raise ConfigurationError(f"stride_bytes must be positive, got {stride_bytes}")
    body = builder.loop_start()
    for index in range(num_accesses):
        address = base + index * stride_bytes
        if store:
            builder.store(address)
        else:
            builder.load(address)
        if alus_per_access:
            builder.alu(alus_per_access)
        builder.branch(back_to=body if index < num_accesses - 1 else None)


def blocked_pass(
    builder: TraceBuilder,
    base: int,
    block_words: int,
    num_blocks: int,
    reuse: int,
    alus_per_access: int = 1,
    store_last_sweep: bool = False,
) -> None:
    """Process ``num_blocks`` tiles, sweeping each tile ``reuse`` times.

    Models tiled algorithms (IDCT blocks, FFT butterfly groups): high
    temporal locality inside a tile, streaming across tiles.
    """
    if min(block_words, num_blocks, reuse) <= 0:
        raise ConfigurationError("block_words, num_blocks and reuse must be positive")
    block_bytes = block_words * WORD_BYTES
    for block in range(num_blocks):
        block_base = base + block * block_bytes
        for sweep in range(reuse):
            is_last = sweep == reuse - 1
            body = builder.loop_start()
            for index in range(block_words):
                address = block_base + index * WORD_BYTES
                if store_last_sweep and is_last:
                    builder.store(address)
                else:
                    builder.load(address)
                if alus_per_access:
                    builder.alu(alus_per_access)
                builder.branch(back_to=body if index < block_words - 1 else None)


def make_permutation(length: int, seed: int) -> List[int]:
    """Deterministic pseudo-random permutation (Fisher-Yates).

    One full cycle is forced (the permutation is built over a shuffled
    ring), so a pointer chase visits every element before repeating.
    """
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    order = list(range(length))
    rng = SplitMix64(seed)
    for i in range(length - 1, 0, -1):
        j = rng.next_u64() % (i + 1)
        order[i], order[j] = order[j], order[i]
    successor = [0] * length
    for position in range(length):
        successor[order[position]] = order[(position + 1) % length]
    return successor


def pointer_chase(
    builder: TraceBuilder,
    base: int,
    num_nodes: int,
    node_bytes: int,
    steps: int,
    seed: int,
    alus_per_step: int = 1,
) -> None:
    """Chase ``steps`` pointers through a ``num_nodes``-node shuffled ring.

    Every step loads a different node (no spatial locality, reuse
    distance ~ ``num_nodes``); the canonical cache-capacity-sensitive
    pattern.
    """
    if min(num_nodes, node_bytes, steps) <= 0:
        raise ConfigurationError("num_nodes, node_bytes and steps must be positive")
    successor = make_permutation(num_nodes, seed)
    node = 0
    body = builder.loop_start()
    for step in range(steps):
        builder.load(base + node * node_bytes)
        if alus_per_step:
            builder.alu(alus_per_step)
        builder.branch(back_to=body if step < steps - 1 else None)
        node = successor[node]


def table_lookup_pass(
    builder: TraceBuilder,
    table_base: int,
    table_words: int,
    lookups: int,
    seed: int,
    alus_per_lookup: int = 2,
    muls_per_lookup: int = 0,
) -> None:
    """Perform ``lookups`` data-dependent reads into a lookup table.

    Indices are a fixed pseudo-random sequence (program-deterministic),
    modelling trigonometric/calibration table lookups whose index
    depends on sensor input.
    """
    if min(table_words, lookups) <= 0:
        raise ConfigurationError("table_words and lookups must be positive")
    rng = SplitMix64(seed)
    body = builder.loop_start()
    for lookup in range(lookups):
        index = rng.next_u64() % table_words
        builder.load(table_base + index * WORD_BYTES)
        if alus_per_lookup:
            builder.alu(alus_per_lookup)
        if muls_per_lookup:
            builder.mul(muls_per_lookup)
        builder.branch(back_to=body if lookup < lookups - 1 else None)
