"""Random workload composition (the paper's 1,024 4-benchmark workloads).

For the Figure 4 experiments the paper runs "1,024 4-benchmark
workloads composed of randomly selected Autobench benchmarks".  This
module generates such workloads reproducibly and relocates duplicate
benchmark instances so that two copies of the same program on
different cores own distinct data regions (separate processes have
separate physical pages).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cpu.trace import Trace
from repro.errors import ConfigurationError
from repro.utils.rng import SplitMix64
from repro.workloads.suite import BENCHMARK_IDS, build_benchmark

#: relocation distance applied per duplicate copy: far beyond any
#: kernel's own data region.
_RELOCATION_STRIDE = 0x4000_0000


def random_workloads(
    count: int,
    tasks_per_workload: int = 4,
    seed: int = 0,
    bench_ids: Optional[Sequence[str]] = None,
) -> List[Tuple[str, ...]]:
    """Generate ``count`` workloads of ``tasks_per_workload`` benchmark ids.

    Sampling is uniform with replacement (a workload may contain the
    same benchmark twice, as the paper's random selection allows);
    duplicated instances are relocated by :func:`build_workload_traces`.

    >>> random_workloads(2, seed=1) == random_workloads(2, seed=1)
    True
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    if tasks_per_workload <= 0:
        raise ConfigurationError(
            f"tasks_per_workload must be positive, got {tasks_per_workload}"
        )
    pool = tuple(bench_ids) if bench_ids is not None else BENCHMARK_IDS
    if not pool:
        raise ConfigurationError("benchmark pool is empty")
    rng = SplitMix64(seed)
    return [
        tuple(pool[rng.next_u64() % len(pool)] for _ in range(tasks_per_workload))
        for _ in range(count)
    ]


def relocate_trace(trace: Trace, offset: int, copy_tag: str = "") -> Trace:
    """Return a copy of ``trace`` with code and data shifted by ``offset``.

    Models a second process image of the same binary loaded at a
    different physical location.  The dynamic behaviour (reuse
    distances, footprint sizes) is untouched.
    """
    if offset < 0:
        raise ConfigurationError(f"relocation offset must be non-negative, got {offset}")
    name = f"{trace.name}{copy_tag}" if copy_tag else trace.name
    return Trace(
        name,
        [pc + offset for pc in trace.pcs],
        list(trace.kinds),
        [addr + offset if addr is not None else None for addr in trace.addresses],
    )


def build_workload_traces(
    workload: Sequence[str],
    scale: float = 1.0,
    trace_cache: Optional[dict] = None,
) -> List[Trace]:
    """Materialise the traces of one workload, relocating duplicates.

    ``trace_cache`` (id -> Trace) avoids rebuilding kernels across the
    hundreds of workloads of a Figure 4 campaign; pass a shared dict.
    """
    if not workload:
        raise ConfigurationError("workload is empty")
    traces: List[Trace] = []
    seen: dict = {}
    for bench_id in workload:
        if trace_cache is not None and bench_id in trace_cache:
            base = trace_cache[bench_id]
        else:
            base = build_benchmark(bench_id, scale)
            if trace_cache is not None:
                trace_cache[bench_id] = base
        copy_index = seen.get(bench_id, 0)
        seen[bench_id] = copy_index + 1
        if copy_index == 0:
            traces.append(base)
        else:
            traces.append(
                relocate_trace(
                    base, copy_index * _RELOCATION_STRIDE, copy_tag=f"#{copy_index}"
                )
            )
    return traces
