"""Experiment scale presets: proportionally shrunk platforms.

The paper's campaign (EEMBC benchmarks of millions of instructions,
up to 1,000 runs per estimate, 1,024 workloads) ran on a fast native
simulator.  A pure-Python reproduction must scale down — but naive
trace shortening distorts the physics: cold-start misses stop being
amortised and EFL's analysis-time eviction delays swamp the
steady-state behaviour where its advantage over cache partitioning
lives.

The honest scaling, implemented here, shrinks *everything that has
units of bytes or per-run cycles* by one factor ``s`` while keeping
every dimensionless quantity fixed:

* cache sizes scale by ``s`` (same line size, same associativities,
  sets scale by ``s`` — so footprint/capacity load factors and
  lines-per-set statistics are unchanged);
* kernel footprints scale by ``s`` (via ``trace_scale``), iteration
  *counts* (sweeps) stay constant — so the cold/steady-state balance
  is unchanged;
* MID values do **not** scale: MID is a hardware design parameter in
  cycles, and no latency (memory, LLC, bus) scales either.  This keeps
  the two quantities that drive the EFL-versus-CP comparison
  scale-invariant: the probability that a cached line is killed by
  forced co-runner evictions before its reuse
  (``3 * reuse_interval_cycles / (MID * llc_frames)`` — both the
  interval and the frame count scale by ``s``, cancelling), and the
  EFL self-stall per miss (a pure cycles-vs-cycles comparison).

``REPRO_SCALE=paper`` selects the unscaled platform (the paper's 4KB
L1s / 64KB LLC and MID in {250, 500, 1000}), for a long unattended
campaign.  EXPERIMENTS.md records which preset produced each number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

#: The MID values the paper studies, at full platform scale.
PAPER_MIDS = (250, 500, 1000)


@dataclass(frozen=True)
class ExperimentScale:
    """All scale knobs of a reproduction campaign.

    Attributes
    ----------
    name:
        Preset label recorded in reports.
    platform_factor:
        The shrink factor ``s`` relative to the paper's platform.
    trace_scale:
        Multiplier on each kernel's footprint (and footprint-coupled
        step counts); equals ``platform_factor`` in every preset.
    l1_size, llc_size:
        Scaled cache sizes in bytes (associativities and the 16B line
        are fixed, so set counts scale with ``s``).
    mid_options:
        The MID values to sweep (the paper's 250/500/1000 at every
        preset — MID does not scale, see the module docstring).
    analysis_runs:
        Runs per (benchmark, scenario) pWCET estimate (paper: <= 1000).
    workload_count:
        Number of random 4-benchmark workloads for Figure 4
        (paper: 1024).
    deployment_reps:
        Co-running repetitions per workload when measuring average IPC.
    block_size:
        Block size of the block-maxima Gumbel fit, scaled with the run
        count so every preset yields enough blocks.
    """

    name: str
    platform_factor: float
    trace_scale: float
    l1_size: int
    llc_size: int
    mid_options: Tuple[int, ...]
    analysis_runs: int
    workload_count: int
    deployment_reps: int
    block_size: int

    def __post_init__(self) -> None:
        if self.trace_scale <= 0 or self.platform_factor <= 0:
            raise ConfigurationError("scale factors must be positive")
        if self.analysis_runs < 2 * self.block_size:
            raise ConfigurationError(
                f"{self.analysis_runs} runs cannot form two blocks of "
                f"{self.block_size}"
            )
        if self.workload_count <= 0 or self.deployment_reps <= 0:
            raise ConfigurationError("workload_count/deployment_reps must be positive")
        if not self.mid_options or any(m <= 0 for m in self.mid_options):
            raise ConfigurationError("mid_options must be positive")

    def system_config(self, **overrides):
        """The scaled platform as a :class:`~repro.sim.config.SystemConfig`.

        Everything except the cache sizes keeps the paper's values
        (latencies are per-event, so they need no scaling).  Keyword
        overrides pass through (e.g. ``replacement="lru"`` for
        ablations).
        """
        from repro.sim.config import SystemConfig

        params = dict(l1_size=self.l1_size, llc_size=self.llc_size)
        params.update(overrides)
        return SystemConfig(**params)

    def paper_mid_label(self, mid: int) -> str:
        """Map one of this scale's MID options to the paper's label.

        >>> ExperimentScale.default().paper_mid_label(250)
        'EFL250'
        """
        try:
            index = self.mid_options.index(mid)
        except ValueError:
            raise ConfigurationError(
                f"{mid} is not one of this scale's MID options {self.mid_options}"
            ) from None
        return f"EFL{PAPER_MIDS[index]}"

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Smoke-test scale (1/16 platform): seconds, indicative only."""
        return cls("tiny", platform_factor=0.0625, trace_scale=0.0625,
                   l1_size=256, llc_size=4096, mid_options=PAPER_MIDS,
                   analysis_runs=40, workload_count=8, deployment_reps=1,
                   block_size=8)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Example/demo scale (1/8 platform): a few minutes end to end."""
        return cls("quick", platform_factor=0.125, trace_scale=0.125,
                   l1_size=512, llc_size=8192, mid_options=PAPER_MIDS,
                   analysis_runs=80, workload_count=24, deployment_reps=1,
                   block_size=10)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Benchmark-harness scale (1/4 platform): tens of minutes."""
        return cls("default", platform_factor=0.25, trace_scale=0.25,
                   l1_size=1024, llc_size=16384, mid_options=PAPER_MIDS,
                   analysis_runs=240, workload_count=64, deployment_reps=1,
                   block_size=20)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's platform and campaign sizes: days in pure Python."""
        return cls("paper", platform_factor=1.0, trace_scale=1.0,
                   l1_size=4096, llc_size=65536, mid_options=PAPER_MIDS,
                   analysis_runs=1000, workload_count=1024, deployment_reps=3,
                   block_size=25)

    @classmethod
    def from_name(cls, name: str) -> "ExperimentScale":
        """Look a preset up by name."""
        presets = {
            "tiny": cls.tiny,
            "quick": cls.quick,
            "default": cls.default,
            "paper": cls.paper,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scale {name!r}; choose from {sorted(presets)}"
            ) from None

    @classmethod
    def from_env(cls, fallback: str = "default") -> "ExperimentScale":
        """Read the ``REPRO_SCALE`` environment variable (or fallback)."""
        return cls.from_name(os.environ.get("REPRO_SCALE", fallback))
