"""The 10 EEMBC-Autobench-like benchmark kernels.

The paper evaluates 10 benchmarks from EEMBC Autobench, identified by
two-letter ids: ``ID, MA, CN, AI, CA, PU, RS, II, PN, A2`` (§4.2).
EEMBC is proprietary, so these kernels are synthetic reconstructions
that reproduce the *cache behaviour classes* the paper reports:

* ``ID, CN, AI, CA, PU, RS`` — "relatively insensitive to cache space
  as long as they are given at least 2 ways" (1/4 of the LLC):
  working sets of ~4-16% of the LLC, comfortably inside a 2-way
  partition but suffering in a 1-way one;
* ``MA`` — "a benchmark most of whose input set does not fit in LLC":
  a footprint of 2x the LLC, so most LLC accesses miss and EFL's
  eviction delays land on nearly every access (low MID mitigates);
* ``II, PN, A2`` — "more sensitive to cache space": working sets of
  ~20% of the LLC that churn a 2-way partition hard (capacity *and*
  2-way associativity against random placement), need a 4-way one,
  and are most comfortable in the full 8-way (EFL) LLC.

Footprints are expressed at the paper's platform scale (64KB LLC) and
multiply by the :class:`~repro.workloads.scale.ExperimentScale` trace
factor, which shrinks the platform by the same factor — so the
footprint/capacity ratios above hold at every scale.  Iteration
(sweep) counts are scale-independent: they set the cold-start versus
steady-state balance, which must not change with scale.

Each kernel's data region and code region are disjoint from every
other kernel's, as separate binaries' address spaces would be.
"""

from __future__ import annotations

from repro.cpu.trace import Trace, TraceBuilder
from repro.workloads import kernels as k

#: bytes between consecutive kernels' code regions.
_CODE_REGION = 0x0010_0000
#: first data address; kernels are spaced _DATA_REGION apart.
_DATA_BASE = 0x1000_0000
_DATA_REGION = 0x0100_0000


def _bases(index: int) -> tuple:
    """Code and data base addresses of kernel number ``index``."""
    return index * _CODE_REGION + 0x1000, _DATA_BASE + index * _DATA_REGION


def build_idctrn(scale: float = 1.0) -> Trace:
    """``ID`` — inverse DCT: tiled 8x8 blocks with intra-block reuse.

    12KB footprint (~19% of the LLC) in 256B tiles, each swept twice
    per visit, three visits overall.  Insensitive beyond 2 ways.
    """
    code, data = _bases(0)
    builder = TraceBuilder("ID", code_base=code)
    num_blocks = k.scaled_count(48, scale, minimum=4)  # 12KB of 256B tiles
    k.compute_block(builder, alus=12, muls=2)
    for _visit in range(3):
        k.blocked_pass(
            builder,
            base=data,
            block_words=64,
            num_blocks=num_blocks,
            reuse=2,
            alus_per_access=1,
            store_last_sweep=True,
        )
    return builder.build()


def build_matrix(scale: float = 1.0) -> Trace:
    """``MA`` — matrix arithmetic whose input does not fit in the LLC.

    A 128KB matrix (2x the LLC) walked row-wise then column-wise at
    line stride, twice: nearly every access misses the L1 and most
    miss the LLC, so EFL's inter-eviction delays land on almost every
    access (the paper notes low MID values mitigate this).
    """
    code, data = _bases(1)
    builder = TraceBuilder("MA", code_base=code)
    lines = k.scaled_count(8192, scale, minimum=64)  # 128KB at paper scale
    for _round in range(2):
        k.strided_pass(builder, base=data, num_accesses=lines, stride_bytes=16,
                       alus_per_access=1)
        k.strided_pass(builder, base=data, num_accesses=lines // 2,
                       stride_bytes=32, alus_per_access=1, store=True)
    return builder.build()


def build_canrdr(scale: float = 1.0) -> Trace:
    """``CN`` — CAN message processing over an 8KB circular buffer.

    Ten streaming sweeps (~12% of the LLC) with moderate compute;
    insensitive beyond 2 ways.
    """
    code, data = _bases(2)
    builder = TraceBuilder("CN", code_base=code)
    words = k.scaled_count(2048, scale, minimum=64)  # 8KB at paper scale
    for _sweep in range(10):
        k.stream_pass(builder, base=data, num_words=words, alus_per_access=2,
                      store_every=8)
        k.compute_block(builder, alus=24)
    return builder.build()


def build_aifftr(scale: float = 1.0) -> Trace:
    """``AI`` — FFT-style passes over 12KB with doubling strides.

    Four rounds of butterfly-like reference patterns (~19% of the
    LLC): one sequential pass plus strided passes at 2/4/8 words.
    Insensitive beyond 2 ways.
    """
    code, data = _bases(3)
    builder = TraceBuilder("AI", code_base=code)
    words = k.scaled_count(3072, scale, minimum=64)  # 12KB at paper scale
    for _round in range(4):
        k.stream_pass(builder, base=data, num_words=words, alus_per_access=1)
        for stride_words in (2, 4, 8):
            k.strided_pass(
                builder,
                base=data,
                num_accesses=max(words // stride_words, 1),
                stride_bytes=stride_words * k.WORD_BYTES,
                alus_per_access=2,
            )
    return builder.build()


def build_cacheb(scale: float = 1.0) -> Trace:
    """``CA`` — cache buster: line-strided store walks over 12KB.

    Sixteen line-granular passes alternating loads and stores over
    ~19% of the LLC: low compute, store-heavy (the A2 ablation's
    write-back workhorse).  Insensitive beyond 2 ways.
    """
    code, data = _bases(4)
    builder = TraceBuilder("CA", code_base=code)
    lines = k.scaled_count(768, scale, minimum=32)  # 12KB at paper scale
    for sweep in range(16):
        k.strided_pass(builder, base=data, num_accesses=lines, stride_bytes=16,
                       alus_per_access=1, store=sweep % 2 == 1)
    return builder.build()


def build_puwmod(scale: float = 1.0) -> Trace:
    """``PU`` — pulse-width modulation: 1KB of state, compute-heavy.

    Fits a quarter of the L1 after warm-up; nearly LLC-insensitive
    altogether.
    """
    code, data = _bases(5)
    builder = TraceBuilder("PU", code_base=code)
    words = k.scaled_count(256, scale, minimum=32)  # 1KB at paper scale
    for _sweep in range(24):
        k.stream_pass(builder, base=data, num_words=words, alus_per_access=1,
                      store_every=4)
        k.compute_block(builder, alus=16, muls=8)
    return builder.build()


def build_rspeed(scale: float = 1.0) -> Trace:
    """``RS`` — road-speed calculation: 1KB, L1-resident.

    The least memory-bound kernel; insensitive to everything the LLC
    does.
    """
    code, data = _bases(6)
    builder = TraceBuilder("RS", code_base=code)
    words = k.scaled_count(256, scale, minimum=32)  # 1KB at paper scale
    for _sweep in range(28):
        k.stream_pass(builder, base=data, num_words=words, alus_per_access=2)
    return builder.build()


def build_iirflt(scale: float = 1.0) -> Trace:
    """``II`` — IIR filter: 14KB working set (8KB coefficients + 6KB state).

    The coefficient array is re-swept for every sample block, so the
    kernel is fast only when the whole working set stays cached.  At
    ~0.9x the size of a 2-way partition (and only 2-way associative
    against random placement) CP2 churns hard on it; a 4-way
    partition copes; EFL's full 8-way LLC holds it comfortably.
    """
    code, data = _bases(7)
    builder = TraceBuilder("II", code_base=code)
    coeff_words = k.scaled_count(2048, scale, minimum=64)  # 8KB at paper scale
    state_words = k.scaled_count(1536, scale, minimum=64)  # 6KB at paper scale
    state_base = data + 0x8_0000
    for _block in range(5):
        k.stream_pass(builder, base=data, num_words=coeff_words, alus_per_access=1)
        k.stream_pass(builder, base=state_base, num_words=state_words,
                      alus_per_access=1, store_every=4)
    return builder.build()


def build_pntrch(scale: float = 1.0) -> Trace:
    """``PN`` — pointer chase through a 13KB shuffled ring.

    Dependent loads, one line per node, no spatial locality: the
    classic capacity/associativity-sensitive kernel.  Ten laps of a
    ring ~0.8x the size of a 2-way partition: CP2 churns on it
    (random placement leaves a fifth of the nodes in overflowing
    sets), CP1 thrashes outright, and EFL's full 8-way LLC holds it.
    """
    code, data = _bases(8)
    builder = TraceBuilder("PN", code_base=code)
    nodes = k.scaled_count(832, scale, minimum=32)  # 13KB of 16B nodes
    steps = k.scaled_count(8320, scale, minimum=64)  # ten laps of the ring
    k.pointer_chase(builder, base=data, num_nodes=nodes, node_bytes=16,
                    steps=steps, seed=0x504E, alus_per_step=1)
    return builder.build()


def build_a2time(scale: float = 1.0) -> Trace:
    """``A2`` — angle-to-time conversion: random lookups in a 14KB table.

    Data-dependent table indices spread across ~22% of the LLC; the
    table churns a 2-way partition badly (capacity and associativity)
    and keeps only a precarious foothold in a 1-way one, while EFL's
    full shared LLC serves it well — the paper singles out A2 as a
    benchmark where EFL's gIPC is a multiple of CP's.
    """
    code, data = _bases(9)
    builder = TraceBuilder("A2", code_base=code)
    table_words = k.scaled_count(3584, scale, minimum=64)  # 14KB at paper scale
    lookups = k.scaled_count(10752, scale, minimum=64)  # ~12 touches per line
    k.table_lookup_pass(builder, table_base=data, table_words=table_words,
                        lookups=lookups, seed=0xA2, alus_per_lookup=1,
                        muls_per_lookup=0)
    return builder.build()
