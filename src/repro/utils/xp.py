"""Array-backend seam: one switchable namespace for lane-state arrays.

The batch and kernel engines keep every lane's state in
struct-of-arrays form (cache tag planes, pipeline time vectors, PRNG
state vectors).  All of that state is *allocated* through the ``xp``
namespace exported here instead of ``numpy`` directly, which is the
whole seam a GPU lane backend needs:

* **Allocation** goes through ``xp`` — ``xp.zeros`` / ``xp.empty`` /
  ``xp.arange`` / ... resolve to the active backend (NumPy by default,
  CuPy when selected and importable).
* **Compute** stays written against the ``numpy`` API.  CuPy arrays
  implement the NEP-13/NEP-18 dispatch protocols
  (``__array_ufunc__`` / ``__array_function__``), so ``np.maximum(a,
  b, out=c)``, ``np.add``, fancy indexing and reductions on
  CuPy-allocated state execute on the device without the call sites
  changing.  Routing allocation is therefore sufficient to move the
  whole SoA sweep.

Backend selection is process-global and explicit
(:func:`set_array_backend`, the CLI's ``--array-backend`` flag):

* ``numpy`` — always available, the default.
* ``cupy`` — demanded; a labelled
  :class:`~repro.errors.ConfigurationError` if CuPy is missing or has
  no usable device.
* ``auto`` — CuPy when the probe succeeds, NumPy otherwise (the same
  silent-degrade contract as the numba kernel probe).

The bit-identity contract is unchanged by the seam: both backends
implement identical integer arithmetic, and every test asserting
engine equivalence runs against whatever backend is active.
"""

from __future__ import annotations

from typing import Optional

import numpy

from repro.errors import ConfigurationError

#: Backend names accepted by :func:`set_array_backend` and the CLI's
#: ``--array-backend`` flag.
ARRAY_BACKEND_NAMES = ("auto", "numpy", "cupy")

_CUPY_PROBED = False
_CUPY_MODULE = None


def _probe_cupy():
    """The CuPy module if importable with a usable device, else None.

    Mirrors the numba probe in :mod:`repro.sim.kernels`: any failure —
    missing package, no device, broken runtime — degrades silently to
    NumPy; the probe result is cached for the process lifetime.
    """
    global _CUPY_PROBED, _CUPY_MODULE
    if not _CUPY_PROBED:
        _CUPY_PROBED = True
        try:  # pragma: no cover — cupy not installed in CI
            import cupy  # type: ignore

            cupy.zeros(1)  # forces a device allocation; raises without one
            _CUPY_MODULE = cupy
        except Exception:
            _CUPY_MODULE = None
    return _CUPY_MODULE


def cupy_available() -> bool:
    """Whether the optional CuPy backend probes successfully."""
    return _probe_cupy() is not None


class _ArrayNamespace:
    """Attribute proxy over the active array module.

    ``xp.zeros`` / ``xp.empty`` / ... resolve through one indirection
    to the selected backend module.  Hot paths that allocate in a loop
    can bind ``xp.module`` once and use it directly — the proxy and
    the module expose the same names.
    """

    __slots__ = ("_module", "_name")

    def __init__(self) -> None:
        self._module = numpy
        self._name = "numpy"

    def __getattr__(self, name: str):
        return getattr(self._module, name)

    @property
    def module(self):
        """The active backend module itself (``numpy`` or ``cupy``)."""
        return self._module

    @property
    def name(self) -> str:
        """Active backend name: ``"numpy"`` or ``"cupy"``."""
        return self._name

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"<xp backend={self._name}>"


#: The process-global array namespace every lane-state allocation uses.
xp = _ArrayNamespace()


def set_array_backend(name: str) -> str:
    """Select the array backend; returns the name actually active.

    ``auto`` probes CuPy and falls back to NumPy silently; ``cupy``
    demands it and raises a labelled
    :class:`~repro.errors.ConfigurationError` when unavailable, so a
    GPU campaign never silently runs on the CPU.
    """
    if name not in ARRAY_BACKEND_NAMES:
        names = ", ".join(ARRAY_BACKEND_NAMES)
        raise ConfigurationError(
            f"unknown array backend {name!r}; expected one of {names}"
        )
    if name == "numpy":
        xp._module = numpy
        xp._name = "numpy"
    elif name == "cupy":
        module = _probe_cupy()
        if module is None:
            raise ConfigurationError(
                "array backend 'cupy' requested but CuPy is not importable "
                "(or has no usable device); install cupy or use "
                "--array-backend auto to fall back to numpy"
            )
        xp._module = module  # pragma: no cover — cupy not installed in CI
        xp._name = "cupy"  # pragma: no cover
    else:  # auto
        module = _probe_cupy()
        if module is None:
            xp._module = numpy
            xp._name = "numpy"
        else:  # pragma: no cover — cupy not installed in CI
            xp._module = module
            xp._name = "cupy"
    return xp._name


def array_backend_name() -> str:
    """Name of the active array backend (``"numpy"`` / ``"cupy"``)."""
    return xp._name
