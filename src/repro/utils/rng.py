"""Pseudo-random number generators used by the simulated hardware.

The paper's EFL access control unit uses a Multiply-With-Carry (MWC)
PRNG (Marsaglia & Zaman, 1991) because it is cheap in hardware, has a
huge period and good statistical quality.  We implement the classic
32-bit lag-1 MWC here and use it for *every* random decision the
simulated hardware takes: random replacement victims, random placement
RIIs, random bus arbitration and the EFL count-down counter draws.

For deriving independent seeds for the many PRNG instances in a system
(one per cache, per ACU, per bus...) we use SplitMix64, a standard
seed-sequence generator; it is part of the *simulation harness*, not of
the modelled hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.xp import xp

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Marsaglia's multiplier for the 32-bit MWC generator.  With this
#: multiplier the generator has period a*2^31 - 1 ~ 1.5e18, far beyond
#: anything a simulation campaign consumes.
MWC_MULTIPLIER = 698769069


class MultiplyWithCarry:
    """32-bit lag-1 Multiply-With-Carry PRNG.

    State is a pair ``(x, c)`` of 32-bit value and carry.  Each step
    computes ``t = a*x + c``; the new value is ``t mod 2**32`` and the
    new carry is ``t >> 32``.  This is exactly the construction the
    paper cites ([21]) and notes can produce 32 random bits per cycle in
    hardware.

    Parameters
    ----------
    seed:
        Any non-negative integer.  It is whitened through SplitMix64 so
        that consecutive small seeds yield uncorrelated streams.

    Examples
    --------
    >>> rng = MultiplyWithCarry(42)
    >>> 0 <= rng.next_u32() <= 0xFFFFFFFF
    True
    >>> rng2 = MultiplyWithCarry(42)
    >>> [rng2.next_u32() for _ in range(3)] == [MultiplyWithCarry(42).next_u32() for _ in range(3)]
    False
    """

    __slots__ = ("_x", "_c")

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ConfigurationError(f"PRNG seed must be non-negative, got {seed}")
        mixer = SplitMix64(seed)
        # Both halves of the state must be non-degenerate: x == 0 with
        # c == 0 is the fixed point of the recurrence.
        x = mixer.next_u64() & _MASK32
        c = mixer.next_u64() % (MWC_MULTIPLIER - 1)
        if x == 0 and c == 0:
            x = 1
        self._x = x
        self._c = c

    def next_u32(self) -> int:
        """Return the next 32-bit unsigned random value."""
        t = MWC_MULTIPLIER * self._x + self._c
        self._x = t & _MASK32
        self._c = t >> 32
        return self._x

    def randrange(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)``.

        Uses rejection sampling to avoid modulo bias; the rejection
        probability is below 2**-16 for every ``n`` this library uses,
        so the expected cost is a single draw.
        """
        if n <= 0:
            raise ConfigurationError(f"randrange() bound must be positive, got {n}")
        limit = (0x100000000 // n) * n
        while True:
            v = self.next_u32()
            if v < limit:
                return v % n

    def randint_inclusive(self, lo: int, hi: int) -> int:
        """Return a uniform integer in ``[lo, hi]`` (both inclusive).

        This is the draw EFL's count-down counter performs: a value in
        ``[0, 2*MID]`` inclusive, so that the *average* inter-eviction
        delay equals the desired MID.
        """
        if hi < lo:
            raise ConfigurationError(f"empty range [{lo}, {hi}]")
        return lo + self.randrange(hi - lo + 1)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 32 bits of entropy."""
        return self.next_u32() / 4294967296.0

    def state(self) -> tuple:
        """Return the internal ``(x, carry)`` state (for tests)."""
        return (self._x, self._c)


class SplitMix64:
    """SplitMix64 sequence generator used to derive independent seeds.

    This is the standard seed-expansion function from Steele et al.;
    two SplitMix64 streams started from different 64-bit seeds are, for
    practical purposes, independent.  It is used by the simulation
    harness to give every hardware PRNG instance its own seed and to
    derive per-run seeds in campaigns.
    """

    __slots__ = ("_state",)

    GOLDEN_GAMMA = 0x9E3779B97F4A7C15

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ConfigurationError(f"PRNG seed must be non-negative, got {seed}")
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned random value."""
        self._state = (self._state + self.GOLDEN_GAMMA) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def next_u32(self) -> int:
        """Return the next 32-bit unsigned random value."""
        return self.next_u64() >> 32


def splitmix64_mix(z: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser over a ``uint64`` array.

    Bit-identical to the scalar mixer inside
    :meth:`SplitMix64.next_u64` (and to
    :func:`repro.utils.hashing._mix64`): ``uint64`` arithmetic wraps
    modulo 2**64 exactly like the masked Python-int version.
    """
    z = xp.asarray(z, dtype=np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def splitmix64_draw(seeds: np.ndarray, k: int) -> np.ndarray:
    """The ``k``-th ``next_u64()`` of ``SplitMix64(seed)``, per lane.

    SplitMix64 is a counter-based generator: its ``k``-th output
    (1-based) is ``mix(seed + k * GOLDEN_GAMMA)``, so any draw of any
    stream is computable directly, without materialising the ones
    before it.  The batch engine uses this to reproduce
    :func:`repro.sim.platform.build_platform`'s seed-draw schedule for
    a whole campaign at once, touching only the draws the analysed
    core actually needs.
    """
    if k < 1:
        raise ConfigurationError(f"SplitMix64 draws are 1-based, got draw {k}")
    seeds = xp.asarray(seeds, dtype=np.uint64)
    return splitmix64_mix(seeds + np.uint64((k * SplitMix64.GOLDEN_GAMMA) & _MASK64))


class MWCArray:
    """Vectorised :class:`MultiplyWithCarry`: one stream per lane.

    Lane ``i`` is bit-identical to ``MultiplyWithCarry(seeds[i])``:
    the same SplitMix64 seed whitening, the same degenerate-state
    repair, the same ``t = a*x + c`` step (``t < 2**63``, so ``uint64``
    never wraps) and the same rejection-sampled range reduction.  Every
    drawing method takes an optional boolean ``mask``; lanes outside
    the mask consume nothing — their state is untouched — which is how
    the batch engine keeps per-lane draw sequences identical to the
    scalar engine even when lanes diverge (some miss, some hit).
    """

    __slots__ = ("_x", "_c")

    def __init__(self, seeds: np.ndarray) -> None:
        seeds = xp.asarray(seeds, dtype=np.uint64)
        x = splitmix64_draw(seeds, 1) & np.uint64(_MASK32)
        c = splitmix64_draw(seeds, 2) % np.uint64(MWC_MULTIPLIER - 1)
        x[(x == np.uint64(0)) & (c == np.uint64(0))] = np.uint64(1)
        self._x = x
        self._c = c

    @property
    def lanes(self) -> int:
        """Number of independent streams."""
        return self._x.shape[0]

    def next_u32(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance the masked lanes one step; return the lane values.

        The returned array is the internal value vector: masked lanes
        hold their fresh draw, unmasked lanes their *previous* value
        (callers must only read masked lanes).
        """
        t = np.uint64(MWC_MULTIPLIER) * self._x + self._c
        if mask is None:
            self._x = t & np.uint64(_MASK32)
            self._c = t >> np.uint64(32)
        else:
            np.copyto(self._x, t & np.uint64(_MASK32), where=mask)
            np.copyto(self._c, t >> np.uint64(32), where=mask)
        return self._x

    def randrange(self, n: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-lane uniform integer in ``[0, n)`` (masked lanes only).

        The rejection loop advances only the still-rejected lanes, so
        each lane consumes exactly the draws its scalar twin would.
        Unmasked lanes return 0 and consume nothing.
        """
        if n <= 0:
            raise ConfigurationError(f"randrange() bound must be positive, got {n}")
        limit = np.uint64((0x100000000 // n) * n)
        nn = np.uint64(n)
        out = xp.zeros(self._x.shape, dtype=np.uint64)
        pending = xp.ones(self._x.shape, dtype=bool) if mask is None else mask.copy()
        while pending.any():
            v = self.next_u32(pending)
            accepted = pending & (v < limit)
            if accepted.any():
                np.copyto(out, v % nn, where=accepted)
                pending &= ~accepted
        return out

    def randrange_unmasked(self, n: int) -> np.ndarray:
        """Full-width ``randrange(n)``: every lane draws, no mask.

        Bit-identical per lane to ``randrange(n, mask)`` on a masked
        lane — same rejection rule, same step count — but optimised
        for the all-lanes case: one unmasked step, then rejection
        repair only for the (rare) lanes whose draw fell in the
        truncated tail.  When ``n`` divides ``2**32`` no draw can be
        rejected and the comparison is skipped entirely.
        """
        if n <= 0:
            raise ConfigurationError(f"randrange() bound must be positive, got {n}")
        limit = (0x100000000 // n) * n
        v = self.next_u32()
        if limit != 0x100000000:
            rejected = v >= np.uint64(limit)
            while rejected.any():
                # next_u32 writes rejected lanes in place; `v` is the
                # state vector, so it sees the redraws directly.
                self.next_u32(rejected)
                rejected &= v >= np.uint64(limit)
        if n & (n - 1) == 0:
            return v & np.uint64(n - 1)
        return v % np.uint64(n)

    def _block_step(self, x, c, t, lim, rejected) -> None:
        """One in-place full-width MWC step with rejection repair."""
        np.multiply(np.uint64(MWC_MULTIPLIER), x, out=t)
        np.add(t, c, out=t)
        np.bitwise_and(t, np.uint64(_MASK32), out=x)
        np.right_shift(t, np.uint64(32), out=c)
        if rejected is not None:
            np.greater_equal(x, lim, out=rejected)
            while rejected.any():
                # next_u32 repairs rejected lanes in place; ``x``
                # aliases the state vector, so it sees the redraws.
                self.next_u32(rejected)
                rejected &= x >= lim

    @staticmethod
    def _block_reduce(out, n: int) -> np.ndarray:
        """In-place ``[0, n)`` range reduction of a full-draw block."""
        kind = out.dtype.type
        if n & (n - 1) == 0:
            np.bitwise_and(out, kind(n - 1), out=out)
        else:
            np.remainder(out, kind(n), out=out)
        return out

    def randrange_block(
        self, n: int, rows: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``rows`` consecutive full-width ``randrange(n)`` draws, stacked.

        Row ``r`` of the returned ``[rows, lanes]`` array is
        bit-identical to the ``r``-th successive call to
        :meth:`randrange_unmasked` — same step, same per-lane rejection
        repair, same final range reduction — but the whole block runs
        on in-place array steps with one output allocation, which is
        the regime the kernel engine's CRG timeline precompute needs
        (thousands of rows per sweep).  ``out`` lets the caller supply
        (and type) the destination block; integer dtypes are safe, the
        draws fit 32 bits.
        """
        if n <= 0:
            raise ConfigurationError(f"randrange() bound must be positive, got {n}")
        if rows < 0:
            raise ConfigurationError(f"randrange_block() rows must be non-negative, got {rows}")
        limit = (0x100000000 // n) * n
        if out is None:
            out = xp.empty((rows, self.lanes), dtype=np.uint64)
        x, c = self._x, self._c
        t = xp.empty(self.lanes, dtype=np.uint64)
        lim = np.uint64(limit)
        rejected = (
            xp.empty(self.lanes, dtype=bool) if limit != 0x100000000 else None
        )
        for row in range(rows):
            self._block_step(x, c, t, lim, rejected)
            out[row] = x
        return self._block_reduce(out, n)

    def randrange_block_pair(
        self,
        n_first: int,
        n_second: int,
        rows: int,
        out_first: Optional[np.ndarray] = None,
        out_second: Optional[np.ndarray] = None,
    ) -> tuple:
        """``rows`` interleaved ``(randrange(n_first), randrange(n_second))``
        draw pairs, as two stacked blocks.

        The per-lane draw order is strictly alternating — first draw,
        second draw, first draw, ... — exactly the order a CRG's
        private stream consumes its set and gap draws, so row ``r`` of
        the two blocks is bit-identical to the ``r``-th scalar
        ``(set, gap)`` pair.
        """
        if n_first <= 0 or n_second <= 0:
            raise ConfigurationError(
                f"randrange() bounds must be positive, got "
                f"({n_first}, {n_second})"
            )
        if rows < 0:
            raise ConfigurationError(
                f"randrange_block_pair() rows must be non-negative, got {rows}"
            )
        limit_first = (0x100000000 // n_first) * n_first
        limit_second = (0x100000000 // n_second) * n_second
        if out_first is None:
            out_first = xp.empty((rows, self.lanes), dtype=np.uint64)
        if out_second is None:
            out_second = xp.empty((rows, self.lanes), dtype=np.uint64)
        x, c = self._x, self._c
        t = xp.empty(self.lanes, dtype=np.uint64)
        lim_first = np.uint64(limit_first)
        lim_second = np.uint64(limit_second)
        rej_first = (
            xp.empty(self.lanes, dtype=bool)
            if limit_first != 0x100000000 else None
        )
        rej_second = (
            xp.empty(self.lanes, dtype=bool)
            if limit_second != 0x100000000 else None
        )
        for row in range(rows):
            self._block_step(x, c, t, lim_first, rej_first)
            out_first[row] = x
            self._block_step(x, c, t, lim_second, rej_second)
            out_second[row] = x
        return (
            self._block_reduce(out_first, n_first),
            self._block_reduce(out_second, n_second),
        )

    def randint_inclusive(
        self, lo: int, hi: int, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-lane uniform integer in ``[lo, hi]`` (both inclusive)."""
        if hi < lo:
            raise ConfigurationError(f"empty range [{lo}, {hi}]")
        draw = self.randrange(hi - lo + 1, mask)
        if lo == 0:
            return draw
        return draw + np.uint64(lo)

    def state(self) -> tuple:
        """Return copies of the internal ``(x, carry)`` vectors."""
        return (self._x.copy(), self._c.copy())


def derive_seeds(master_seed: int, count: int) -> list:
    """Derive ``count`` independent 64-bit seeds from ``master_seed``.

    Campaigns use this to give every run, and within a run every
    hardware PRNG, a distinct reproducible seed.

    >>> derive_seeds(7, 3) == derive_seeds(7, 3)
    True
    >>> derive_seeds(7, 3) != derive_seeds(8, 3)
    True
    """
    if count < 0:
        raise ConfigurationError(f"seed count must be non-negative, got {count}")
    mixer = SplitMix64(master_seed)
    return [mixer.next_u64() for _ in range(count)]
