"""Low-level utilities shared across the library.

This subpackage contains the pieces that model the *randomness
substrate* of a time-randomised architecture — the hardware
pseudo-random number generator and the parametric placement hash — plus
small statistics and validation helpers used throughout.
"""

from repro.utils.rng import MultiplyWithCarry, SplitMix64, derive_seeds
from repro.utils.hashing import ParametricHash

__all__ = [
    "MultiplyWithCarry",
    "SplitMix64",
    "derive_seeds",
    "ParametricHash",
]
