"""Parametric hash function for random cache placement.

Time-randomised caches (Kosmidis et al., DATE 2013 — reference [15] of
the paper) replace the modulo index function with a *parametric hash*:
given a memory (line) address and a random index identifier (RII), the
hash yields a cache set that is fixed for the whole execution but
changes — uniformly over the sets — whenever the RII changes.

The exact gate-level hash of [15] (rotations + XOR trees) is not
specified bit-for-bit in the DAC'14 paper; what the analysis relies on
is only its *contract*:

1. deterministic: same (address, RII) -> same set;
2. for a fixed address, over random RIIs every set is (approximately)
   equally likely;
3. cheap to evaluate.

We implement the contract with a strong 64-bit integer mixer (the
SplitMix64 finaliser) applied to the pair, which satisfies 1-3 and is
statistically indistinguishable from the ideal behaviour the paper's
Equation 1 assumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import splitmix64_mix

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(z: int) -> int:
    """SplitMix64 finaliser: a bijective 64-bit mixer with full avalanche."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


class ParametricHash:
    """Random-placement hash ``h(address, RII) -> set index``.

    Parameters
    ----------
    num_sets:
        Number of cache sets the hash maps into.  Any positive integer
        is accepted (the mapping uses an unbiased reduction, not a
        power-of-two mask), although real caches use powers of two.

    Examples
    --------
    >>> h = ParametricHash(64)
    >>> h.set_index(0x1000, rii=1) == h.set_index(0x1000, rii=1)
    True
    >>> 0 <= h.set_index(0x1000, rii=99) < 64
    True
    """

    __slots__ = ("num_sets",)

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ConfigurationError(f"num_sets must be positive, got {num_sets}")
        self.num_sets = num_sets

    def set_index(self, line_address: int, rii: int) -> int:
        """Map ``line_address`` under ``rii`` to a set in ``[0, num_sets)``.

        The RII is combined multiplicatively with the address before
        mixing so that flipping any RII bit re-randomises the placement
        of every address (the "new random cache layout per run"
        behaviour MBPTA requires).
        """
        key = (line_address * 0x9E3779B97F4A7C15 + rii * 0xC2B2AE3D27D4EB4F) & _MASK64
        h = _mix64(key)
        # Lemire-style unbiased range reduction on the high bits.
        return (h * self.num_sets) >> 64

    def set_index_array(self, line_addresses, riis) -> np.ndarray:
        """Vectorised :meth:`set_index` with NumPy broadcasting."""
        return set_index_array(line_addresses, riis, self.num_sets)


def set_index_array(line_addresses, riis, num_sets: int) -> np.ndarray:
    """Vectorised parametric hash: ``h(address, RII) -> set index``.

    Bit-identical to :meth:`ParametricHash.set_index` element-wise;
    ``line_addresses`` and ``riis`` broadcast against each other, so a
    ``[lines, 1]`` column against a ``[runs]`` row yields the whole
    per-run placement matrix of a batch campaign in one call.

    The 128-bit Lemire reduction ``(h * num_sets) >> 64`` is computed
    in ``uint64`` by splitting ``h`` into 32-bit halves:
    ``((hi*n + ((lo*n) >> 32)) >> 32)``, exact for ``num_sets`` up to
    2**31 (no partial product reaches 2**64).
    """
    if not 0 < num_sets <= 1 << 31:
        raise ConfigurationError(
            f"num_sets must be in [1, 2**31] for the vectorised hash, "
            f"got {num_sets}"
        )
    lines = np.asarray(line_addresses, dtype=np.uint64)
    riis = np.asarray(riis, dtype=np.uint64)
    key = lines * np.uint64(0x9E3779B97F4A7C15) + riis * np.uint64(0xC2B2AE3D27D4EB4F)
    h = splitmix64_mix(key)
    hi = h >> np.uint64(32)
    lo = h & np.uint64(0xFFFFFFFF)
    n = np.uint64(num_sets)
    return ((hi * n + ((lo * n) >> np.uint64(32))) >> np.uint64(32)).astype(np.int64)
