"""Small argument-validation helpers.

Hardware configuration errors should surface at construction time with
a message naming the offending parameter, not as an index error three
layers deep in the simulator.  These helpers keep those checks terse at
the call sites.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def require_positive_int(name: str, value: int) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative_int(name: str, value: int) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_power_of_two(name: str, value: int) -> int:
    """Return ``value`` if it is a positive power of two, else raise."""
    require_positive_int(name, value)
    if value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def require_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in ``[0, 1]``, else raise."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)
