"""Plain statistics helpers used by the PTA layer and reporting.

These are intentionally dependency-light (numpy only) and operate on
1-D samples of execution times.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


def as_sample(values: Sequence[float]) -> np.ndarray:
    """Validate and convert a sequence of observations to a float array.

    Raises :class:`AnalysisError` on empty input or non-finite values,
    which would otherwise silently poison every downstream statistic.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("sample is empty")
    if not np.all(np.isfinite(arr)):
        raise AnalysisError("sample contains non-finite values")
    return arr


def ecdf(values: Sequence[float]) -> tuple:
    """Return the empirical CDF of ``values`` as ``(xs, probs)`` arrays.

    ``xs`` is the sorted sample; ``probs[i]`` is the fraction of
    observations ``<= xs[i]``.
    """
    arr = np.sort(as_sample(values))
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, probs


def ccdf(values: Sequence[float]) -> tuple:
    """Return the complementary CDF ``P(X > x)`` as ``(xs, probs)``.

    This is the curve MBPTA's EVT step upper-bounds: the exceedance
    probability of each observed execution time.
    """
    xs, probs = ecdf(values)
    return xs, 1.0 - probs


def empirical_quantile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-quantile of the sample (linear interpolation)."""
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"quantile must be in [0, 1], got {q}")
    return float(np.quantile(as_sample(values), q))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Return std/mean of the sample (0 for a constant positive sample).

    Used by the MBPTA convergence criterion: the estimate is considered
    stable once adding more runs no longer moves the tail quantiles,
    which for well-behaved samples tracks the CV stabilising.
    """
    arr = as_sample(values)
    mean = float(np.mean(arr))
    if mean == 0.0:
        raise AnalysisError("cannot compute CV of a zero-mean sample")
    return float(np.std(arr) / mean)
