"""A static cyclic executive under each mechanism's constraints.

§2.2 of the paper walks through why cache partitioning complicates
task scheduling, with a 4-core example:

* **software partitioning** (memory colouring): two tasks whose
  data/code are coloured into the same cache sets must never run
  simultaneously — a hard co-scheduling constraint;
* **hardware partitioning**: a task may run anywhere, but whenever it
  is given a partition other than the one holding its (possibly dirty)
  lines, that partition must be flushed first;
* **EFL**: a fully shared LLC — no co-scheduling constraints, no
  flushes.

:class:`CyclicExecutive` builds a minor-frame schedule for a task set
under each regime and accounts the costs: frames needed (makespan) and
partition flushes incurred.  It quantifies the paper's qualitative
scheduling argument, and the schedule it emits can be executed on the
simulator frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.rtos.frames import FrameSchedule, MinorFrame
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class Task:
    """A schedulable task.

    Attributes
    ----------
    name:
        Unique task name.
    wcet_cycles:
        Budget the task needs within a frame (its pWCET, typically).
    releases:
        How many times the task must run per major frame.
    colour_group:
        For *software* partitioning: tasks sharing a colour group are
        mapped onto the same cache sets and must not co-run.  ``None``
        means the task has a private colouring.
    """

    name: str
    wcet_cycles: int
    releases: int = 1
    colour_group: Optional[str] = None

    def __post_init__(self) -> None:
        require_positive_int("wcet_cycles", self.wcet_cycles)
        require_positive_int("releases", self.releases)
        if not self.name:
            raise ConfigurationError("task name must be non-empty")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one task set under one mechanism."""

    mechanism: str
    schedule: FrameSchedule
    partition_flushes: int
    co_schedule_conflicts_avoided: int

    @property
    def frames_used(self) -> int:
        """Minor frames needed for one major frame (the makespan)."""
        return len(self.schedule)


class CyclicExecutive:
    """Greedy frame-packing scheduler for the three regimes.

    Parameters
    ----------
    num_cores:
        Cores per minor frame.
    frame_budget_cycles:
        The MIF length; a task's ``wcet_cycles`` must fit it.
    """

    MECHANISMS = ("efl", "cp-hw", "cp-sw")

    def __init__(self, num_cores: int = 4, frame_budget_cycles: int = 1_000_000) -> None:
        self.num_cores = require_positive_int("num_cores", num_cores)
        self.frame_budget = require_positive_int(
            "frame_budget_cycles", frame_budget_cycles
        )

    # ------------------------------------------------------------------
    def schedule(
        self,
        tasks: Sequence[Task],
        mechanism: str = "efl",
        rii_seed: int = 0,
    ) -> ScheduleResult:
        """Place every release of every task into minor frames.

        Greedy first-fit in release order: each release goes into the
        earliest frame with a free core that satisfies the mechanism's
        constraints; new frames are appended when none fits.  Hardware
        partitioning charges a flush whenever a release lands on a core
        (= partition) whose previous occupant was a different task, or
        when the task last ran on a different core.
        """
        if mechanism not in self.MECHANISMS:
            raise ConfigurationError(
                f"unknown mechanism {mechanism!r}; choose from {self.MECHANISMS}"
            )
        if not tasks:
            raise ConfigurationError("no tasks to schedule")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")
        for task in tasks:
            if task.wcet_cycles > self.frame_budget:
                raise ConfigurationError(
                    f"task {task.name!r} needs {task.wcet_cycles} cycles, "
                    f"more than the {self.frame_budget}-cycle frame"
                )

        releases: List[Task] = []
        for task in tasks:
            releases.extend([task] * task.releases)

        frames: List[Dict[int, str]] = []
        groups: Dict[int, List[Optional[str]]] = {}
        flushes = 0
        conflicts_avoided = 0
        last_core_of_task: Dict[str, int] = {}
        last_task_on_core: Dict[int, str] = {}

        colour_of = {task.name: task.colour_group for task in tasks}

        for task in releases:
            placed = False
            for frame_index, assignments in enumerate(frames):
                if len(assignments) >= self.num_cores:
                    continue
                if task.name in assignments.values():
                    # A sequential task cannot run twice in one frame.
                    continue
                if mechanism == "cp-sw" and self._colour_conflict(
                    task, assignments, colour_of
                ):
                    conflicts_avoided += 1
                    continue
                core = self._free_core(assignments)
                flushes += self._place(
                    task, core, assignments, mechanism,
                    last_core_of_task, last_task_on_core,
                )
                placed = True
                break
            if not placed:
                assignments = {}
                frames.append(assignments)
                core = 0
                flushes += self._place(
                    task, core, assignments, mechanism,
                    last_core_of_task, last_task_on_core,
                )

        minor_frames = [
            MinorFrame(index=i, budget_cycles=self.frame_budget, assignments=a)
            for i, a in enumerate(frames)
        ]
        return ScheduleResult(
            mechanism=mechanism,
            schedule=FrameSchedule(minor_frames, rii_seed=rii_seed),
            partition_flushes=flushes if mechanism == "cp-hw" else 0,
            co_schedule_conflicts_avoided=(
                conflicts_avoided if mechanism == "cp-sw" else 0
            ),
        )

    # ------------------------------------------------------------------
    def _free_core(self, assignments: Dict[int, str]) -> int:
        for core in range(self.num_cores):
            if core not in assignments:
                return core
        raise ConfigurationError("no free core (checked before calling)")

    @staticmethod
    def _colour_conflict(
        task: Task, assignments: Dict[int, str], colour_of: Dict[str, Optional[str]]
    ) -> bool:
        """Software partitioning: same colour group may not co-run.

        Two releases of the *same* task conflict too: they share the
        same colouring by definition.
        """
        group = colour_of[task.name]
        for other in assignments.values():
            if other == task.name:
                return True
            if group is not None and colour_of.get(other) == group:
                return True
        return False

    def _place(
        self,
        task: Task,
        core: int,
        assignments: Dict[int, str],
        mechanism: str,
        last_core_of_task: Dict[str, int],
        last_task_on_core: Dict[int, str],
    ) -> int:
        """Record the placement; return hardware-CP flushes incurred."""
        assignments[core] = task.name
        flushes = 0
        if mechanism == "cp-hw":
            previous_core = last_core_of_task.get(task.name)
            previous_owner = last_task_on_core.get(core)
            if previous_core is not None and previous_core != core:
                # The task's dirty lines sit in another partition.
                flushes += 1
            elif previous_owner is not None and previous_owner != task.name:
                # The partition holds another task's (dirty) lines.
                flushes += 1
        last_core_of_task[task.name] = core
        last_task_on_core[core] = task.name
        return flushes
