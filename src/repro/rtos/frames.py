"""Minor/major frames and the coordinated RII update protocol.

The paper (§3.5): "Updating the RII of the LLC must occur coordinately
at program execution boundaries ... Temporal partitioning is achieved
by splitting execution time into fixed-size time frames ... the OS can
easily change the RII of the LLC at MIF boundaries, which occur
coordinately across all cores."

:class:`MinorFrame` is one such time window; :class:`FrameSchedule`
strings minor frames into a major frame and drives the RII protocol:
at every minor-frame boundary each core's private caches may take a
fresh RII independently, while the shared LLC takes one fresh RII for
everyone (and is flushed, as consistency requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import SplitMix64
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class MinorFrame:
    """One MIF: a fixed time budget and the tasks placed on each core.

    ``assignments`` maps core id -> task name (idle cores absent).
    """

    index: int
    budget_cycles: int
    assignments: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive_int("budget_cycles", self.budget_cycles)
        if self.index < 0:
            raise ConfigurationError(f"negative frame index {self.index}")
        for core in self.assignments:
            if core < 0:
                raise ConfigurationError(f"negative core id {core}")

    @property
    def tasks(self) -> Tuple[str, ...]:
        """Task names running in this frame, by core order."""
        return tuple(self.assignments[c] for c in sorted(self.assignments))

    def core_of(self, task: str) -> int:
        """Core the named task runs on in this frame."""
        for core, name in self.assignments.items():
            if name == task:
                return core
        raise ConfigurationError(f"task {task!r} not scheduled in frame {self.index}")


class FrameSchedule:
    """A major frame: an ordered sequence of minor frames plus RII plumbing.

    Parameters
    ----------
    frames:
        The minor frames, in execution order.
    rii_seed:
        Seed of the RII generator the OS uses at frame boundaries.
    """

    def __init__(self, frames: Sequence[MinorFrame], rii_seed: int = 0) -> None:
        if not frames:
            raise ConfigurationError("a major frame needs at least one MIF")
        for expected, frame in enumerate(frames):
            if frame.index != expected:
                raise ConfigurationError(
                    f"frame indices must be consecutive from 0; frame "
                    f"{expected} has index {frame.index}"
                )
        self.frames: List[MinorFrame] = list(frames)
        self._rii_stream = SplitMix64(rii_seed)
        self.rii_updates = 0

    @property
    def major_frame_cycles(self) -> int:
        """Total budget of the major frame."""
        return sum(frame.budget_cycles for frame in self.frames)

    def next_llc_rii(self) -> int:
        """Draw the coordinated LLC RII for the next minor frame.

        One value per boundary, shared by all cores — the coordination
        §3.5 requires (a per-core LLC RII would break coherence of the
        placement function).
        """
        self.rii_updates += 1
        return self._rii_stream.next_u64() & 0xFFFFFFFF

    def concurrent_pairs(self) -> List[Tuple[str, str]]:
        """All pairs of task names that ever run simultaneously.

        Software cache partitioning must keep same-partition tasks out
        of this list; EFL places no constraint on it (§2.2).
        """
        pairs = []
        for frame in self.frames:
            tasks = frame.tasks
            for i, a in enumerate(tasks):
                for b in tasks[i + 1:]:
                    pairs.append((a, b))
        return pairs

    def core_history(self, task: str) -> List[int]:
        """Cores the named task occupies across the major frame.

        Hardware cache partitioning needs this: when a task's frame
        placement gives it a different partition than it last used, the
        old partition must be flushed (§2.2).
        """
        return [
            core
            for frame in self.frames
            for core, name in frame.assignments.items()
            if name == task
        ]

    def __len__(self) -> int:
        return len(self.frames)

    def __repr__(self) -> str:
        return (
            f"FrameSchedule({len(self.frames)} MIFs, "
            f"{self.major_frame_cycles} cycles/MAF)"
        )
