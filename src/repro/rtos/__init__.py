"""Frame-based RTOS substrate: IMA-style scheduling on the platform.

§3.5 of the paper grounds EFL's RII management in Integrated Modular
Avionics (IMA) and AUTOSAR practice: execution time is split into
fixed-size frames (MInor Frames grouped into a MAjor Frame), the OS
schedules tasks into frames, and the LLC's random index identifier is
updated coordinately at frame boundaries.  §2.2 argues the scheduling
side of the comparison: cache partitioning constrains which tasks may
co-run (software partitioning) or forces partition flushes on
reassignment (hardware partitioning), while EFL imposes no such
constraints.

This subpackage models that layer:

* :mod:`repro.rtos.frames` — minor/major frame schedules and the RII
  update protocol;
* :mod:`repro.rtos.scheduler` — a static cyclic executive placing a
  task set into frames under either mechanism's constraints, with the
  partition-flush accounting hardware CP requires.
"""

from repro.rtos.frames import FrameSchedule, MinorFrame
from repro.rtos.scheduler import (
    CyclicExecutive,
    ScheduleResult,
    Task,
)

__all__ = [
    "MinorFrame",
    "FrameSchedule",
    "Task",
    "CyclicExecutive",
    "ScheduleResult",
]
