"""System-level simulation: configuration, wiring and engines.

* :mod:`repro.sim.config` — :class:`SystemConfig` (the paper's §4.1
  platform parameters) and :class:`Scenario` (which mechanism — EFL,
  CP or a plain shared LLC — and which operation mode to simulate);
* :mod:`repro.sim.platform` — builds the hardware instances for one
  run from a config, a scenario and a run seed;
* :mod:`repro.sim.memorypath` — the shared bus→LLC→memory transaction
  engine, including EFL gating and analysis-mode upper-bounding;
* :mod:`repro.sim.simulator` — isolation (analysis) and multicore
  (deployment) execution engines, plus the picklable
  :class:`RunRequest` construction/execution split;
* :mod:`repro.sim.backend` — pluggable execution backends (serial /
  process-pool fan-out) and the :class:`RunObserver` observability
  seam;
* :mod:`repro.sim.batch` — the lock-step NumPy batch engine: an
  entire analysis-mode campaign as one struct-of-arrays sweep over
  the trace, bit-identical to the scalar interpreter;
* :mod:`repro.sim.campaign` — multi-run measurement campaigns with
  per-run RII/seed refresh and full seed provenance, feeding the
  MBPTA layer;
* :mod:`repro.sim.checkpoint` — per-campaign JSONL run journals so
  interrupted campaigns resume bit-identically;
* :mod:`repro.sim.telemetry` — the :class:`TelemetryObserver` bridge
  from the :class:`RunObserver` seam into the
  :mod:`repro.observability` metrics/logs/spans (bit-neutral: the
  sample is identical with and without it);
* :mod:`repro.sim.faults` — deterministic fault injection for
  exercising the retry/crash-recovery/watchdog machinery.
"""

from repro.sim.config import Scenario, SystemConfig
from repro.sim.platform import Platform, build_platform
from repro.sim.simulator import (
    CoreResult,
    RunRequest,
    RunResult,
    execute_request,
    run_isolation,
    run_workload,
)
from repro.sim.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    RunObserver,
    RunOutcome,
    RunRecord,
    SerialBackend,
    StreamObserver,
    make_backend,
)
from repro.sim.batch import (
    ENGINE_NAMES,
    SHARDED_AUTO_MIN_RUNS,
    BatchBackend,
    ShardedBatchBackend,
    shard_lanes,
)
from repro.sim.campaign import collect_execution_times, CampaignResult
from repro.sim.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.sim.faults import FaultInjectingBackend, FaultPlan
from repro.sim.plancache import PlanCache
from repro.sim.telemetry import TelemetryObserver

__all__ = [
    "SystemConfig",
    "Scenario",
    "Platform",
    "build_platform",
    "CoreResult",
    "RunResult",
    "RunRequest",
    "execute_request",
    "run_isolation",
    "run_workload",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "RunObserver",
    "StreamObserver",
    "RunOutcome",
    "RunRecord",
    "RetryPolicy",
    "make_backend",
    "ENGINE_NAMES",
    "SHARDED_AUTO_MIN_RUNS",
    "BatchBackend",
    "ShardedBatchBackend",
    "shard_lanes",
    "PlanCache",
    "collect_execution_times",
    "CampaignResult",
    "CampaignCheckpoint",
    "campaign_fingerprint",
    "TelemetryObserver",
    "FaultPlan",
    "FaultInjectingBackend",
]
