"""Campaign checkpointing: an append-only JSONL run journal.

MBPTA campaigns are long (the paper fits EVT tails on >= 1000 runs per
task/scenario, §3.3) and embarrassingly restartable: every run is a
pure function of ``(template, index, seed)``.  This module makes that
restartability real.  A :class:`CampaignCheckpoint` journals one JSON
line per completed run as the campaign progresses; on restart,
:func:`~repro.sim.campaign.collect_execution_times` loads the journal
and re-dispatches only the runs it does not already hold.  Because the
journalled records are the bit-identical values a re-execution would
produce, a resumed campaign's ``execution_times`` equal an
uninterrupted campaign's exactly.

**Journal format** (one JSON object per line):

* line 1 — header: ``{"version", "task", "scenario", "master_seed",
  "runs", "fingerprint"}`` plus an optional ``"backend"`` provenance
  label (which engine wrote the journal; never checked on resume,
  because the sample is backend-independent).  The fingerprint
  digests the trace
  content, the platform config, the scenario, the master seed and the
  run count; a journal whose fingerprint does not match the campaign
  being resumed is *refused* (:class:`~repro.errors.CheckpointError`)
  rather than silently spliced into a different experiment.
* lines 2+ — one completed run each: the numeric fields of its
  :class:`~repro.sim.backend.RunRecord` (profiles are measurements,
  not semantics, and are not journalled).

A crash can leave a torn final line; loading tolerates it by truncating
the journal back to the last line that parses.  Writes are flushed per
run, so at most the in-flight run is ever lost.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.cpu.trace import Trace
from repro.errors import CheckpointError
from repro.sim.backend import RunObserver, RunRecord
from repro.sim.config import Scenario, SystemConfig

#: Journal schema version; bumped on any incompatible format change.
JOURNAL_VERSION = 1


def scan_durable_jsonl(raw: bytes):
    """Parse the durable prefix of an append-only JSONL journal.

    The shared crash-tolerance primitive of every journal in this
    code base (campaign checkpoints here, the service's write-ahead
    job journal): a crash mid-append can leave a torn final line, so a
    loader must accept exactly the prefix of complete,
    newline-terminated JSON lines and drop whatever follows.  Returns
    ``(objects, durable_bytes)`` — the parsed objects and the byte
    offset the journal should be truncated to before appending again.

    A final line that parses as JSON but lacks its terminating newline
    is *not* durable: appending after it would corrupt the record, so
    it is dropped (re-journalling that record costs one line; splicing
    two records into one would cost the journal).
    """
    objects = []
    durable = 0
    position = 0
    for line in raw.splitlines(keepends=True):
        position += len(line)
        stripped = line.strip()
        if not stripped:
            durable = position
            continue
        try:
            obj = json.loads(stripped)
        except ValueError:
            break  # torn tail from a crash mid-write; drop it
        if not line.endswith(b"\n"):
            break
        objects.append(obj)
        durable = position
    return objects, durable


def campaign_fingerprint(
    trace: Trace,
    config: SystemConfig,
    scenario: Scenario,
    master_seed: int,
    runs: int,
    adaptive=None,
) -> str:
    """Digest of everything a campaign's sample depends on.

    Two campaigns share a fingerprint iff they would produce the
    bit-identical sample: same trace content, platform config,
    scenario, master seed and run count.  Config and scenario are
    value-hashed through their dataclass ``repr``; the trace by its
    full instruction stream.

    ``adaptive`` (a :class:`~repro.pta.adaptive.ConvergencePolicy`)
    folds the stopping rule into the digest: an adaptive campaign's
    *sample length* depends on the policy, so a cached adaptive result
    must never be served to a fixed-R request (or vice versa) even
    though the executed prefix is bit-identical.  Run-journal headers
    keep ``adaptive=None`` deliberately — the journal stores a prefix
    of the fixed-R run sequence, which both campaign kinds can resume.
    """
    digest = hashlib.sha256()
    digest.update(repr((JOURNAL_VERSION, trace.name, master_seed, runs)).encode())
    digest.update(repr((config, scenario)).encode())
    digest.update(repr((trace.pcs, trace.kinds, trace.addresses)).encode())
    if adaptive is not None:
        digest.update(repr(("adaptive", adaptive.fingerprint_key())).encode())
    return digest.hexdigest()[:16]


def _entry_to_record(entry: dict) -> RunRecord:
    """One journal line back into a record (shared RunRecord schema)."""
    try:
        return RunRecord.from_dict(entry)
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed journal entry {entry!r}") from exc


class CampaignCheckpoint:
    """One campaign's run journal, opened for resume and/or append.

    ``resume=True`` (default) loads any compatible existing journal so
    the campaign can skip the runs it already holds; ``resume=False``
    discards any existing journal and starts fresh.  Incompatible
    journals (fingerprint mismatch) always raise
    :class:`~repro.errors.CheckpointError` when resuming — a journal
    from a different experiment must never be spliced in silently.
    """

    def __init__(self, path, resume: bool = True) -> None:
        self.path = Path(path)
        self.resume = resume
        self._file = None
        self._completed = 0
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """Runs currently journalled (loaded + appended)."""
        return self._completed

    def open(
        self,
        trace: Trace,
        config: SystemConfig,
        scenario: Scenario,
        master_seed: int,
        runs: int,
        backend: Optional[str] = None,
    ) -> Dict[int, RunRecord]:
        """Load the journal and position it for appending.

        Returns the already-completed runs as ``{index: record}`` —
        empty for a fresh journal.  Tolerates a torn trailing line
        (crash mid-write) by truncating back to the last durable line.
        ``backend`` records which backend produced the journal in the
        header of a *fresh* journal — provenance only: the sample is
        backend-independent, so resuming never checks it (a campaign
        checkpointed under the sharded engine resumes bit-identically
        under serial, and vice versa).
        """
        fingerprint = campaign_fingerprint(
            trace, config, scenario, master_seed, runs
        )
        entries: Dict[int, RunRecord] = {}
        durable_bytes = 0
        if self.resume and self.path.exists():
            entries, durable_bytes = self._load(fingerprint)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if durable_bytes:
            # Drop any torn tail, then append after the durable prefix.
            os.truncate(self.path, durable_bytes)
            self._file = open(self.path, "a")
        else:
            self._file = open(self.path, "w")
            header = {
                "version": JOURNAL_VERSION,
                "task": trace.name,
                "scenario": scenario.label(),
                "master_seed": master_seed,
                "runs": runs,
                "fingerprint": fingerprint,
            }
            if backend is not None:
                header["backend"] = backend
            self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
            self._file.flush()
        self._completed = len(entries)
        self._total = runs
        return entries

    def _load(self, fingerprint: str):
        """Parse the existing journal; returns (entries, durable bytes)."""
        with open(self.path, "rb") as stream:
            raw = stream.read()
        objects, durable = scan_durable_jsonl(raw)
        if not objects:
            return {}, 0  # empty or torn-at-header file: rewrite from scratch
        header = objects[0]
        found = header.get("fingerprint")
        if header.get("version") != JOURNAL_VERSION or found != fingerprint:
            raise CheckpointError(
                f"checkpoint journal {self.path} belongs to a "
                f"different campaign (fingerprint {found!r}, "
                f"this campaign is {fingerprint!r}); delete it or "
                f"point --checkpoint-dir elsewhere"
            )
        entries: Dict[int, RunRecord] = {}
        for obj in objects[1:]:
            record = _entry_to_record(obj)
            entries[record.index] = record
        return entries, durable

    def append(self, record: RunRecord) -> None:
        """Journal one completed run (flushed immediately)."""
        if self._file is None:
            raise CheckpointError("checkpoint journal used before open()")
        self._file.write(
            json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
        )
        self._file.flush()
        self._completed += 1

    def close(self) -> None:
        """Close the journal file (safe to call twice)."""
        if self._file is not None:
            self._file.close()
            self._file = None


class CheckpointWriter(RunObserver):
    """Observer shim that journals each completed run as it lands.

    Wraps the campaign's (optional) user observer: every ``on_run``
    appends the record to the journal *before* forwarding, so a crash
    immediately after the callback loses nothing, then fires
    ``on_checkpoint`` with journal progress.  All other hooks forward
    unchanged.
    """

    def __init__(
        self,
        checkpoint: CampaignCheckpoint,
        inner: Optional[RunObserver],
        total: int,
    ) -> None:
        self.checkpoint = checkpoint
        self.inner = inner
        self.total = total

    def on_run(self, record: RunRecord) -> None:
        self.checkpoint.append(record)
        if self.inner is not None:
            self.inner.on_run(record)
            self.inner.on_checkpoint(
                record.index, record.seed, self.checkpoint.completed, self.total
            )

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        if self.inner is not None:
            self.inner.on_campaign_start(task, scenario_label, runs)

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        if self.inner is not None:
            self.inner.on_run_failed(index, seed, error)

    def on_retry(self, index: int, seed: int, attempt: int, error: str) -> None:
        if self.inner is not None:
            self.inner.on_retry(index, seed, attempt, error)

    def on_worker_crash(self, dead_workers: int) -> None:
        if self.inner is not None:
            self.inner.on_worker_crash(dead_workers)

    def on_checkpoint(self, index: int, seed: int, completed: int,
                      total: int) -> None:
        if self.inner is not None:
            self.inner.on_checkpoint(index, seed, completed, total)

    def on_campaign_end(self, result: object) -> None:
        if self.inner is not None:
            self.inner.on_campaign_end(result)

    def on_message(self, message: str) -> None:
        if self.inner is not None:
            self.inner.on_message(message)
