"""The shared memory path: bus → LLC → memory controller, with EFL.

Every L1 miss (and every write-through store) travels this path.  One
:class:`MemoryPath` instance is shared by all cores of a platform; it
owns the transaction choreography:

Deployment mode (real timing):

1. bus transfer with lottery arbitration (2 cycles + contention);
2. LLC lookup (10 cycles);
3. on an LLC miss: the core's EFL eviction grant (EAB stall, if EFL is
   active), then the memory controller serves the fill (100 cycles +
   channel occupancy); LLC victim write-backs are posted to memory.

Analysis mode (time-composable upper bounds, Figure 1 of the paper):

1. the bus charges the worst arbitration round (lose once to every
   other core — the bound of Jalle et al. [13]);
2. with EFL, the CRGs' artificial force-miss evictions accumulated
   since the analysed task's last access are applied to the LLC first,
   so the task under analysis observes maximum-rate eviction
   interference (§3.4);
3. on an LLC miss: the EFL grant, then the memory controller's
   composable worst case (wait for every other core once — Paolieri et
   al. [25]).

Design simplification (documented in DESIGN.md): L1 dirty-victim
write-backs are *posted* and treated as write-no-allocate at the LLC —
they update the line if it is resident, otherwise they forward to
memory.  They therefore never trigger LLC evictions and never interact
with EFL, keeping the paper's "one eviction per demand miss" accounting
exact while avoiding recursive eviction cascades.
"""

from __future__ import annotations

from repro.core.config import OperationMode
from repro.errors import SimulationError
from repro.sim.platform import Platform


class MemoryPath:
    """Transaction engine for the shared levels of one platform."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._analysis = platform.mode is OperationMode.ANALYSIS
        self.llc_hits = 0
        self.llc_misses = 0
        config = platform.config
        bus_penalty = config.analysis_bus_penalty
        if bus_penalty is None:
            bus_penalty = (config.num_cores - 1) * config.bus_latency
        #: total analysis-time bus transfer charge (transfer + UB).
        self._analysis_bus_cycles = config.bus_latency + bus_penalty
        memory_penalty = config.analysis_memory_penalty
        if memory_penalty is None:
            memory_penalty = (config.num_cores - 1) * config.memory_latency
        #: total analysis-time memory read charge (service + UB).
        self._analysis_memory_cycles = config.memory_latency + memory_penalty

    # ------------------------------------------------------------------
    # internal legs
    # ------------------------------------------------------------------
    def _bus_done(self, core: int, time: int) -> int:
        """Completion cycle of the core→LLC bus transfer."""
        if self._analysis:
            return time + self._analysis_bus_cycles
        return self.platform.bus.request(core, time)

    def _memory_read_done(self, core: int, time: int) -> int:
        """Completion cycle of a demand line fill from memory."""
        memctrl = self.platform.memctrl
        if self._analysis:
            memctrl.requests += 1
            memctrl.memory.reads += 1
            return time + self._analysis_memory_cycles
        return memctrl.read(core, time)

    def _post_memory_write(self, core: int, time: int) -> None:
        """Post a write-back toward memory (never stalls the core)."""
        memctrl = self.platform.memctrl
        if self._analysis:
            memctrl.worst_case_writeback(time)
        else:
            memctrl.write_back(core, time)

    # ------------------------------------------------------------------
    # public transactions
    # ------------------------------------------------------------------
    def fill(self, core: int, line: int, time: int, write: bool = False) -> int:
        """Serve an L1 demand miss for ``line`` issued at ``time``.

        Returns the cycle at which the line is available to the L1.
        ``write`` marks the LLC line dirty when the miss came from a
        store (write-allocate propagation).
        """
        if time < 0:
            raise SimulationError(f"fill at negative time {time}")
        platform = self.platform
        arrival = self._bus_done(core, time)
        if platform.efl is not None:
            # Analysis mode: the artificial co-runners evicted at
            # maximum rate while this core computed locally; apply
            # their effect before looking up.  No-op in deployment.
            platform.efl.inject_interference(arrival)

        lookup_done = arrival + platform.config.llc_hit_latency
        if platform.llc_view.probe(core, line):
            platform.llc_view.access(core, line, write=write)
            self.llc_hits += 1
            return lookup_done

        # LLC miss: the eviction is gated by the core's EAB.
        self.llc_misses += 1
        if platform.efl is not None:
            grant = platform.efl.grant_eviction(core, lookup_done)
            platform.efl.record_eviction(core, grant)
        else:
            grant = lookup_done
        done = self._memory_read_done(core, grant)
        result = platform.llc_view.access(core, line, write=write)
        if result.eviction is not None and result.eviction.dirty:
            self._post_memory_write(core, done)
        return done

    def l1_writeback(self, core: int, line: int, time: int) -> None:
        """Post a dirty L1 victim toward the LLC (write-no-allocate).

        If the line is still resident in the (non-inclusive) LLC it is
        updated and marked dirty; otherwise the write-back forwards to
        memory.  Posted: the core never waits for it.
        """
        platform = self.platform
        if platform.llc_view.probe(core, line):
            platform.llc_view.access(core, line, write=True)
        else:
            self._post_memory_write(core, time)

    def store_through(self, core: int, line: int, time: int) -> int:
        """Write-through store (A2 ablation): bus + LLC write.

        The store updates the LLC if the line is resident (hit) and
        otherwise forwards to memory without allocating — the paper's
        footnote 5 notes that letting write-through stores allocate
        (and hence evict) in the LLC would make EFL stalls pervasive.
        Returns the cycle at which the store leaves the core's port.
        """
        if time < 0:
            raise SimulationError(f"store at negative time {time}")
        platform = self.platform
        arrival = self._bus_done(core, time)
        if platform.efl is not None:
            platform.efl.inject_interference(arrival)
        lookup_done = arrival + platform.config.llc_hit_latency
        if platform.llc_view.probe(core, line):
            platform.llc_view.access(core, line, write=True)
            self.llc_hits += 1
        else:
            self.llc_misses += 1
            self._post_memory_write(core, lookup_done)
        return lookup_done
