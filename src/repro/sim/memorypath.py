"""The shared memory path: bus → LLC → memory controller, with EFL.

Every L1 miss (and every write-through store) travels this path.  One
:class:`MemoryPath` instance is shared by all cores of a platform; it
owns the transaction choreography:

Deployment mode (real timing):

1. bus transfer with lottery arbitration (2 cycles + contention);
2. LLC lookup (10 cycles);
3. on an LLC miss: the core's EFL eviction grant (EAB stall, if EFL is
   active), then the memory controller serves the fill (100 cycles +
   channel occupancy); LLC victim write-backs are posted to memory.

Analysis mode (time-composable upper bounds, Figure 1 of the paper):

1. the bus charges the worst arbitration round (lose once to every
   other core — the bound of Jalle et al. [13]);
2. with EFL, the CRGs' artificial force-miss evictions accumulated
   since the analysed task's last access are applied to the LLC first,
   so the task under analysis observes maximum-rate eviction
   interference (§3.4);
3. on an LLC miss: the EFL grant, then the memory controller's
   composable worst case (wait for every other core once — Paolieri et
   al. [25]).

Design simplification (documented in DESIGN.md): L1 dirty-victim
write-backs are *posted* and treated as write-no-allocate at the LLC —
they update the line if it is resident, otherwise they forward to
memory.  They therefore never trigger LLC evictions and never interact
with EFL, keeping the paper's "one eviction per demand miss" accounting
exact while avoiding recursive eviction cascades.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.core.config import OperationMode
from repro.errors import SimulationError
from repro.sim.platform import Platform
from repro.sim.profiler import HotPathProfiler


class MemoryPath:
    """Transaction engine for the shared levels of one platform.

    ``profiler`` (optional) receives per-component cycle and wall-time
    attribution for every transaction; when ``None`` (the default) the
    transactions run on a branch-free fast path.
    """

    def __init__(self, platform: Platform, profiler: Optional[HotPathProfiler] = None) -> None:
        self.platform = platform
        self._analysis = platform.mode is OperationMode.ANALYSIS
        self.llc_hits = 0
        self.llc_misses = 0
        self._profiler = profiler
        # Per-transaction hot attributes, resolved once: the platform's
        # shared components never change over the path's lifetime.
        self._llc_view = platform.llc_view
        self._efl = platform.efl
        config = platform.config
        self._llc_hit_latency = config.llc_hit_latency
        bus_penalty = config.analysis_bus_penalty
        if bus_penalty is None:
            bus_penalty = (config.num_cores - 1) * config.bus_latency
        #: total analysis-time bus transfer charge (transfer + UB).
        self._analysis_bus_cycles = config.bus_latency + bus_penalty
        memory_penalty = config.analysis_memory_penalty
        if memory_penalty is None:
            memory_penalty = (config.num_cores - 1) * config.memory_latency
        #: total analysis-time memory read charge (service + UB).
        self._analysis_memory_cycles = config.memory_latency + memory_penalty

    # ------------------------------------------------------------------
    # internal legs
    # ------------------------------------------------------------------
    def _bus_done(self, core: int, time: int) -> int:
        """Completion cycle of the core→LLC bus transfer."""
        if self._analysis:
            return time + self._analysis_bus_cycles
        return self.platform.bus.request(core, time)

    def _memory_read_done(self, core: int, time: int) -> int:
        """Completion cycle of a demand line fill from memory."""
        memctrl = self.platform.memctrl
        if self._analysis:
            memctrl.requests += 1
            memctrl.memory.reads += 1
            return time + self._analysis_memory_cycles
        return memctrl.read(core, time)

    def _post_memory_write(self, core: int, time: int) -> None:
        """Post a write-back toward memory (never stalls the core)."""
        memctrl = self.platform.memctrl
        if self._analysis:
            memctrl.worst_case_writeback(time)
        else:
            memctrl.write_back(core, time)

    # ------------------------------------------------------------------
    # public transactions
    # ------------------------------------------------------------------
    def fill(self, core: int, line: int, time: int, write: bool = False) -> int:
        """Serve an L1 demand miss for ``line`` issued at ``time``.

        Returns the cycle at which the line is available to the L1.
        ``write`` marks the LLC line dirty when the miss came from a
        store (write-allocate propagation).
        """
        if time < 0:
            raise SimulationError(f"fill at negative time {time}")
        if self._profiler is not None:
            return self._fill_profiled(core, line, time, write)
        arrival = self._bus_done(core, time)
        efl = self._efl
        if efl is not None:
            # Analysis mode: the artificial co-runners evicted at
            # maximum rate while this core computed locally; apply
            # their effect before looking up.  No-op in deployment.
            efl.inject_interference(arrival)

        lookup_done = arrival + self._llc_hit_latency
        llc_view = self._llc_view
        if llc_view.probe(core, line):
            llc_view.access(core, line, write=write)
            self.llc_hits += 1
            return lookup_done

        # LLC miss: the eviction is gated by the core's EAB.
        self.llc_misses += 1
        if efl is not None:
            grant = efl.grant_eviction(core, lookup_done)
            efl.record_eviction(core, grant)
        else:
            grant = lookup_done
        done = self._memory_read_done(core, grant)
        result = llc_view.access(core, line, write=write)
        if result.eviction is not None and result.eviction.dirty:
            self._post_memory_write(core, done)
        return done

    def _fill_profiled(self, core: int, line: int, time: int, write: bool) -> int:
        """The :meth:`fill` choreography with per-leg attribution.

        Kept as an exact mirror of the fast path — same calls, same
        order, same returned times — so profiling never perturbs the
        simulated timing (asserted by the hot-path equivalence tests).
        """
        prof = self._profiler
        t0 = perf_counter()
        arrival = self._bus_done(core, time)
        t1 = perf_counter()
        prof.account("bus", arrival - time, t1 - t0)
        efl = self._efl
        if efl is not None:
            efl.inject_interference(arrival)
            t2 = perf_counter()
            prof.account("efl", 0, t2 - t1)
            t1 = t2

        lookup_done = arrival + self._llc_hit_latency
        llc_view = self._llc_view
        if llc_view.probe(core, line):
            llc_view.access(core, line, write=write)
            self.llc_hits += 1
            prof.account("llc", self._llc_hit_latency, perf_counter() - t1)
            return lookup_done

        self.llc_misses += 1
        prof.account("llc", self._llc_hit_latency, perf_counter() - t1)
        if efl is not None:
            t1 = perf_counter()
            grant = efl.grant_eviction(core, lookup_done)
            efl.record_eviction(core, grant)
            # The EAB stall: cycles between LLC lookup completion and
            # the eviction grant.
            prof.account("efl", grant - lookup_done, perf_counter() - t1)
        else:
            grant = lookup_done
        t1 = perf_counter()
        done = self._memory_read_done(core, grant)
        result = llc_view.access(core, line, write=write)
        if result.eviction is not None and result.eviction.dirty:
            self._post_memory_write(core, done)
        prof.account("memctrl", done - grant, perf_counter() - t1)
        return done

    def l1_writeback(self, core: int, line: int, time: int) -> None:
        """Post a dirty L1 victim toward the LLC (write-no-allocate).

        If the line is still resident in the (non-inclusive) LLC it is
        updated and marked dirty; otherwise the write-back forwards to
        memory.  Posted: the core never waits for it.
        """
        prof = self._profiler
        t0 = perf_counter() if prof is not None else 0.0
        llc_view = self._llc_view
        if llc_view.probe(core, line):
            llc_view.access(core, line, write=True)
            if prof is not None:
                prof.account("llc", 0, perf_counter() - t0)
        else:
            self._post_memory_write(core, time)
            if prof is not None:
                prof.account("memctrl", 0, perf_counter() - t0)

    def store_through(self, core: int, line: int, time: int) -> int:
        """Write-through store (A2 ablation): bus + LLC write.

        The store updates the LLC if the line is resident (hit) and
        otherwise forwards to memory without allocating — the paper's
        footnote 5 notes that letting write-through stores allocate
        (and hence evict) in the LLC would make EFL stalls pervasive.
        Returns the cycle at which the store leaves the core's port.
        """
        if time < 0:
            raise SimulationError(f"store at negative time {time}")
        prof = self._profiler
        t0 = perf_counter() if prof is not None else 0.0
        arrival = self._bus_done(core, time)
        if prof is not None:
            t1 = perf_counter()
            prof.account("bus", arrival - time, t1 - t0)
            t0 = t1
        efl = self._efl
        if efl is not None:
            efl.inject_interference(arrival)
            if prof is not None:
                t1 = perf_counter()
                prof.account("efl", 0, t1 - t0)
                t0 = t1
        lookup_done = arrival + self._llc_hit_latency
        llc_view = self._llc_view
        if llc_view.probe(core, line):
            llc_view.access(core, line, write=True)
            self.llc_hits += 1
        else:
            self.llc_misses += 1
            self._post_memory_write(core, lookup_done)
        if prof is not None:
            prof.account("llc", self._llc_hit_latency, perf_counter() - t0)
        return lookup_done
