"""Compile-once trace programs: the cacheable, shareable half of a plan.

The batch engine's ``_TemplatePlan`` (:mod:`repro.sim.batch`) is two
very different things glued together.  One half is *trace-derived*:
walking the instruction stream, unifying the instruction/data line-id
space (``np.unique``), precomputing the fast-hit shortcut masks and the
per-instruction step metadata.  That half is expensive (it touches
every instruction), depends only on ``(trace, config)``, and is
read-only during execution.  The other half is *scenario-derived*
(CP way counts, analysis latency constants, MID) and costs nothing.

This module extracts the first half into :class:`TraceProgram` so it
can be

* **cached** — a :class:`PlanCache` keyed by ``(trace identity,
  config)`` lets a Figure-3/4 sweep compile each benchmark's trace
  once and reuse it across every MID and way-count scenario, and

* **shared** — :class:`SharedProgram` ships the program's arrays to
  shard workers zero-copy through one
  :mod:`multiprocessing.shared_memory` block; workers rebuild their
  :class:`TraceProgram` as read-only NumPy views over the mapping
  instead of unpickling (or recompiling) anything.

Determinism: a program holds no PRNG state and is immutable after
compilation, so executing lanes against a cached or shared program is
bit-identical to compiling from scratch — the property
``tests/test_shard.py`` asserts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cpu.isa import OpKind
from repro.cpu.pipeline import _EXEC_LATENCY_BY_KIND
from repro.errors import ConfigurationError
from repro.observability import current_telemetry

#: Array fields of a :class:`TraceProgram`, in shared-memory layout
#: order.  Everything else on a program is a small scalar that travels
#: inside the (pickled) :class:`SharedProgramHandle`.
SHARED_FIELDS = (
    "lines", "fetch_fast", "iline_ids", "mem_code", "mem_arg", "mem_store",
)


class TraceProgram:
    """The trace- and geometry-derived arrays of one batch plan.

    Immutable after :meth:`compile`; safe to share between campaigns,
    lane chunks and (via :class:`SharedProgram`) worker processes.

    Array semantics (``n`` = instructions, ``m`` = distinct lines):

    * ``lines[m]`` — sorted unified line ids (instruction + data);
    * ``fetch_fast[n]`` — IL1 hot-line shortcut per instruction;
    * ``iline_ids[n]`` — instruction-line index into ``lines``;
    * ``mem_code[n]`` — 0 = fixed execute latency, 1 = fast DL1 hit,
      2 = full DL1 access;
    * ``mem_arg[n]`` — execute cycles (code 0) or data-line index
      (code 2);
    * ``mem_store[n]`` — whether the access writes (code 2 only).
    """

    def __init__(
        self,
        task: str,
        instructions: int,
        fast_ihits: int,
        fast_dhits: int,
        lines: np.ndarray,
        fetch_fast: np.ndarray,
        iline_ids: np.ndarray,
        mem_code: np.ndarray,
        mem_arg: np.ndarray,
        mem_store: np.ndarray,
    ) -> None:
        self.task = task
        self.instructions = instructions
        self.fast_ihits = fast_ihits
        self.fast_dhits = fast_dhits
        self.lines = lines
        self.fetch_fast = fetch_fast
        self.iline_ids = iline_ids
        self.mem_code = mem_code
        self.mem_arg = mem_arg
        self.mem_store = mem_store
        self._steps: Optional[List[tuple]] = None
        # Shared-memory mapping backing the arrays (attached programs
        # only); pinned here so the views outlive this object's users.
        self._shm = None

    @classmethod
    def compile(cls, trace, config) -> "TraceProgram":
        """Compile ``trace`` under ``config`` into a batch program.

        The program depends on the config only through the line size,
        the replacement policy (EoM enables the fast-hit shortcuts)
        and the DL1 write policy — but caching keys on the whole
        config, which is cheap and cannot alias.
        """
        eom = config.replacement == "eom"
        shift = config.line_size.bit_length() - 1
        n = len(trace)
        # Iterate the trace, as the scalar CoreRunner does, so trace
        # subclasses with instrumented/failing iteration behave the same.
        stream = list(trace)
        if len(stream) != n:
            raise ConfigurationError(
                f"trace {trace.name!r} yields {len(stream)} instructions "
                f"but reports len() == {n}"
            )
        kinds = np.fromiter((int(k) for _, k, _ in stream), dtype=np.int64, count=n)
        pcs = np.fromiter((int(p) for p, _, _ in stream), dtype=np.int64, count=n)
        addrs = np.fromiter(
            (int(a) if a is not None else 0 for _, _, a in stream),
            dtype=np.int64,
            count=n,
        )
        is_mem = (kinds == int(OpKind.LOAD)) | (kinds == int(OpKind.STORE))
        is_store = kinds == int(OpKind.STORE)
        ilines = pcs >> shift
        dlines = addrs >> shift
        # One unified line-id space across both address streams: the
        # LLC sees either, so its placement matrix covers the union.
        lines = np.unique(np.concatenate([ilines, dlines[is_mem]]))
        iline_ids = np.searchsorted(lines, ilines).astype(np.int64)
        dline_ids = np.searchsorted(lines, dlines).astype(np.int64)

        # Hot-line shortcut flags (CoreRunner._shortcut_il1/_shortcut_dl1):
        # with stateless EoM replacement the last-line latches update on
        # every access, so the fast-hit pattern is a pure function of
        # the trace — identical in every lane.
        fetch_fast = np.zeros(n, dtype=bool)
        if eom:
            fetch_fast[1:] = ilines[1:] == ilines[:-1]
        data_fast = np.zeros(n, dtype=bool)
        if eom and config.dl1_write_back:
            mem_pos = np.nonzero(is_mem)[0]
            if mem_pos.size:
                dm = dlines[mem_pos]
                prev = np.concatenate(([np.int64(-1)], dm[:-1]))
                data_fast[mem_pos] = (~is_store[mem_pos]) & (dm == prev)

        mem_code = np.zeros(n, dtype=np.int8)
        mem_arg = np.zeros(n, dtype=np.int64)
        mem_store = np.zeros(n, dtype=bool)
        mem_code[is_mem & data_fast] = 1
        full = is_mem & ~data_fast
        mem_code[full] = 2
        mem_arg[full] = dline_ids[full]
        mem_store[full] = is_store[full]
        nonmem = ~is_mem
        for kind in np.unique(kinds[nonmem]).tolist():
            # IndexError / TypeError for unknown kinds propagate, just
            # as the scalar per-instruction lookup would.
            mem_arg[nonmem & (kinds == kind)] = int(_EXEC_LATENCY_BY_KIND[kind])
        return cls(
            task=trace.name,
            instructions=n,
            fast_ihits=int(fetch_fast.sum()),
            fast_dhits=int(data_fast.sum()),
            lines=lines,
            fetch_fast=fetch_fast,
            iline_ids=iline_ids,
            mem_code=mem_code,
            mem_arg=mem_arg,
            mem_store=mem_store,
        )

    @property
    def steps(self) -> List[tuple]:
        """Per-instruction ``(fetch_fast, iline, code, arg, store)``
        tuples for the Python-level sweep loop (built lazily, cached).

        Built from the arrays on both the parent and the worker side,
        so a shared program reconstructs the exact tuples a locally
        compiled one holds.
        """
        if self._steps is None:
            self._steps = list(zip(
                self.fetch_fast.tolist(),
                self.iline_ids.tolist(),
                self.mem_code.tolist(),
                self.mem_arg.tolist(),
                self.mem_store.tolist(),
            ))
        return self._steps

    def close(self) -> None:
        """Release a shared-memory-backed program's mapping.

        Drops the array views first so the mapping can unmap cleanly;
        the program must not be used afterwards.  No-op for locally
        compiled programs.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        for name in SHARED_FIELDS:
            setattr(self, name, None)
        self._steps = None
        shm.close()


class _CacheEntry:
    """One plan-cache slot: the trace it pins and what was compiled.

    ``trace`` is held strongly so the identity key can never be
    recycled while the entry (or a pin on it) lives.  ``program`` and
    ``kernel`` compile lazily and independently — a pin taken before
    the first campaign creates the slot without compiling anything.
    """

    __slots__ = ("trace", "program", "kernel", "pins")

    def __init__(self, trace) -> None:
        self.trace = trace
        self.program: Optional[TraceProgram] = None
        self.kernel = None
        self.pins = 0


class PlanCache:
    """LRU cache of compiled trace plans keyed by (trace, config).

    The key uses the trace's *identity* (compiling content fingerprints
    would cost as much as compiling the program) plus the config's
    value.  Each entry pins its trace object, so an id can never be
    recycled while its entry lives.  ``hits``/``misses`` count program
    lookups (``kernel_hits``/``kernel_misses`` the kernel-plan ones),
    letting sweeps assert the compile-once property.

    **Pinning:** a sweep that must not lose its working set mid-row —
    a :class:`~repro.analysis.experiments.PWCETTable` scanning one
    benchmark across many scenarios — takes :meth:`pin` on the
    ``(trace, config)`` it is using and releases it with :meth:`unpin`
    when the row completes.  Eviction skips pinned entries, even if
    that temporarily holds the cache above ``max_entries``; capacity is
    re-enforced when the pin releases.  Unpinning a key that holds no
    pin is a caller bug and raises (a silently ignored double-unpin is
    how stale-pin leaks hide).
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"plan cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.kernel_hits = 0
        self.kernel_misses = 0
        #: Pin accounting: a pin *hit* protects an entry that already
        #: holds a compiled program (the pin saved a potential
        #: recompile); a pin *miss* creates or pre-warms an empty slot.
        self.pin_hits = 0
        self.pin_misses = 0
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(trace, config) -> tuple:
        return (id(trace), repr(config))

    def _slot(self, trace, config) -> _CacheEntry:
        """The live entry for ``(trace, config)``, created if absent.

        A stale slot (same id, different object — impossible while the
        old entry pinned its trace, but checked defensively) is
        replaced wholesale, dropping any pins with the dead trace.
        """
        key = self._key(trace, config)
        entry = self._entries.get(key)
        if entry is None or entry.trace is not trace:
            entry = _CacheEntry(trace)
            self._entries[key] = entry
        self._entries.move_to_end(key)
        return entry

    def _evict(self) -> None:
        """Drop least-recently-used unpinned entries over capacity.

        Pinned entries are never dropped: a pinned-but-in-use program
        disappearing mid-sweep would silently recompile (or, for a
        shared program, dangle); the cache instead rides above
        ``max_entries`` until the pins release.
        """
        if len(self._entries) <= self.max_entries:
            return
        for key in list(self._entries):
            entry = self._entries[key]
            if entry.pins == 0:
                del self._entries[key]
                if len(self._entries) <= self.max_entries:
                    return

    def program(self, trace, config) -> TraceProgram:
        """The compiled program of ``(trace, config)``; compile on miss."""
        telemetry = current_telemetry()
        entry = self._slot(trace, config)
        if entry.program is not None:
            self.hits += 1
            if telemetry is not None:
                telemetry.metrics.counter("plan_cache_hits").inc()
            return entry.program
        self.misses += 1
        if telemetry is not None:
            telemetry.metrics.counter("plan_cache_misses").inc()
        entry.program = TraceProgram.compile(trace, config)
        self._evict()
        return entry.program

    def kernel_plan(self, trace, config, compiler):
        """The ``(program, kernel plan)`` pair of ``(trace, config)``.

        ``compiler`` is :func:`repro.sim.kernels.compile_kernel_plan`
        (passed in to keep this module free of a dependency on the
        kernel layer); it receives ``(program, config)`` and runs only
        on a kernel-plan miss.  The program itself is resolved through
        :meth:`program` and returned alongside the kernel so the
        caller never performs a second program lookup — a kernel
        campaign costs exactly one program hit/miss, the same as the
        batch engine's, which is what lets sweeps assert compile-once
        without knowing which engine ran them.
        """
        telemetry = current_telemetry()
        program = self.program(trace, config)
        entry = self._slot(trace, config)
        if entry.kernel is not None:
            self.kernel_hits += 1
            if telemetry is not None:
                telemetry.metrics.counter("kernel_plan_hits").inc()
            return program, entry.kernel
        self.kernel_misses += 1
        if telemetry is not None:
            telemetry.metrics.counter("kernel_plan_misses").inc()
        entry.kernel = compiler(program, config)
        return program, entry.kernel

    def peek_kernel_stats(self, trace, config) -> Optional[dict]:
        """Compile stats of the cached kernel plan, or ``None``.

        A read-only peek for observability surfaces: no hit/miss
        counters move, the LRU order does not change and nothing
        compiles — reporting must not perturb the compile-once
        accounting the sweeps assert on.
        """
        entry = self._entries.get(self._key(trace, config))
        if entry is None or entry.trace is not trace or entry.kernel is None:
            return None
        return dict(entry.kernel.stats)

    # -- pinning -------------------------------------------------------
    def pin(self, trace, config) -> None:
        """Protect ``(trace, config)`` from eviction until unpinned."""
        entry = self._slot(trace, config)
        if entry.program is not None or entry.kernel is not None:
            self.pin_hits += 1
        else:
            self.pin_misses += 1
        entry.pins += 1

    def unpin(self, trace, config) -> None:
        """Release one :meth:`pin`; re-enforce capacity if it was the
        last.  Raises on a key that holds no pin."""
        key = self._key(trace, config)
        entry = self._entries.get(key)
        if entry is None or entry.trace is not trace or entry.pins <= 0:
            raise ConfigurationError(
                f"plan cache unpin without a matching pin for trace "
                f"{getattr(trace, 'name', trace)!r}"
            )
        entry.pins -= 1
        if entry.pins == 0:
            self._evict()

    def pinned(self, trace, config) -> bool:
        """Whether ``(trace, config)`` currently holds any pin."""
        key = self._key(trace, config)
        entry = self._entries.get(key)
        return entry is not None and entry.trace is trace and entry.pins > 0

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` counters (for delta accounting)."""
        return (self.hits, self.misses)

    def clear(self) -> None:
        """Drop every unpinned entry (counters and pins are kept)."""
        for key in list(self._entries):
            if self._entries[key].pins == 0:
                del self._entries[key]


#: Process-wide default cache: campaigns that do not thread their own
#: cache (e.g. ad-hoc ``collect_execution_times`` calls) still reuse
#: compiled programs across invocations on the same trace objects.
GLOBAL_PLAN_CACHE = PlanCache()


# ----------------------------------------------------------------------
# zero-copy plan shipping over multiprocessing.shared_memory
# ----------------------------------------------------------------------
def _attach_untracked(name: str):
    """Attach to an existing block without resource-tracker ownership.

    The creating process owns the block's lifetime (close + unlink);
    an attaching worker must not register it with its resource tracker
    (bpo-39959): under ``fork`` every worker shares the parent's
    tracker, whose name cache is a plain set, so extra register /
    unregister pairs corrupt the parent's own registration.  Python
    3.13+ exposes ``track=False``; older versions suppress the
    registration call for the duration of the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedProgramHandle:
    """Picklable recipe for attaching a :class:`SharedProgram`.

    Carries the block name, the array layout (field, dtype, shape,
    byte offset) and the program's scalar fields — a few hundred bytes
    regardless of trace size, versus pickling megabytes of step arrays
    per shard.
    """

    def __init__(
        self,
        name: str,
        layout: Tuple[Tuple[str, str, Tuple[int, ...], int], ...],
        task: str,
        instructions: int,
        fast_ihits: int,
        fast_dhits: int,
    ) -> None:
        self.name = name
        self.layout = layout
        self.task = task
        self.instructions = instructions
        self.fast_ihits = fast_ihits
        self.fast_dhits = fast_dhits

    def attach(self) -> TraceProgram:
        """Rebuild the program as read-only views over the mapping.

        The returned program pins the mapping (``program._shm``);
        workers let the OS reclaim it at exit, in-process users call
        :meth:`TraceProgram.close`.
        """
        shm = _attach_untracked(self.name)
        arrays: Dict[str, np.ndarray] = {}
        for field, dtype, shape, offset in self.layout:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            view.flags.writeable = False
            arrays[field] = view
        program = TraceProgram(
            task=self.task,
            instructions=self.instructions,
            fast_ihits=self.fast_ihits,
            fast_dhits=self.fast_dhits,
            **arrays,
        )
        program._shm = shm
        return program


class SharedProgram:
    """One program's arrays packed into a single shared-memory block.

    Created by the dispatching parent; disposed by the same parent
    after the last wave (workers only ever attach).  The layout packs
    the :data:`SHARED_FIELDS` arrays back to back at 8-byte-aligned
    offsets.
    """

    def __init__(self, shm, handle: SharedProgramHandle) -> None:
        self._shm = shm
        self.handle = handle

    @classmethod
    def create(cls, program: TraceProgram) -> "SharedProgram":
        from multiprocessing import shared_memory

        arrays = [
            (field, np.ascontiguousarray(getattr(program, field)))
            for field in SHARED_FIELDS
        ]
        layout = []
        offset = 0
        for field, array in arrays:
            offset = (offset + 7) & ~7  # 8-byte alignment
            layout.append((field, array.dtype.str, array.shape, offset))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        try:
            for (field, array), (_f, dtype, shape, off) in zip(arrays, layout):
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off
                )
                view[...] = array
                del view  # views must not outlive create(): close() would fail
        except Exception:
            shm.close()
            shm.unlink()
            raise
        handle = SharedProgramHandle(
            name=shm.name,
            layout=tuple(layout),
            task=program.task,
            instructions=program.instructions,
            fast_ihits=program.fast_ihits,
            fast_dhits=program.fast_dhits,
        )
        return cls(shm, handle)

    def dispose(self) -> None:
        """Close and unlink the block (creator side; safe to call twice)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass
