"""Grouped-opcode kernel plans: a ``TraceProgram`` lowered to fused ops.

The batch engine (:mod:`repro.sim.batch`) already turned R scalar runs
into lock-step NumPy lanes, but its sweep still dispatches one Python
loop iteration — roughly ten NumPy calls — per trace instruction, and
its PRNG draws go through generic masked rejection sampling, another
~15 NumPy calls each.  Profiling an EFL campaign shows those two
overheads *are* the runtime: the arithmetic on 1000-lane vectors is
nearly free; the per-call constant cost is not.

This module compiles a :class:`~repro.sim.plancache.TraceProgram` into
a **kernel plan** that attacks both:

**1. Max-plus chain fusion (the grouped opcodes).**  Between cache
accesses, the in-order pipeline's recurrence is a max-plus affine map
over the five state times ``(end_fetch, start_decode, start_mem,
start_wb, end_wb)`` — every deterministic phase is ``out = max(in_j +
w_j)`` with compile-time constants.  Max-plus maps compose, so a
maximal run of deterministic phases — fetch-fast-hit streaks,
non-memory ALU stretches, fast hits to already-resident data lines —
collapses into **one** precomputed matrix, applied at runtime with a
single gather + ``np.maximum.reduceat`` regardless of how many
instructions it fused.  Irreducible steps — IL1 accesses, full DL1
accesses, and through them the CRG injection points, EoM victim draws
and first-touch fills — fall back to exactly the interpreter's step
code over the same :class:`~repro.sim.batch._LaneEnv` lane state.
Composition is over exact ``int64`` add/max, so fusion cannot change a
single bit of the result.

**2. Draw-stream linearisation.**  Every hardware PRNG the analysis
hot path consumes draws with *compile-time-constant parameters*: a
cache's victim draws are always ``randrange(k)`` for its fixed
candidate count, an ACU reload is always ``randint(0, 2*MID)``, a
CRG's stream alternates ``randrange(num_sets)`` / ``randint(0,
2*MID)``.  Each lane's draw *sequence* from one generator is therefore
known ahead of time even though the *schedule* (which step consumes
the next draw) is not.  The kernel precomputes each stream as a
``[rank, lane]`` block of full-width unmasked draws and consumes it
through per-lane cursors — three NumPy calls per draw site instead of
~15.  Per lane, the values consumed are exactly the values the masked
on-demand draws would produce (MWC streams are private per lane per
generator; drawing ahead changes only the generator's final state,
which nothing observes), so bit-identity is again structural.  A CRG's
whole firing timeline additionally becomes a cumulative-sum table, so
its drain loop touches only the shared LLC victim stream at runtime.

An optional Numba ``njit`` path accelerates the chain application when
numba is importable; the probe degrades silently (pure NumPy) when it
is not — this container and CI run the NumPy path.

Compilation quality is observable: :func:`compile_kernel_plan` bumps
per-group-class counters (``kernel_steps_fetch_streak``,
``kernel_steps_alu``, ``kernel_steps_data_fast``,
``kernel_steps_ifetch``, ``kernel_steps_dmem``, ``kernel_chains``) on
the attached :class:`~repro.observability.MetricsRegistry`.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.observability import current_telemetry
from repro.sim.batch import (
    _LaneACU,
    _LaneCache,
    _TemplatePlan,
)
from repro.sim.plancache import GLOBAL_PLAN_CACHE, PlanCache
from repro.utils.rng import MWCArray
from repro.utils.xp import xp

#: Kernel state rows: end_fetch, start_decode, start_mem, start_wb,
#: end_wb, plus the transient end_mem written by DL1-access ops and
#: read only by the immediately following write-back phase.
EF, SD, SM, SW, EW, EM = range(6)
N_STATE = 6


# ----------------------------------------------------------------------
# numba feature probe (optional acceleration, silent degrade)
# ----------------------------------------------------------------------
def _probe_numba():
    """An ``njit``-compiled chain applier, or ``None`` without numba."""
    try:
        from numba import njit  # type: ignore
    except Exception:  # pragma: no cover — numba not installed here
        return None

    @njit(cache=False)  # pragma: no cover — exercised only with numba
    def chain_apply(state, out_rows, src, weights, starts, scratch):
        m = out_rows.shape[0]
        total = src.shape[0]
        lanes = state.shape[1]
        for i in range(m):
            lo = starts[i]
            hi = starts[i + 1] if i + 1 < m else total
            for lane in range(lanes):
                best = state[src[lo], lane] + weights[lo]
                for t in range(lo + 1, hi):
                    value = state[src[t], lane] + weights[t]
                    if value > best:
                        best = value
                scratch[i, lane] = best
        for i in range(m):
            row = out_rows[i]
            for lane in range(lanes):
                state[row, lane] = scratch[i, lane]

    return chain_apply


_NUMBA_CHAIN = _probe_numba()


def numba_available() -> bool:
    """Whether the optional numba chain applier compiled at import."""
    return _NUMBA_CHAIN is not None


# ----------------------------------------------------------------------
# kernel ops
# ----------------------------------------------------------------------
#: Max-plus padding weight: added to any state time it stays far below
#: every real candidate without approaching int64 overflow.
_PAD_WEIGHT = -(1 << 60)


class ChainOp:
    """One fused max-plus map over the kernel state matrix.

    ``out_rows[i]`` receives ``max(state[src[t]] + weights[t])`` over
    the segment ``starts[i] <= t < starts[i+1]`` — the composed effect
    of every deterministic pipeline phase the chain swallowed.

    Segments are additionally padded to one rectangular ``(rows,
    width)`` block (``pad_src`` / ``pad_wcol``): padding terms carry
    :data:`_PAD_WEIGHT`, so the runtime reduction is a dense
    ``max(axis=1)`` over the reshaped gather — far cheaper than a
    ragged ``reduceat``.  The ragged arrays stay for the numba path.
    """

    kind = "chain"
    __slots__ = ("out_rows", "src", "weights", "wcol", "starts", "fused",
                 "pad_src", "pad_wcol", "rows_n", "width")

    def __init__(self, out_rows, src, weights, starts, fused: int) -> None:
        self.out_rows = out_rows
        self.src = src
        self.weights = weights
        self.wcol = weights[:, None]
        self.starts = starts
        self.fused = fused
        rows_n = out_rows.shape[0]
        bounds = np.append(starts, src.shape[0])
        width = int((bounds[1:] - bounds[:-1]).max())
        pad_src = np.zeros((rows_n, width), dtype=np.intp)
        pad_w = np.full((rows_n, width), _PAD_WEIGHT, dtype=np.int64)
        for i in range(rows_n):
            lo, hi = bounds[i], bounds[i + 1]
            pad_src[i, : hi - lo] = src[lo:hi]
            pad_w[i, : hi - lo] = weights[lo:hi]
        self.pad_src = pad_src.reshape(-1)
        self.pad_wcol = pad_w.reshape(-1, 1)
        self.rows_n = rows_n
        self.width = width


class FetchOp:
    """Irreducible IL1 instruction fetch (possible miss + fill)."""

    kind = "fetch"
    __slots__ = ("line",)

    def __init__(self, line: int) -> None:
        self.line = line


class MemOp:
    """Irreducible full DL1 access (possible miss, fill, write-back)."""

    kind = "mem"
    __slots__ = ("line", "store")

    def __init__(self, line: int, store: bool) -> None:
        self.line = line
        self.store = store


#: Fusion window: close a segment once it covers this many accesses.
#: Small enough that one non-resident line forfeits little fused work
#: (the fallback replays the whole window per-op), large enough that
#: the guard reduction amortises over many skipped dispatches.  Swept
#: empirically on the EFL campaign shape: 4 beats both 6 and 8 — small
#: windows pass their guard earlier in the warmup prefix, and the
#: extra guard checks are two cheap gathers.
_SEGMENT_ACCESS_CAP = 4

#: Segments below this access count are not worth the guard check: the
#: fused apply replaces too few per-op dispatches to pay for it.
_SEGMENT_ACCESS_MIN = 2


class SegmentOp:
    """A fused megakernel segment: a run of ops with an all-hit fast path.

    Covers ``ops[start:end]`` of the plan — a ``[chain?, access]*``
    run closed just after a chain item, where the transient ``EM`` row
    is dead.  Only compiled for EoM configs, whose caches keep
    ``[line, lane]`` residency maps.

    At runtime the guard is two reductions: every IL1 line and every
    DL1 line the segment touches resident in *every* lane.  When it
    holds, every access inside the window is a fast L1 hit for every
    lane, and under EoM a hit mutates nothing but counters — no tags,
    no residency, no draws, no CRG arrivals (those fire only inside
    miss fills).  The whole window therefore collapses to ``chain`` —
    every deterministic phase *and* every access's hit latency
    composed into one max-plus map at compile time — plus deferred
    counter updates (access counts, store-line dirty rows).  When the
    guard fails, the covered ops execute one by one, bit-identically;
    segment boundaries align with op boundaries, so both paths agree.
    """

    kind = "segment"
    __slots__ = ("start", "end", "ops", "chain", "il1_lines", "dl1_lines",
                 "store_lines", "il1_accesses", "dl1_accesses", "n_lines")

    def __init__(self, start: int, end: int, ops: List[object],
                 chain: Optional[ChainOp], il1_list: List[int],
                 dl1_list: List[int], store_list: List[int]) -> None:
        self.start = start
        self.end = end
        self.ops = ops
        self.chain = chain
        self.il1_lines = np.unique(np.asarray(il1_list, dtype=np.intp))
        self.dl1_lines = np.unique(np.asarray(dl1_list, dtype=np.intp))
        self.store_lines = np.unique(np.asarray(store_list, dtype=np.intp))
        self.il1_accesses = len(il1_list)
        self.dl1_accesses = len(dl1_list)
        # Guard constant: residency tallies never exceed the lane
        # count, so "every touched line resident in every lane" is one
        # summed tally hitting lanes * n_lines exactly.
        self.n_lines = int(self.il1_lines.size + self.dl1_lines.size)


class KernelPlan:
    """A compiled grouped-opcode program: ops + compilation stats.

    Depends only on ``(trace, config)`` — exactly the
    :class:`~repro.sim.plancache.TraceProgram` key — so the
    :class:`~repro.sim.plancache.PlanCache` caches it alongside the
    program it lowers.

    ``segments`` are the fused megakernel windows
    (:class:`SegmentOp`), each covering a slice of ``ops``;
    ``schedule`` interleaves them with the uncovered op spans in
    program order, which is exactly what the runtime walks.
    """

    __slots__ = ("ops", "stats", "instructions", "segments", "schedule",
                 "hints")

    def __init__(self, ops: List[object], stats: dict, instructions: int,
                 segments: Optional[List[SegmentOp]] = None) -> None:
        self.ops = ops
        self.stats = stats
        self.instructions = instructions
        # Warm-repeat grow hints: {(core, scenario): {stream: rows}}
        # high-water marks recorded by execute_lanes, so a repeated
        # campaign pre-draws each linearised stream in one block
        # instead of rediscovering its length through doubling copies.
        # Rows consumed are per-lane counts, so the hint transfers
        # across lane widths (adaptive waves, other R).
        self.hints: dict = {}
        self.segments = segments if segments is not None else []
        schedule: List[tuple] = []
        position = 0
        for segment in self.segments:
            if segment.start > position:
                schedule.append((None, ops[position:segment.start]))
            schedule.append((segment, segment.ops))
            position = segment.end
        if position < len(ops):
            schedule.append((None, ops[position:]))
        self.schedule = schedule

    def chains(self):
        """Every :class:`ChainOp` — standalone and segment-composed."""
        for op in self.ops:
            if op.kind == "chain":
                yield op
        for segment in self.segments:
            if segment.chain is not None:
                yield segment.chain


def _identity_matrix() -> List[dict]:
    return [{row: 0} for row in range(N_STATE)]


def _emit_chain(matrix: List[dict], fused: int, dead: frozenset,
                links: Optional[dict] = None,
                pool: Optional[dict] = None) -> Optional[ChainOp]:
    """Lower a composed max-plus matrix to a reduceat-ready op.

    Identity rows are skipped (the state they govern is untouched), as
    are the ``dead`` rows — outputs the next op overwrites before
    anything reads them.  ``EM`` is always dead: its only reader is
    the write-back phase, which every compilation path re-derives from
    a fresher write before reading.

    ``links`` carries affine invariants of the chain's *base* state —
    ``{dep: (base, offset)}`` meaning ``state[dep] == state[base] +
    offset`` holds on entry along every path (e.g. ``EW == SW + 1``
    after any complete instruction).  A row holding terms on both ends
    of a link collapses them into one: ``max(state[base] + wa,
    state[dep] + wb) == state[base] + max(wa, wb + offset)`` exactly,
    so pruning narrows the runtime gather without touching a bit.

    ``pool`` deduplicates structurally identical chains (loop bodies
    re-emit the same few maps thousands of times), letting the runtime
    attach per-sweep scratch to the handful of distinct ops.
    """
    out_rows: List[int] = []
    src: List[int] = []
    weights: List[int] = []
    starts: List[int] = []
    for row in range(N_STATE):
        if row == EM or row in dead:
            continue
        terms = matrix[row]
        if len(terms) == 1 and terms.get(row) == 0:
            continue
        if links:
            terms = dict(terms)
            for dep, (base, offset) in links.items():
                if dep in terms and base in terms:
                    terms[base] = max(terms[base], terms[dep] + offset)
                    del terms[dep]
        starts.append(len(src))
        out_rows.append(row)
        for base in sorted(terms):
            src.append(base)
            weights.append(terms[base])
    if not out_rows:
        return None
    if pool is not None:
        key = (tuple(out_rows), tuple(src), tuple(weights), tuple(starts),
               fused)
        op = pool.get(key)
        if op is not None:
            return op
    op = ChainOp(
        np.array(out_rows, dtype=np.intp),
        np.array(src, dtype=np.intp),
        np.array(weights, dtype=np.int64),
        np.array(starts, dtype=np.intp),
        fused,
    )
    if pool is not None:
        pool[key] = op
    return op


#: Most recent compile's fusion ratio, exposed as the
#: ``kernel_fusion_ratio`` gauge (ratios are not additive, so a
#: counter cannot carry them; the per-plan value lives in
#: ``KernelPlan.stats["fusion_ratio"]``).
_LAST_FUSION_RATIO = 0.0


def _fusion_ratio_gauge() -> float:
    return _LAST_FUSION_RATIO


def compile_kernel_plan(program, config) -> KernelPlan:
    """Lower ``program`` under ``config`` into a :class:`KernelPlan`.

    Scans the instruction steps once, accumulating deterministic
    pipeline phases into a composing max-plus matrix and flushing it to
    a :class:`ChainOp` whenever an irreducible cache access interrupts
    the run.  Decode phases compose into the chain *before* a DL1
    access (the access reads the decoded time), write-back phases
    *after* it (they read the access's ``end_mem``).

    A second, parallel composition drives the **megakernel fusion
    pass** (EoM configs only): the same phases, plus every access's
    *hit* form, compose into a per-segment matrix that keeps growing
    across chain/access boundaries.  Whenever the open window covers
    :data:`_SEGMENT_ACCESS_CAP` accesses (and at program end), it is
    closed into a :class:`SegmentOp` at a chain boundary — where the
    transient ``EM`` row is dead — so the runtime can replace the
    whole window with one composed chain whenever every touched line
    is resident in every lane.
    """
    l1_hit = int(config.l1_hit_latency)
    ops: List[object] = []
    stats = {
        "fetch_streak": 0,  # fetch-fast-hit phases fused into chains
        "alu": 0,           # non-memory execute phases fused
        "data_fast": 0,     # resident-line fast-hit phases fused
        "ifetch": 0,        # irreducible IL1 access steps
        "dmem": 0,          # irreducible DL1 access steps
        "chains": 0,
        "fused_phases": 0,
        "segments": 0,        # fused megakernel windows
        "fused_accesses": 0,  # accesses covered by those windows
        "fusion_ratio": 0.0,  # fused_accesses / (ifetch + dmem)
    }
    matrix = _identity_matrix()
    dirty = False
    fused = 0
    # Affine invariants of the *current* runtime state:
    # {dep: (base, offset)} meaning state[dep] == state[base] + offset.
    # A chain's src rows index its base state, so each chain captures
    # the snapshot valid when its base is established — after any
    # runtime op (FetchOp/MemOp) separating it from the last flush,
    # which is exactly the first assign() into the fresh matrix.
    links: dict = {}
    chain_links: dict = {}
    base_pending = True
    pool: dict = {}
    # Segment composition state: only EoM caches keep the residency
    # maps the runtime guard needs, and only EoM hits are free of
    # side effects (LRU hits restamp), so fusion is EoM-only.
    fusable = config.replacement == "eom"
    segments: List[SegmentOp] = []
    seg_matrix = _identity_matrix()
    seg_fused = 0
    seg_start = 0
    seg_links: dict = {}
    seg_il1: List[int] = []
    seg_dl1: List[int] = []
    seg_store: List[int] = []

    def write_row(row: int) -> None:
        # A write to `row` invalidates any invariant naming it.
        links.pop(row, None)
        for dep in [d for d, (b, _o) in links.items() if b == row]:
            del links[dep]

    def compose(target: List[dict], out: int, terms) -> None:
        row: dict = {}
        for source, weight in terms:
            for base, base_weight in target[source].items():
                candidate = base_weight + weight
                previous = row.get(base)
                if previous is None or previous < candidate:
                    row[base] = candidate
        target[out] = row

    def assign(out: int, terms) -> None:
        nonlocal dirty, fused, seg_fused, chain_links, base_pending
        if base_pending:
            chain_links = dict(links)
            base_pending = False
        compose(matrix, out, terms)
        write_row(out)
        dirty = True
        fused += 1
        if fusable:
            compose(seg_matrix, out, terms)
            seg_fused += 1

    _LIVE = frozenset()
    #: A DL1-access op recomputes start_mem from decode/write-back
    #: state without reading it, so a chain feeding one need not
    #: materialise its own start_mem.
    _PRE_MEM_DEAD = frozenset((SM,))
    #: Past the last instruction only end_wb (the run's execution
    #: time) is ever read.
    _FINAL_DEAD = frozenset((EF, SD, SM, SW))

    def seg_boundary(dead: frozenset, final: bool = False) -> None:
        """Maybe close the open segment (called at chain boundaries).

        The segment chain is emitted with the same dead-row set as the
        chain just flushed, so the fused and per-op paths leave
        identical live state at the boundary.
        """
        nonlocal seg_matrix, seg_fused, seg_start, seg_links
        accesses = len(seg_il1) + len(seg_dl1)
        if accesses >= _SEGMENT_ACCESS_CAP or (
                final and accesses >= _SEGMENT_ACCESS_MIN):
            chain = _emit_chain(seg_matrix, seg_fused, dead,
                                links=seg_links, pool=pool)
            segments.append(SegmentOp(
                seg_start, len(ops), ops[seg_start:len(ops)], chain,
                seg_il1, seg_dl1, seg_store,
            ))
            stats["segments"] += 1
            stats["fused_accesses"] += accesses
            seg_matrix = _identity_matrix()
            seg_fused = 0
            seg_start = len(ops)
            # The new segment's base is this boundary state (its
            # accesses compose in hit form, before any runtime write).
            seg_links = dict(links)
            seg_il1.clear()
            seg_dl1.clear()
            seg_store.clear()

    def flush(dead: frozenset = _LIVE) -> None:
        nonlocal matrix, dirty, fused, base_pending
        if dirty:
            op = _emit_chain(matrix, fused, dead,
                             links=chain_links, pool=pool)
            if op is not None:
                ops.append(op)
                stats["chains"] += 1
                stats["fused_phases"] += fused
        matrix = _identity_matrix()
        dirty = False
        fused = 0
        base_pending = True
        if fusable:
            seg_boundary(dead)

    for fetch_fast, iline, mem_code, mem_arg, is_store in program.steps:
        if fetch_fast:
            # start_fetch = max(end_fetch, start_decode); +L.
            assign(EF, ((EF, l1_hit), (SD, l1_hit)))
            stats["fetch_streak"] += 1
        else:
            flush()
            ops.append(FetchOp(iline))
            write_row(EF)
            stats["ifetch"] += 1
            if fusable:
                # The access's all-hit form, for the segment chain.
                seg_il1.append(iline)
                compose(seg_matrix, EF, ((EF, l1_hit), (SD, l1_hit)))
                seg_fused += 1
        # Decode: start_decode = max(end_fetch, start_mem).
        assign(SD, ((EF, 0), (SM, 0)))
        if mem_code == 2:
            flush(_PRE_MEM_DEAD)
            ops.append(MemOp(mem_arg, bool(is_store)))
            write_row(SM)
            write_row(EM)
            stats["dmem"] += 1
            if fusable:
                seg_dl1.append(mem_arg)
                if is_store:
                    seg_store.append(mem_arg)
                compose(seg_matrix, SM, ((SD, 1), (SW, 0)))
                compose(seg_matrix, EM, ((SM, l1_hit),))
                seg_fused += 2
        else:
            # start_mem = max(end_decode, start_wb); end_mem = +latency.
            latency = mem_arg if mem_code == 0 else l1_hit
            assign(SM, ((SD, 1), (SW, 0)))
            assign(EM, ((SM, latency),))
            links[EM] = (SM, latency)
            stats["alu" if mem_code == 0 else "data_fast"] += 1
        # Write-back: start_wb = max(end_mem, end_wb); end_wb = +1.
        assign(SW, ((EM, 0), (EW, 0)))
        assign(EW, ((SW, 1),))
        links[EW] = (SW, 1)
    flush(_FINAL_DEAD)
    if fusable:
        seg_boundary(_FINAL_DEAD, final=True)
    total_accesses = stats["ifetch"] + stats["dmem"]
    if total_accesses:
        stats["fusion_ratio"] = stats["fused_accesses"] / total_accesses

    telemetry = current_telemetry()
    if telemetry is not None:
        metrics = telemetry.metrics
        for group in ("fetch_streak", "alu", "data_fast", "ifetch", "dmem"):
            if stats[group]:
                metrics.counter(f"kernel_steps_{group}").inc(stats[group])
        if stats["chains"]:
            metrics.counter("kernel_chains").inc(stats["chains"])
        if stats["segments"]:
            metrics.counter("kernel_segments_fused").inc(stats["segments"])
            metrics.counter("kernel_fused_accesses").inc(
                stats["fused_accesses"]
            )
        global _LAST_FUSION_RATIO
        _LAST_FUSION_RATIO = stats["fusion_ratio"]
        metrics.gauge("kernel_fusion_ratio", _fusion_ratio_gauge)
    return KernelPlan(ops, stats, program.instructions, segments)


# ----------------------------------------------------------------------
# draw-stream linearisation
# ----------------------------------------------------------------------
class _DrawCursor:
    """Precomputed draw block for one constant-parameter MWC stream.

    ``take(mask)`` returns each lane's next value and advances only the
    masked lanes' cursors — the same per-lane consumption the masked
    on-demand draw performs, at a fraction of the call count.  The
    block grows geometrically; the countdown bounds how many takes can
    pass before any lane could outrun it (each take advances a lane's
    cursor by at most one).
    """

    __slots__ = ("rng", "n", "lanes", "_ids", "_block", "_cursor",
                 "_countdown")

    def __init__(self, rng: MWCArray, n: int, lanes: int,
                 initial_rows: int = 8) -> None:
        self.rng = rng
        self.n = n
        self.lanes = lanes
        self._ids = xp.arange(lanes)
        self._block = xp.empty((0, lanes), dtype=np.int64)
        self._cursor = xp.zeros(lanes, dtype=np.int64)
        self._countdown = 0
        self._grow(initial_rows)

    def _grow(self, rows: int) -> None:
        # One block draw: bit-identical to `rows` successive
        # randrange_unmasked calls, at a fraction of the call count.
        # The draw lands directly in the grown block (typed int64 by
        # the destination) — no temporary, no cast pass.
        old = self._block
        filled = old.shape[0]
        grown = xp.empty((filled + rows, self.lanes), dtype=np.int64)
        grown[:filled] = old
        self.rng.randrange_block(self.n, rows, out=grown[filled:])
        self._block = grown

    def presize(self, rows: int) -> None:
        """Pre-draw the stream to ``rows`` (one grow, no repeat copies)."""
        have = self._block.shape[0]
        if rows > have:
            self._grow(rows - have)

    def hint_rows(self) -> int:
        """Final block capacity — the next sweep's presize target.

        Capacity, not consumption: :meth:`take`'s countdown guard
        grows one row ahead of the deepest cursor, so a block presized
        to bare consumption still pays a mid-sweep doubling copy.
        Presizing to the capacity the last sweep ended with reproduces
        a zero-grow sweep exactly (same rows, same guard outcomes).
        """
        return int(self._block.shape[0])

    def take(self, mask: np.ndarray) -> np.ndarray:
        self._countdown -= 1
        if self._countdown < 0:
            high = int(self._cursor.max())
            rows = self._block.shape[0]
            if high + 1 >= rows:
                self._grow(rows)
                rows = self._block.shape[0]
            self._countdown = rows - high - 2
        out = self._block[self._cursor, self._ids]
        self._cursor += mask
        return out

    def take_at(self, lane_ids: np.ndarray) -> np.ndarray:
        """Compact :meth:`take`: one draw for just the listed lanes.

        ``lane_ids`` must be distinct (a ``nonzero`` of some mask).
        Values and cursor movement match ``take(mask)[lane_ids]``
        exactly; the untouched lanes' full-width gather is skipped.
        """
        self._countdown -= 1
        if self._countdown < 0:
            high = int(self._cursor.max())
            rows = self._block.shape[0]
            if high + 1 >= rows:
                self._grow(rows)
                rows = self._block.shape[0]
            self._countdown = rows - high - 2
        cur = self._cursor[lane_ids]
        out = self._block[cur, lane_ids]
        self._cursor[lane_ids] = cur + 1
        return out

    def take_events(self, ev_lanes: np.ndarray,
                    delta: np.ndarray) -> np.ndarray:
        """Consume ``delta[lane]`` values per lane, event-aligned.

        ``ev_lanes`` lists each event's lane with every lane's events
        contiguous and in order, so gathering at ``cursor[lane] +
        within-lane-offset`` yields exactly the values ``delta[lane]``
        sequential :meth:`take` calls would return.
        """
        total = ev_lanes.shape[0]
        end = self._cursor + delta
        needed = int(end.max())
        rows = self._block.shape[0]
        if needed >= rows:
            # Geometric growth with an exact-demand floor: a large
            # drain can outpace doubling, while doubling keeps the
            # frequent small drains from paying a block copy each.
            self._grow(max(needed + 8 - rows, rows))
            rows = self._block.shape[0]
        starts = np.cumsum(delta) - delta
        # positions[e] = cursor[lane] + within-lane-offset, with the
        # two per-event gathers folded into one repeat.
        positions = np.arange(total) + np.repeat(self._cursor - starts, delta)
        out = self._block[positions, ev_lanes]
        self._cursor = end
        self._countdown = 0
        return out


class _KernelCache(_LaneCache):
    """:class:`_LaneCache` with victim draws from a linearised stream
    and, under EoM replacement, a line-residency map.

    Every victim draw of one cache is ``randrange(k)`` for the cache's
    fixed candidate count, in the same per-lane order the base class
    consumes it — demand misses and CRG forced evictions interleave
    identically, they just read a precomputed block.

    Under EoM (no LRU stamps) the hit test also changes shape: each
    line occupies at most one fixed ``(set, way)`` frame per lane, so
    residency and dirtiness live in ``[line, lane]`` boolean maps and
    a demand hit is one row read instead of a ``(lanes, ways)`` tag
    gather + compare.  The ``tags`` planes stay authoritative for
    victim identity (what a fill or forced eviction displaces); the
    maps mirror them.  LRU caches keep the base-class behaviour — the
    stamp planes need the full frame view.
    """

    def __init__(self, lanes, num_sets, ways, candidates, sets, rng,
                 lru) -> None:
        super().__init__(lanes, num_sets, ways, candidates, sets, rng, lru)
        self._draws = (
            _DrawCursor(rng, candidates, lanes)
            if rng is not None and candidates > 1 else None
        )
        if lru:
            self._res = None
            self._line_dirty = None
            self._res_count = None
        else:
            # One spare row past the real lines: victim tag -1 (an
            # empty frame) fancy-indexes the dummy row, so eviction
            # scatters and the dirty-victim gather need no validity
            # filtering.  Nothing ever writes True there — the
            # residency clear writes False, and dirty writes only
            # target real (resident) lines — so a dummy-row read is
            # always the empty frame's correct answer: not resident,
            # not dirty.
            self._res = xp.zeros((sets.shape[0] + 1, lanes), dtype=bool)
            self._line_dirty = xp.zeros(
                (sets.shape[0] + 1, lanes), dtype=bool)
            # Per-line resident-lane tally, kept exactly equal to
            # ``_res.sum(axis=1)``: the all-lanes-resident test — the
            # segment guard and the demand_full fast path — becomes a
            # scalar compare instead of a [lanes] row reduction.  The
            # LLC opts out (see execute_lanes): it is never probed
            # all-lanes, and its forced-eviction drain would pay
            # scatter-subtract upkeep for nothing.
            self._res_count = xp.zeros(sets.shape[0], dtype=np.int64)
        self._full = xp.ones(lanes, dtype=bool)
        self._accesses = 0
        # Reused _miss_fill outputs: callers consume them before the
        # next access, so one buffer pair per cache suffices.
        self._vid_buf = xp.empty(lanes, dtype=np.int64)
        self._vdirty_buf = xp.empty(lanes, dtype=bool)

    def _victims(self, set_idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if self._draws is not None:
            return self._draws.take(mask)
        return super()._victims(set_idx, mask)

    def _miss_fill(self, line_id: int, miss: np.ndarray, write: bool):
        """Victim choice + displace + fill for the missed lanes.

        Displaced victims come back in *compact* form, aligned with
        the missed lanes: ``(lanes, lines, dirty)`` where ``lines`` is
        ``-1`` for frames that were empty.  The hot consumers (the
        kernel op loop's write-back probe) stay in compact space; only
        the masked :meth:`demand` path expands to lane width.
        """
        set_idx = self.sets[line_id]
        # One nonzero + fancy gathers: cheaper than compressing three
        # full-width arrays through the same boolean mask.
        ml = np.nonzero(miss)[0]
        ms = set_idx[ml]
        if self._draws is not None:
            mw = self._draws.take_at(ml)
        else:
            mw = self._victims(set_idx, miss)[ml]
        vt = self.tags[ml, ms, mw]
        count = self._res_count
        # Victim tag -1 (empty frame) indexes the spare dummy row of
        # the residency/dirty maps — see __init__ — so neither the
        # dirty gather nor the residency clear filters for validity.
        dirty_small = self._line_dirty[vt, ml]
        self._res[vt, ml] = False
        if count is not None:
            # bincount + full-vector subtract beats the buffered
            # np.subtract.at scatter on these victim batch sizes; the
            # +1 shift keeps empty frames (tag -1) countable, their
            # bin is discarded by the slice.
            count -= np.bincount(vt + 1, minlength=count.shape[0] + 1)[1:]
        self.tags[ml, ms, mw] = line_id
        row = self._res[line_id]
        row[ml] = True
        self._line_dirty[line_id][ml] = bool(write)
        if count is not None:
            count[line_id] += ml.shape[0]
        return ml, vt, dirty_small

    def demand(self, line_id: int, mask: np.ndarray, write: bool):
        if self._res is None:
            return super().demand(line_id, mask, write)
        row = self._res[line_id]
        hit = row & mask
        miss = mask ^ hit  # hit ⊆ mask, so xor is mask & ~hit
        self.hits += hit
        self.misses += miss
        if write:
            dirty_row = self._line_dirty[line_id]
            np.logical_or(dirty_row, hit, out=dirty_row)
        if not miss.any():
            return hit, miss, None, None
        ml, vt, dirty_small = self._miss_fill(line_id, miss, write)
        victim_ids = self._vid_buf
        victim_ids.fill(-1)
        victim_ids[ml] = vt
        victim_dirty = self._vdirty_buf
        victim_dirty.fill(False)
        victim_dirty[ml] = dirty_small
        return hit, miss, victim_ids, victim_dirty

    def demand_compact(self, line_id: int, mask: np.ndarray, write: bool):
        """Compact-victim demand without the full-width buffer pass.

        Same contract as the base class; the EoM residency-map probe
        hands :meth:`_miss_fill`'s compact victims straight through.
        """
        if self._res is None:
            return super().demand_compact(line_id, mask, write)
        row = self._res[line_id]
        hit = row & mask
        miss = mask ^ hit  # hit ⊆ mask, so xor is mask & ~hit
        self.hits += hit
        self.misses += miss
        if write:
            dirty_row = self._line_dirty[line_id]
            np.logical_or(dirty_row, hit, out=dirty_row)
        if not miss.any():
            return None, None, None
        ml, _vt, dirty_small = self._miss_fill(line_id, miss, write)
        return miss, ml, dirty_small

    def demand_full(self, line_id: int, write: bool):
        """All-lanes demand — the kernel op loop's L1 access shape.

        Returns ``(miss, victim_lanes, victim_lines, victim_dirty)``
        with the victims compact (see :meth:`_miss_fill`), all
        ``None`` when every lane hit.  Hit counting is deferred: the
        access count is a compile-time constant per sweep, so
        :meth:`finalise_counters` derives ``hits = accesses - misses``
        once at the end instead of accumulating a vector per access —
        the all-hit fast path is one scalar residency-count compare.
        """
        if self._res is None:
            _hit, miss, vids, vdirty = super().demand(
                line_id, self._full, write
            )
            if vids is None:
                return None, None, None, None
            ml = self._lane_ids[miss]
            return miss, ml, vids[miss], vdirty[miss]
        self._accesses += 1
        count = self._res_count
        if count is not None and count[line_id] == self.lanes:
            # All lanes resident — one scalar compare decides the hit,
            # and a write dirties the full row outright.
            if write:
                self._line_dirty[line_id] = True
            return None, None, None, None
        row = self._res[line_id]
        if write:
            dirty_row = self._line_dirty[line_id]
            np.logical_or(dirty_row, row, out=dirty_row)
        if count is None and row.all():
            return None, None, None, None
        miss = ~row
        self.misses += miss
        ml, vt, dirty_small = self._miss_fill(line_id, miss, write)
        return miss, ml, vt, dirty_small

    def finalise_counters(self) -> None:
        """Materialise the deferred hit counters (EoM fast path)."""
        if self._accesses:
            np.subtract(self._accesses, self.misses, out=self.hits)
            self._accesses = 0

    def writeback(self, line_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if self._res is None:
            return super().writeback(line_ids, mask)
        safe = np.where(mask, line_ids, 0)
        resident = self._res[safe, self._lane_ids]
        resident &= mask
        if resident.any():
            rl = self._lane_ids[resident]
            self._line_dirty[safe[resident], rl] = True
            self.wb_hits += resident
        return resident

    def writeback_at(self, line_ids: np.ndarray,
                     lane_ids: np.ndarray) -> np.ndarray:
        """Compact posted write-back probe: one event per array slot.

        The kernel op loop hands dirty L1 victims straight through in
        the compact ``(lines, lanes)`` form :meth:`_miss_fill`
        produced — at most one victim per lane per access, so the lane
        ids are distinct and plain fancy-index updates suffice.
        """
        if self._res is None:
            # LRU LLC: expand to lane width for the stamp-updating
            # base-class probe (cold path; EoM is the fused regime).
            full_ids = self._vid_buf
            full_ids.fill(0)
            full_ids[lane_ids] = line_ids
            mask = self._vdirty_buf
            mask.fill(False)
            mask[lane_ids] = True
            return super().writeback(full_ids, mask)[lane_ids]
        resident = self._res[line_ids, lane_ids]
        if resident.any():
            rl = lane_ids[resident]
            self._line_dirty[line_ids[resident], rl] = True
            self.wb_hits[rl] += 1
        return resident

    def force_evict_events(self, ev_lanes: np.ndarray, ev_sets: np.ndarray,
                           delta: np.ndarray) -> None:
        """One CRG drain's forced evictions as a single flat scatter.

        EoM only: the victim draw is state-independent and the
        displace writes constants (``tag = -1``), so within one drain
        only each lane's rank order matters — which the event list
        preserves — and duplicate ``(lane, set, way)`` events commute.
        """
        self.forced += delta
        if self._draws is not None:
            ways = self._draws.take_events(ev_lanes, delta)
        else:
            ways = np.zeros(ev_lanes.shape[0], dtype=np.int64)
        vt = self.tags[ev_lanes, ev_sets, ways]
        # Empty frames (tag -1) land the clear on the dummy residency
        # row — see __init__ — so the drain skips validity filtering.
        self._res[vt, ev_lanes] = False
        self.tags[ev_lanes, ev_sets, ways] = -1


class _KernelACU(_LaneACU):
    """:class:`_LaneACU` with cdc reloads from a linearised stream."""

    def __init__(self, mid, randomise, rng, lanes) -> None:
        super().__init__(mid, randomise, rng, lanes)
        self._draws = (
            _DrawCursor(rng, 2 * mid + 1, lanes) if randomise else None
        )

    def grant_record(self, now: np.ndarray, mask: np.ndarray) -> np.ndarray:
        grant = np.maximum(self.eab, now)
        self.stall += np.where(mask, grant - now, 0)
        self.evictions += mask
        if self._draws is not None:
            delay = self._draws.take(mask)
        else:
            delay = self.mid
        np.copyto(self.eab, grant + delay, where=mask)
        return grant


class _KernelCRG:
    """CRG with a precomputed firing timeline (sets + arrival times).

    The generator's private stream alternates a set draw and a gap draw
    per firing, so the whole per-lane schedule — which set rank ``r``
    evicts and when — is computable ahead of the sweep.  The runtime
    drain then touches only the LLC victim stream: gather the pending
    lanes' next set, force the eviction, advance the rank cursors.
    """

    __slots__ = ("mid", "randomise", "rng", "num_sets", "lanes", "_ids",
                 "_sets", "_times", "_fired", "next_time", "_top_min")

    def __init__(self, mid: int, randomise: bool, rng: MWCArray,
                 num_sets: int, lanes: int) -> None:
        self.mid = mid
        self.randomise = randomise
        self.rng = rng
        self.num_sets = num_sets
        self.lanes = lanes
        self._ids = xp.arange(lanes)
        if randomise:
            first = rng.randint_inclusive(0, 2 * mid).astype(np.int64)
        else:
            first = xp.full(lanes, mid, dtype=np.int64)
        self._sets = xp.empty((0, lanes), dtype=np.int64)
        self._times = first[None, :].copy()
        self._fired = xp.zeros(lanes, dtype=np.int64)
        self.next_time = first.copy()
        self._grow(8)

    def _grow(self, rows: int) -> None:
        # Draws land directly in the grown blocks (typed int64 by the
        # destination slice) and the timeline is computed in place —
        # no concatenate copies, no post-hoc `+ current` pass over the
        # freshly drawn rows.  Per-campaign presize is the dominant
        # caller, so these whole-block passes are wall time.
        drawn = self._sets.shape[0]
        current = self._times[drawn]
        grown_sets = xp.empty((drawn + rows, self.lanes), dtype=np.int64)
        grown_sets[:drawn] = self._sets
        grown_times = xp.empty((drawn + 1 + rows, self.lanes),
                               dtype=np.int64)
        grown_times[:drawn + 1] = self._times
        times_new = grown_times[drawn + 1:]
        if not self.randomise:
            # Deterministic MID: the stream holds only set draws, so
            # one block draw covers the whole extension and the
            # timeline is an arithmetic ramp.
            self.rng.randrange_block(
                self.num_sets, rows, out=grown_sets[drawn:])
            step = self.mid if self.mid > 0 else 1
            ramp = np.arange(1, rows + 1, dtype=np.int64) * step
            np.add(current[None, :], ramp[:, None], out=times_new)
        else:
            # The stream strictly alternates set draw / gap draw, which
            # is exactly the pair-block contract: two in-place stepped
            # blocks replace 2*rows full-width masked draws.
            gaps = np.empty((rows, self.lanes), dtype=np.int64)
            self.rng.randrange_block_pair(
                self.num_sets, 2 * self.mid + 1, rows,
                out_first=grown_sets[drawn:], out_second=gaps,
            )
            # A zero gap still advances time by one cycle (at most
            # one forced eviction per cycle per core); the timeline is
            # the running sum of the clamped gaps, anchored at the
            # last already-drawn arrival by folding it into row 0.
            np.maximum(gaps, 1, out=gaps)
            gaps[0] += current
            np.cumsum(gaps, axis=0, out=times_new)
        self._sets = grown_sets
        self._times = grown_times
        self._top_min = int(self._times[-1].min())

    def presize(self, rows: int) -> None:
        """Pre-draw the timeline to ``rows`` (one grow, no repeat copies)."""
        have = self._sets.shape[0]
        if rows > have:
            self._grow(rows - have)

    def hint_rows(self) -> int:
        """Final timeline capacity — the next sweep's presize target.

        Capacity, not fired ranks: the drain extends the timeline
        until the *last drawn* arrival outruns ``now`` on every lane,
        so a timeline presized to bare consumption re-grows mid-sweep.
        The capacity the last sweep ended with reproduces a zero-grow
        sweep exactly.
        """
        return int(self._sets.shape[0])

    def fire_until(self, now: np.ndarray, mask: np.ndarray, llc) -> None:
        pending = mask & (self.next_time <= now)
        if not pending.any():
            return
        if llc._res is None:
            # LRU LLC: forced evictions demote through a shared stamp
            # counter whose value depends on the round structure, so
            # replay the base engine's per-round drain exactly.
            self._fire_rounds(now, mask, llc, pending)
            return
        fired = self._fired
        ids = self._ids
        # Extend the timeline until every masked lane's next undrawn
        # arrival lies beyond its `now`.  The scalar pre-filter (min
        # of the top row vs max `now`) skips the full check on almost
        # every drain; over-growing merely precomputes more of each
        # lane's private stream, draws stay in rank order.
        if self._top_min <= int(now.max()):
            while (mask & (self._times[-1] <= now)).any():
                self._grow(self._sets.shape[0])
        # Arrival times are strictly increasing per lane and `now` is
        # non-decreasing across drains, so each lane's pending ranks
        # are exactly rows [fired, new_fired) of the timeline.  One
        # vectorised round advances every pending lane by its first
        # rank — almost always the only one — and the few lanes with
        # deeper backlogs finish on compacted arrays.
        new_fired = fired + pending
        step = mask & (self._times[new_fired, ids] <= now)
        if step.any():
            # Deep backlogs are sparse: advance only those lanes, on
            # compacted arrays, instead of dragging every lane through
            # more full-width rounds.
            times = self._times
            act = np.nonzero(step)[0]
            sub = new_fired[act] + 1
            sub_now = now[act]
            more = times[sub, act] <= sub_now
            while more.any():
                sub += more
                more = times[sub, act] <= sub_now
            new_fired[act] = sub
        delta = new_fired - fired
        total = int(delta.sum())
        if total:
            ev_lanes = np.repeat(ids, delta)
            starts = np.cumsum(delta) - delta
            ev_ranks = np.arange(total) + np.repeat(fired - starts, delta)
            ev_sets = self._sets[ev_ranks, ev_lanes]
            llc.force_evict_events(ev_lanes, ev_sets, delta)
            self._fired = new_fired
            self.next_time = self._times[new_fired, ids]

    def _fire_rounds(self, now: np.ndarray, mask: np.ndarray, llc,
                     pending: np.ndarray) -> None:
        fired = self._fired
        ids = self._ids
        while True:
            sets = self._sets[fired, ids]
            llc.force_evict_at(sets, pending)
            fired += pending
            if int(fired.max()) >= self._sets.shape[0]:
                self._grow(self._sets.shape[0])
            self.next_time = self._times[fired, ids]
            pending = mask & (self.next_time <= now)
            if not pending.any():
                return


class _KernelCRGBank(_KernelCRG):
    """Every interfering core's CRG of one campaign, drained as one.

    Under EoM replacement the forced evictions of one drain commute
    (their writes are constants and their victim-way draws are
    state-independent), and each CRG owns a private per-lane MWC
    stream — so the k per-core generators can advance side by side as
    ``k * lanes`` *virtual* lanes.  The interleave is lane-major
    (virtual lane ``lane*k + crg``) so the flat event batch lists, for
    each lane, CRG 0's pending ranks, then CRG 1's, ... — exactly the
    order the scalar engine fires evictions and consumes victim draws
    in.  One bank drain replaces k per-CRG drains; the drain is numpy
    call-overhead-bound, so the merge cuts most of that overhead.

    Only built for EoM LLCs: the LRU drain (:meth:`_fire_rounds`)
    demotes through a shared stamp counter whose value depends on the
    per-CRG round structure, which merging would reorder.
    """

    __slots__ = ("k", "_real", "_rlanes", "_next_min")

    def __init__(self, crgs: Sequence[_KernelCRG]) -> None:
        k = len(crgs)
        first = crgs[0]
        self.k = k
        self.mid = first.mid
        self.randomise = first.randomise
        self.num_sets = first.num_sets
        self._rlanes = first.lanes
        self.lanes = first.lanes * k  # virtual lanes, for _grow
        self._ids = xp.arange(self.lanes)
        self._real = np.repeat(np.arange(first.lanes), k)
        # Interleave the private streams and the already-drawn
        # timeline prefixes; per-stream draw sequences are untouched.
        rng = MWCArray.__new__(MWCArray)
        rng._x = np.stack([c.rng._x for c in crgs], axis=1).ravel()
        rng._c = np.stack([c.rng._c for c in crgs], axis=1).ravel()
        self.rng = rng
        rows = crgs[0]._sets.shape[0]
        self._sets = np.stack(
            [c._sets for c in crgs], axis=2).reshape(rows, -1)
        self._times = np.stack(
            [c._times for c in crgs], axis=2).reshape(rows + 1, -1)
        self._fired = np.zeros(self.lanes, dtype=np.int64)
        self.next_time = np.stack(
            [c.next_time for c in crgs], axis=1).ravel()
        self._top_min = int(self._times[-1].min())
        self._next_min = int(self.next_time.min())

    def fire_until(self, now: np.ndarray, mask: np.ndarray, llc) -> None:
        now_max = int(now.max())
        if now_max < self._next_min:
            return
        k = self.k
        rl = self._rlanes
        # Virtual-lane comparisons run as [real, k] broadcast views —
        # the interleave is lane-major, so a reshape of any fresh flat
        # vector lines real lanes up with `now`/`mask` columns without
        # materialising their k-fold repeats.
        nowc = now[:, None]
        maskc = mask[:, None]
        pending = ((self.next_time.reshape(rl, k) <= nowc) & maskc)
        if not pending.any():
            return
        fired = self._fired
        if self._top_min <= now_max:
            while ((self._times[-1].reshape(rl, k) <= nowc) & maskc).any():
                self._grow(self._sets.shape[0])
        # Compact to the pending virtual lanes up front: the advance
        # loop, rank gathers and event build all run on the (usually
        # much narrower) active set, full-width work stays at the two
        # comparisons above plus the scatter updates below.
        times = self._times
        act = np.nonzero(pending.reshape(-1))[0]
        act_fired = fired[act]
        real_act = self._real[act]
        sub = act_fired + 1
        sub_now = now[real_act]
        more = times[sub, act] <= sub_now
        if more.any():
            # Most active lanes owe exactly one event; compact again to
            # the deep-backlog minority so the advance loop's per-round
            # gathers shrink with the survivors instead of dragging the
            # whole active set through every round.
            idx = np.nonzero(more)[0]
            deep = act[idx]
            deep_now = sub_now[idx]
            deep_sub = sub[idx] + 1
            deep_more = times[deep_sub, deep] <= deep_now
            while deep_more.any():
                deep_sub += deep_more
                deep_more = times[deep_sub, deep] <= deep_now
            sub[idx] = deep_sub
            # Events sorted by virtual lane = sorted by real lane with
            # per-lane CRG order preserved; the LLC consumes one flat
            # batch with per-REAL-lane event counts.
            delta_act = sub - act_fired
            ev_v = np.repeat(act, delta_act)
            ev_lanes = self._real[ev_v]
            starts = np.cumsum(delta_act) - delta_act
            total = int(delta_act.sum())
            ev_ranks = np.arange(total) + np.repeat(act_fired - starts,
                                                    delta_act)
        else:
            # Every active lane owes exactly one event (the usual
            # drain): the event list IS the active set and the ranks
            # ARE the fired cursors — skip the repeat/cumsum build.
            ev_v = act
            ev_lanes = real_act
            ev_ranks = act_fired
        ev_sets = self._sets[ev_ranks, ev_v]
        delta_real = np.bincount(ev_lanes, minlength=rl)
        llc.force_evict_events(ev_lanes, ev_sets, delta_real)
        fired[act] = sub
        self.next_time[act] = times[sub, act]
        self._next_min = int(self.next_time.min())


def _tiny_chain_apply(op: ChainOp, a: np.ndarray, b: np.ndarray):
    """An unrolled applier for small two-term chains, or ``None``.

    The compile pool collapses a plan's chains to a handful of
    distinct ops, and the most frequent ones are tiny — one or two
    output rows of exactly two terms each (the ALU/write-back
    recurrences between accesses).  For those, the generic dense apply
    (fancy gather, broadcast add, reshape, axis reduction, scatter)
    costs several allocations to combine four numbers per lane; an
    unrolled ``add, add, maximum`` triple per row on two shared
    scratch vectors is both fewer calls and allocation-free.

    Returns ``None`` — caller falls back to the dense path — for wider
    shapes, and for the (never emitted today) case where a later row
    reads an earlier row's output: the unrolled writes go directly
    into the state matrix, so only each row's *own* aliasing is
    protected by the scratch vectors.
    """
    bounds = np.append(op.starts, op.src.shape[0])
    if op.rows_n > 2 or not (bounds[1:] - bounds[:-1] == 2).all():
        return None
    plan = []
    written: set = set()
    for i in range(op.rows_n):
        lo = int(bounds[i])
        s0, s1 = int(op.src[lo]), int(op.src[lo + 1])
        if written & {s0, s1}:
            return None
        plan.append((int(op.out_rows[i]), s0, int(op.weights[lo]),
                     s1, int(op.weights[lo + 1])))
        written.add(plan[-1][0])

    def apply(state: np.ndarray) -> None:
        for out, s0, w0, s1, w1 in plan:
            np.add(state[s0], w0, out=a)
            np.add(state[s1], w1, out=b)
            np.maximum(a, b, out=state[out])

    return apply


# ----------------------------------------------------------------------
# the kernel runtime
# ----------------------------------------------------------------------
class KernelTemplatePlan(_TemplatePlan):
    """A :class:`_TemplatePlan` executed through a grouped-opcode plan.

    Same scenario constants, same lane state (via the draw-plan-backed
    subclasses), same outcome packaging — only the sweep loop differs:
    it walks the compiled op list instead of the instruction steps.
    """

    cache_cls = _KernelCache
    acu_cls = _KernelACU
    crg_cls = _KernelCRG

    def __init__(self, config, scenario, core_id: int, program,
                 kernel_plan: Optional[KernelPlan] = None) -> None:
        super().__init__(config, scenario, core_id, program)
        self.kernel = (
            kernel_plan if kernel_plan is not None
            else compile_kernel_plan(program, config)
        )

    @classmethod
    def for_request(
        cls, request, plan_cache: Optional[PlanCache] = None
    ) -> "KernelTemplatePlan":
        cache = plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        # One call resolves both halves: the cache returns the program
        # alongside the kernel so a kernel campaign costs exactly one
        # program hit/miss, same as the batch engine (compile-once
        # accounting is engine-agnostic).
        program, kernel_plan = cache.kernel_plan(
            request.traces[0], request.config, compile_kernel_plan
        )
        return cls(request.config, request.scenario, request.core_id,
                   program, kernel_plan)

    def execute_lanes(self, triples: Sequence[tuple]):
        started = perf_counter()
        lanes = len(triples)
        env = self._lane_env(triples)
        il1, dl1, llc = env.il1, env.dl1, env.llc
        if len(env.crgs) > 1 and llc._res is not None:
            env.crgs = [_KernelCRGBank(env.crgs)]
        # Warm repeats pre-draw every linearised stream to the last
        # sweep's high-water mark: one block draw replaces the
        # doubling ladder's repeated grow-and-copy passes.  Recorded
        # per (core, scenario) on the cached plan; rows are per-lane
        # consumption so the hint is lane-width-agnostic.
        growers = [
            (name, cursor)
            for name, cursor in (
                ("il1", il1._draws), ("dl1", dl1._draws),
                ("llc", llc._draws),
                ("acu", env.acu._draws if env.acu is not None else None),
            )
            if cursor is not None
        ]
        growers.extend(
            (f"crg{i}", crg) for i, crg in enumerate(env.crgs)
        )
        hint_key = (self.core, self.scenario)
        hints = self.kernel.hints.get(hint_key)
        if hints:
            for name, stream in growers:
                rows = hints.get(name)
                if rows:
                    stream.presize(rows)
        fill = env.fill
        memory_writes = env.memory_writes
        l1_hit = self.l1_hit

        state = xp.zeros((N_STATE, lanes), dtype=np.int64)
        port_free = xp.zeros(lanes, dtype=np.int64)
        scratch = xp.empty(lanes, dtype=np.int64)
        chain_scratch = (
            xp.empty((N_STATE, lanes), dtype=np.int64)
            if _NUMBA_CHAIN is not None else None
        )
        # The compile pool collapses the plan's chains to a handful of
        # distinct ops, each applied thousands of times per sweep.
        # Tiny two-term ops get an unrolled allocation-free applier;
        # the rest get a full-width weight matrix turning the
        # broadcast ``[t, 1] + [t, lanes]`` add — the dominant dense
        # apply cost — into a flat elementwise add.  Per-sweep (lanes
        # varies).
        wide = {}
        fast_apply = {}
        if chain_scratch is None:
            tiny_a = xp.empty(lanes, dtype=np.int64)
            tiny_b = xp.empty(lanes, dtype=np.int64)
            for op in self.kernel.chains():
                oid = id(op)
                if oid in wide or oid in fast_apply:
                    continue
                fn = _tiny_chain_apply(op, tiny_a, tiny_b)
                if fn is not None:
                    fast_apply[oid] = fn
                else:
                    wide[oid] = xp.tile(op.pad_wcol, (1, lanes))
        # The LLC is never probed all-lanes and its forced-eviction
        # drain would pay scatter-subtract upkeep per event, so it
        # drops its residency tally; the L1 tallies back the segment
        # guard below as two tiny gathers.
        llc._res_count = None
        il1_count = il1._res_count
        dl1_count = dl1._res_count

        for segment, ops_run in self.kernel.schedule:
            if segment is not None and (
                    int(il1_count[segment.il1_lines].sum())
                    + int(dl1_count[segment.dl1_lines].sum())
                    == lanes * segment.n_lines):
                # Every touched line resident in every lane (tallies
                # cap at the lane count, so the summed tallies hit the
                # ceiling only when each line does): the whole window
                # is fast hits.  Apply the composed chain and settle
                # the deferred bookkeeping; nothing else (tags,
                # residency, draws, CRG arrivals) would have moved.
                op = segment.chain
                if op is not None:
                    if chain_scratch is not None:  # pragma: no cover
                        _NUMBA_CHAIN(state, op.out_rows, op.src, op.weights,
                                     op.starts, chain_scratch)
                    else:
                        fn = fast_apply.get(id(op))
                        if fn is not None:
                            fn(state)
                        else:
                            gathered = state[op.pad_src]
                            gathered += wide[id(op)]
                            state[op.out_rows] = gathered.reshape(
                                op.rows_n, op.width, lanes
                            ).max(axis=1)
                il1._accesses += segment.il1_accesses
                dl1._accesses += segment.dl1_accesses
                if segment.store_lines.size:
                    dl1._line_dirty[segment.store_lines] = True
                continue
            for op in ops_run:
                kind = op.kind
                if kind == "chain":
                    if chain_scratch is not None:  # pragma: no cover — numba
                        _NUMBA_CHAIN(state, op.out_rows, op.src, op.weights,
                                     op.starts, chain_scratch)
                        continue
                    fn = fast_apply.get(id(op))
                    if fn is not None:
                        fn(state)
                        continue
                    gathered = state[op.pad_src]
                    gathered += wide[id(op)]
                    state[op.out_rows] = gathered.reshape(
                        op.rows_n, op.width, lanes
                    ).max(axis=1)
                elif kind == "fetch":
                    # Fetch (latch frees when the previous instruction
                    # decoded) — the interpreter's step, on state rows.
                    np.maximum(state[EF], state[SD], out=scratch)
                    if il1_count is not None and \
                            il1_count[op.line] == lanes:
                        # demand_full's all-resident fast path,
                        # inlined: the scalar tally compare and the
                        # deferred access count.
                        il1._accesses += 1
                        np.add(scratch, l1_hit, out=state[EF])
                        continue
                    miss, _vl, _vt, _vd = il1.demand_full(op.line, False)
                    np.add(scratch, l1_hit, out=state[EF])
                    if miss is not None:
                        issue = np.maximum(scratch, port_free)
                        done = fill(op.line, issue, miss)
                        np.copyto(port_free, done, where=miss)
                        np.copyto(state[EF], done, where=miss)
                else:
                    # Full DL1 access; decode already composed into the
                    # preceding chain, write-back into the following one.
                    np.add(state[SD], 1, out=scratch)
                    np.maximum(scratch, state[SW], out=state[SM])
                    if dl1_count is not None and \
                            dl1_count[op.line] == lanes:
                        # Inlined all-resident fast path; a store
                        # dirties the full row outright.
                        dl1._accesses += 1
                        if op.store:
                            dl1._line_dirty[op.line] = True
                        np.add(state[SM], l1_hit, out=state[EM])
                        continue
                    miss, vml, vlines, vdirty = dl1.demand_full(
                        op.line, op.store
                    )
                    np.add(state[SM], l1_hit, out=state[EM])
                    if miss is not None:
                        issue = np.maximum(state[SM], port_free)
                        done = fill(op.line, issue, miss)
                        np.copyto(port_free, done, where=miss)
                        np.copyto(state[EM], done, where=miss)
                        if vdirty.any():
                            # Dirty victims post compact write-backs:
                            # at most one per lane, so lane ids are
                            # distinct and fancy updates suffice.
                            wb_lanes = vml[vdirty]
                            resident = llc.writeback_at(
                                vlines[vdirty], wb_lanes
                            )
                            mem_lanes = wb_lanes[~resident]
                            if mem_lanes.size:
                                memory_writes[mem_lanes] += 1

        il1.finalise_counters()
        dl1.finalise_counters()
        recorded = self.kernel.hints.setdefault(hint_key, {})
        for name, stream in growers:
            rows = stream.hint_rows()
            if rows > recorded.get(name, 0):
                recorded[name] = rows
        return self._finalise(triples, env, state[EW], started)
