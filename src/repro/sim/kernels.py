"""Grouped-opcode kernel plans: a ``TraceProgram`` lowered to fused ops.

The batch engine (:mod:`repro.sim.batch`) already turned R scalar runs
into lock-step NumPy lanes, but its sweep still dispatches one Python
loop iteration — roughly ten NumPy calls — per trace instruction, and
its PRNG draws go through generic masked rejection sampling, another
~15 NumPy calls each.  Profiling an EFL campaign shows those two
overheads *are* the runtime: the arithmetic on 1000-lane vectors is
nearly free; the per-call constant cost is not.

This module compiles a :class:`~repro.sim.plancache.TraceProgram` into
a **kernel plan** that attacks both:

**1. Max-plus chain fusion (the grouped opcodes).**  Between cache
accesses, the in-order pipeline's recurrence is a max-plus affine map
over the five state times ``(end_fetch, start_decode, start_mem,
start_wb, end_wb)`` — every deterministic phase is ``out = max(in_j +
w_j)`` with compile-time constants.  Max-plus maps compose, so a
maximal run of deterministic phases — fetch-fast-hit streaks,
non-memory ALU stretches, fast hits to already-resident data lines —
collapses into **one** precomputed matrix, applied at runtime with a
single gather + ``np.maximum.reduceat`` regardless of how many
instructions it fused.  Irreducible steps — IL1 accesses, full DL1
accesses, and through them the CRG injection points, EoM victim draws
and first-touch fills — fall back to exactly the interpreter's step
code over the same :class:`~repro.sim.batch._LaneEnv` lane state.
Composition is over exact ``int64`` add/max, so fusion cannot change a
single bit of the result.

**2. Draw-stream linearisation.**  Every hardware PRNG the analysis
hot path consumes draws with *compile-time-constant parameters*: a
cache's victim draws are always ``randrange(k)`` for its fixed
candidate count, an ACU reload is always ``randint(0, 2*MID)``, a
CRG's stream alternates ``randrange(num_sets)`` / ``randint(0,
2*MID)``.  Each lane's draw *sequence* from one generator is therefore
known ahead of time even though the *schedule* (which step consumes
the next draw) is not.  The kernel precomputes each stream as a
``[rank, lane]`` block of full-width unmasked draws and consumes it
through per-lane cursors — three NumPy calls per draw site instead of
~15.  Per lane, the values consumed are exactly the values the masked
on-demand draws would produce (MWC streams are private per lane per
generator; drawing ahead changes only the generator's final state,
which nothing observes), so bit-identity is again structural.  A CRG's
whole firing timeline additionally becomes a cumulative-sum table, so
its drain loop touches only the shared LLC victim stream at runtime.

An optional Numba ``njit`` path accelerates the chain application when
numba is importable; the probe degrades silently (pure NumPy) when it
is not — this container and CI run the NumPy path.

Compilation quality is observable: :func:`compile_kernel_plan` bumps
per-group-class counters (``kernel_steps_fetch_streak``,
``kernel_steps_alu``, ``kernel_steps_data_fast``,
``kernel_steps_ifetch``, ``kernel_steps_dmem``, ``kernel_chains``) on
the attached :class:`~repro.observability.MetricsRegistry`.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.observability import current_telemetry
from repro.sim.batch import (
    _LaneACU,
    _LaneCache,
    _TemplatePlan,
)
from repro.sim.plancache import GLOBAL_PLAN_CACHE, PlanCache
from repro.utils.rng import MWCArray

#: Kernel state rows: end_fetch, start_decode, start_mem, start_wb,
#: end_wb, plus the transient end_mem written by DL1-access ops and
#: read only by the immediately following write-back phase.
EF, SD, SM, SW, EW, EM = range(6)
N_STATE = 6


# ----------------------------------------------------------------------
# numba feature probe (optional acceleration, silent degrade)
# ----------------------------------------------------------------------
def _probe_numba():
    """An ``njit``-compiled chain applier, or ``None`` without numba."""
    try:
        from numba import njit  # type: ignore
    except Exception:  # pragma: no cover — numba not installed here
        return None

    @njit(cache=False)  # pragma: no cover — exercised only with numba
    def chain_apply(state, out_rows, src, weights, starts, scratch):
        m = out_rows.shape[0]
        total = src.shape[0]
        lanes = state.shape[1]
        for i in range(m):
            lo = starts[i]
            hi = starts[i + 1] if i + 1 < m else total
            for lane in range(lanes):
                best = state[src[lo], lane] + weights[lo]
                for t in range(lo + 1, hi):
                    value = state[src[t], lane] + weights[t]
                    if value > best:
                        best = value
                scratch[i, lane] = best
        for i in range(m):
            row = out_rows[i]
            for lane in range(lanes):
                state[row, lane] = scratch[i, lane]

    return chain_apply


_NUMBA_CHAIN = _probe_numba()


def numba_available() -> bool:
    """Whether the optional numba chain applier compiled at import."""
    return _NUMBA_CHAIN is not None


# ----------------------------------------------------------------------
# kernel ops
# ----------------------------------------------------------------------
#: Max-plus padding weight: added to any state time it stays far below
#: every real candidate without approaching int64 overflow.
_PAD_WEIGHT = -(1 << 60)


class ChainOp:
    """One fused max-plus map over the kernel state matrix.

    ``out_rows[i]`` receives ``max(state[src[t]] + weights[t])`` over
    the segment ``starts[i] <= t < starts[i+1]`` — the composed effect
    of every deterministic pipeline phase the chain swallowed.

    Segments are additionally padded to one rectangular ``(rows,
    width)`` block (``pad_src`` / ``pad_wcol``): padding terms carry
    :data:`_PAD_WEIGHT`, so the runtime reduction is a dense
    ``max(axis=1)`` over the reshaped gather — far cheaper than a
    ragged ``reduceat``.  The ragged arrays stay for the numba path.
    """

    kind = "chain"
    __slots__ = ("out_rows", "src", "weights", "wcol", "starts", "fused",
                 "pad_src", "pad_wcol", "rows_n", "width")

    def __init__(self, out_rows, src, weights, starts, fused: int) -> None:
        self.out_rows = out_rows
        self.src = src
        self.weights = weights
        self.wcol = weights[:, None]
        self.starts = starts
        self.fused = fused
        rows_n = out_rows.shape[0]
        bounds = np.append(starts, src.shape[0])
        width = int((bounds[1:] - bounds[:-1]).max())
        pad_src = np.zeros((rows_n, width), dtype=np.intp)
        pad_w = np.full((rows_n, width), _PAD_WEIGHT, dtype=np.int64)
        for i in range(rows_n):
            lo, hi = bounds[i], bounds[i + 1]
            pad_src[i, : hi - lo] = src[lo:hi]
            pad_w[i, : hi - lo] = weights[lo:hi]
        self.pad_src = pad_src.reshape(-1)
        self.pad_wcol = pad_w.reshape(-1, 1)
        self.rows_n = rows_n
        self.width = width


class FetchOp:
    """Irreducible IL1 instruction fetch (possible miss + fill)."""

    kind = "fetch"
    __slots__ = ("line",)

    def __init__(self, line: int) -> None:
        self.line = line


class MemOp:
    """Irreducible full DL1 access (possible miss, fill, write-back)."""

    kind = "mem"
    __slots__ = ("line", "store")

    def __init__(self, line: int, store: bool) -> None:
        self.line = line
        self.store = store


class KernelPlan:
    """A compiled grouped-opcode program: ops + compilation stats.

    Depends only on ``(trace, config)`` — exactly the
    :class:`~repro.sim.plancache.TraceProgram` key — so the
    :class:`~repro.sim.plancache.PlanCache` caches it alongside the
    program it lowers.
    """

    __slots__ = ("ops", "stats", "instructions")

    def __init__(self, ops: List[object], stats: dict,
                 instructions: int) -> None:
        self.ops = ops
        self.stats = stats
        self.instructions = instructions


def _identity_matrix() -> List[dict]:
    return [{row: 0} for row in range(N_STATE)]


def _emit_chain(matrix: List[dict], fused: int,
                dead: frozenset) -> Optional[ChainOp]:
    """Lower a composed max-plus matrix to a reduceat-ready op.

    Identity rows are skipped (the state they govern is untouched), as
    are the ``dead`` rows — outputs the next op overwrites before
    anything reads them.  ``EM`` is always dead: its only reader is
    the write-back phase, which every compilation path re-derives from
    a fresher write before reading.
    """
    out_rows: List[int] = []
    src: List[int] = []
    weights: List[int] = []
    starts: List[int] = []
    for row in range(N_STATE):
        if row == EM or row in dead:
            continue
        terms = matrix[row]
        if len(terms) == 1 and terms.get(row) == 0:
            continue
        starts.append(len(src))
        out_rows.append(row)
        for base in sorted(terms):
            src.append(base)
            weights.append(terms[base])
    if not out_rows:
        return None
    return ChainOp(
        np.array(out_rows, dtype=np.intp),
        np.array(src, dtype=np.intp),
        np.array(weights, dtype=np.int64),
        np.array(starts, dtype=np.intp),
        fused,
    )


def compile_kernel_plan(program, config) -> KernelPlan:
    """Lower ``program`` under ``config`` into a :class:`KernelPlan`.

    Scans the instruction steps once, accumulating deterministic
    pipeline phases into a composing max-plus matrix and flushing it to
    a :class:`ChainOp` whenever an irreducible cache access interrupts
    the run.  Decode phases compose into the chain *before* a DL1
    access (the access reads the decoded time), write-back phases
    *after* it (they read the access's ``end_mem``).
    """
    l1_hit = int(config.l1_hit_latency)
    ops: List[object] = []
    stats = {
        "fetch_streak": 0,  # fetch-fast-hit phases fused into chains
        "alu": 0,           # non-memory execute phases fused
        "data_fast": 0,     # resident-line fast-hit phases fused
        "ifetch": 0,        # irreducible IL1 access steps
        "dmem": 0,          # irreducible DL1 access steps
        "chains": 0,
        "fused_phases": 0,
    }
    matrix = _identity_matrix()
    dirty = False
    fused = 0

    def assign(out: int, terms) -> None:
        nonlocal dirty, fused
        row: dict = {}
        for source, weight in terms:
            for base, base_weight in matrix[source].items():
                candidate = base_weight + weight
                previous = row.get(base)
                if previous is None or previous < candidate:
                    row[base] = candidate
        matrix[out] = row
        dirty = True
        fused += 1

    _LIVE = frozenset()
    #: A DL1-access op recomputes start_mem from decode/write-back
    #: state without reading it, so a chain feeding one need not
    #: materialise its own start_mem.
    _PRE_MEM_DEAD = frozenset((SM,))
    #: Past the last instruction only end_wb (the run's execution
    #: time) is ever read.
    _FINAL_DEAD = frozenset((EF, SD, SM, SW))

    def flush(dead: frozenset = _LIVE) -> None:
        nonlocal matrix, dirty, fused
        if dirty:
            op = _emit_chain(matrix, fused, dead)
            if op is not None:
                ops.append(op)
                stats["chains"] += 1
                stats["fused_phases"] += fused
        matrix = _identity_matrix()
        dirty = False
        fused = 0

    for fetch_fast, iline, mem_code, mem_arg, is_store in program.steps:
        if fetch_fast:
            # start_fetch = max(end_fetch, start_decode); +L.
            assign(EF, ((EF, l1_hit), (SD, l1_hit)))
            stats["fetch_streak"] += 1
        else:
            flush()
            ops.append(FetchOp(iline))
            stats["ifetch"] += 1
        # Decode: start_decode = max(end_fetch, start_mem).
        assign(SD, ((EF, 0), (SM, 0)))
        if mem_code == 2:
            flush(_PRE_MEM_DEAD)
            ops.append(MemOp(mem_arg, bool(is_store)))
            stats["dmem"] += 1
        else:
            # start_mem = max(end_decode, start_wb); end_mem = +latency.
            latency = mem_arg if mem_code == 0 else l1_hit
            assign(SM, ((SD, 1), (SW, 0)))
            assign(EM, ((SM, latency),))
            stats["alu" if mem_code == 0 else "data_fast"] += 1
        # Write-back: start_wb = max(end_mem, end_wb); end_wb = +1.
        assign(SW, ((EM, 0), (EW, 0)))
        assign(EW, ((SW, 1),))
    flush(_FINAL_DEAD)

    telemetry = current_telemetry()
    if telemetry is not None:
        metrics = telemetry.metrics
        for group in ("fetch_streak", "alu", "data_fast", "ifetch", "dmem"):
            if stats[group]:
                metrics.counter(f"kernel_steps_{group}").inc(stats[group])
        if stats["chains"]:
            metrics.counter("kernel_chains").inc(stats["chains"])
    return KernelPlan(ops, stats, program.instructions)


# ----------------------------------------------------------------------
# draw-stream linearisation
# ----------------------------------------------------------------------
class _DrawCursor:
    """Precomputed draw block for one constant-parameter MWC stream.

    ``take(mask)`` returns each lane's next value and advances only the
    masked lanes' cursors — the same per-lane consumption the masked
    on-demand draw performs, at a fraction of the call count.  The
    block grows geometrically; the countdown bounds how many takes can
    pass before any lane could outrun it (each take advances a lane's
    cursor by at most one).
    """

    __slots__ = ("rng", "n", "lanes", "_ids", "_block", "_cursor",
                 "_countdown")

    def __init__(self, rng: MWCArray, n: int, lanes: int,
                 initial_rows: int = 8) -> None:
        self.rng = rng
        self.n = n
        self.lanes = lanes
        self._ids = np.arange(lanes)
        self._block = np.empty((0, lanes), dtype=np.int64)
        self._cursor = np.zeros(lanes, dtype=np.int64)
        self._countdown = 0
        self._grow(initial_rows)

    def _grow(self, rows: int) -> None:
        fresh = np.empty((rows, self.lanes), dtype=np.int64)
        for rank in range(rows):
            fresh[rank] = self.rng.randrange_unmasked(self.n)
        self._block = np.concatenate([self._block, fresh], axis=0)

    def take(self, mask: np.ndarray) -> np.ndarray:
        self._countdown -= 1
        if self._countdown < 0:
            high = int(self._cursor.max())
            rows = self._block.shape[0]
            if high + 1 >= rows:
                self._grow(rows)
                rows = self._block.shape[0]
            self._countdown = rows - high - 2
        out = self._block[self._cursor, self._ids]
        self._cursor += mask
        return out

    def take_events(self, ev_lanes: np.ndarray,
                    delta: np.ndarray) -> np.ndarray:
        """Consume ``delta[lane]`` values per lane, event-aligned.

        ``ev_lanes`` lists each event's lane with every lane's events
        contiguous and in order, so gathering at ``cursor[lane] +
        within-lane-offset`` yields exactly the values ``delta[lane]``
        sequential :meth:`take` calls would return.
        """
        total = ev_lanes.shape[0]
        end = self._cursor + delta
        needed = int(end.max())
        rows = self._block.shape[0]
        if needed >= rows:
            # Grow to the exact demand (plus slack): a large drain can
            # outpace doubling, and overdrawing costs real MWC steps.
            self._grow(needed + 8 - rows)
            rows = self._block.shape[0]
        starts = np.cumsum(delta) - delta
        offsets = np.arange(total) - np.repeat(starts, delta)
        positions = np.repeat(self._cursor, delta) + offsets
        out = self._block[positions, ev_lanes]
        self._cursor = end
        self._countdown = 0
        return out


class _KernelCache(_LaneCache):
    """:class:`_LaneCache` with victim draws from a linearised stream
    and, under EoM replacement, a line-residency map.

    Every victim draw of one cache is ``randrange(k)`` for the cache's
    fixed candidate count, in the same per-lane order the base class
    consumes it — demand misses and CRG forced evictions interleave
    identically, they just read a precomputed block.

    Under EoM (no LRU stamps) the hit test also changes shape: each
    line occupies at most one fixed ``(set, way)`` frame per lane, so
    residency and dirtiness live in ``[line, lane]`` boolean maps and
    a demand hit is one row read instead of a ``(lanes, ways)`` tag
    gather + compare.  The ``tags`` planes stay authoritative for
    victim identity (what a fill or forced eviction displaces); the
    maps mirror them.  LRU caches keep the base-class behaviour — the
    stamp planes need the full frame view.
    """

    def __init__(self, lanes, num_sets, ways, candidates, sets, rng,
                 lru) -> None:
        super().__init__(lanes, num_sets, ways, candidates, sets, rng, lru)
        self._draws = (
            _DrawCursor(rng, candidates, lanes)
            if rng is not None and candidates > 1 else None
        )
        if lru:
            self._res = None
            self._line_dirty = None
        else:
            self._res = np.zeros((sets.shape[0], lanes), dtype=bool)
            self._line_dirty = np.zeros((sets.shape[0], lanes), dtype=bool)
        self._full = np.ones(lanes, dtype=bool)
        self._accesses = 0

    def _victims(self, set_idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if self._draws is not None:
            return self._draws.take(mask)
        return super()._victims(set_idx, mask)

    def _miss_fill(self, line_id: int, miss: np.ndarray, write: bool):
        """Victim choice + displace + fill for the missed lanes."""
        set_idx = self.sets[line_id]
        vway = self._victims(set_idx, miss)
        ml = self._lane_ids[miss]
        ms = set_idx[miss]
        mw = vway[miss]
        vt = self.tags[ml, ms, mw]
        victim_ids = np.full(self.lanes, -1, dtype=np.int64)
        victim_ids[miss] = vt
        victim_dirty = np.zeros(self.lanes, dtype=bool)
        valid = vt >= 0
        if valid.any():
            lv = ml[valid]
            tv = vt[valid]
            dirty_small = np.zeros(vt.shape[0], dtype=bool)
            dirty_small[valid] = self._line_dirty[tv, lv]
            victim_dirty[miss] = dirty_small
            self._res[tv, lv] = False
        self.tags[ml, ms, mw] = line_id
        self._res[line_id][miss] = True
        self._line_dirty[line_id][miss] = bool(write)
        return victim_ids, victim_dirty

    def demand(self, line_id: int, mask: np.ndarray, write: bool):
        if self._res is None:
            return super().demand(line_id, mask, write)
        row = self._res[line_id]
        hit = row & mask
        miss = mask ^ hit  # hit ⊆ mask, so xor is mask & ~hit
        self.hits += hit
        self.misses += miss
        if write:
            dirty_row = self._line_dirty[line_id]
            np.logical_or(dirty_row, hit, out=dirty_row)
        if not miss.any():
            return hit, miss, None, None
        victim_ids, victim_dirty = self._miss_fill(line_id, miss, write)
        return hit, miss, victim_ids, victim_dirty

    def demand_full(self, line_id: int, write: bool):
        """All-lanes demand — the kernel op loop's L1 access shape.

        Returns ``(miss, victim_ids, victim_dirty)``, all ``None``
        when every lane hit.  Hit counting is deferred: the access
        count is a compile-time constant per sweep, so
        :meth:`finalise_counters` derives ``hits = accesses - misses``
        once at the end instead of accumulating a vector per access —
        the all-hit fast path is a single residency reduction.
        """
        if self._res is None:
            _hit, miss, vids, vdirty = super().demand(
                line_id, self._full, write
            )
            if vids is None:
                return None, None, None
            return miss, vids, vdirty
        row = self._res[line_id]
        self._accesses += 1
        if write:
            dirty_row = self._line_dirty[line_id]
            np.logical_or(dirty_row, row, out=dirty_row)
        if row.all():
            return None, None, None
        miss = ~row
        self.misses += miss
        victim_ids, victim_dirty = self._miss_fill(line_id, miss, write)
        return miss, victim_ids, victim_dirty

    def finalise_counters(self) -> None:
        """Materialise the deferred hit counters (EoM fast path)."""
        if self._accesses:
            np.subtract(self._accesses, self.misses, out=self.hits)
            self._accesses = 0

    def writeback(self, line_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if self._res is None:
            return super().writeback(line_ids, mask)
        safe = np.where(mask, line_ids, 0)
        resident = self._res[safe, self._lane_ids]
        resident &= mask
        if resident.any():
            rl = self._lane_ids[resident]
            self._line_dirty[safe[resident], rl] = True
            self.hits += resident
        return resident

    def force_evict_events(self, ev_lanes: np.ndarray, ev_sets: np.ndarray,
                           delta: np.ndarray) -> None:
        """One CRG drain's forced evictions as a single flat scatter.

        EoM only: the victim draw is state-independent and the
        displace writes constants (``tag = -1``), so within one drain
        only each lane's rank order matters — which the event list
        preserves — and duplicate ``(lane, set, way)`` events commute.
        """
        self.forced += delta
        if self._draws is not None:
            ways = self._draws.take_events(ev_lanes, delta)
        else:
            ways = np.zeros(ev_lanes.shape[0], dtype=np.int64)
        vt = self.tags[ev_lanes, ev_sets, ways]
        valid = vt >= 0
        if valid.any():
            self._res[vt[valid], ev_lanes[valid]] = False
        self.tags[ev_lanes, ev_sets, ways] = -1


class _KernelACU(_LaneACU):
    """:class:`_LaneACU` with cdc reloads from a linearised stream."""

    def __init__(self, mid, randomise, rng, lanes) -> None:
        super().__init__(mid, randomise, rng, lanes)
        self._draws = (
            _DrawCursor(rng, 2 * mid + 1, lanes) if randomise else None
        )

    def grant_record(self, now: np.ndarray, mask: np.ndarray) -> np.ndarray:
        grant = np.maximum(self.eab, now)
        self.stall += np.where(mask, grant - now, 0)
        self.evictions += mask
        if self._draws is not None:
            delay = self._draws.take(mask)
        else:
            delay = self.mid
        np.copyto(self.eab, grant + delay, where=mask)
        return grant


class _KernelCRG:
    """CRG with a precomputed firing timeline (sets + arrival times).

    The generator's private stream alternates a set draw and a gap draw
    per firing, so the whole per-lane schedule — which set rank ``r``
    evicts and when — is computable ahead of the sweep.  The runtime
    drain then touches only the LLC victim stream: gather the pending
    lanes' next set, force the eviction, advance the rank cursors.
    """

    __slots__ = ("mid", "randomise", "rng", "num_sets", "lanes", "_ids",
                 "_sets", "_times", "_fired", "next_time", "_top_min")

    def __init__(self, mid: int, randomise: bool, rng: MWCArray,
                 num_sets: int, lanes: int) -> None:
        self.mid = mid
        self.randomise = randomise
        self.rng = rng
        self.num_sets = num_sets
        self.lanes = lanes
        self._ids = np.arange(lanes)
        if randomise:
            first = rng.randint_inclusive(0, 2 * mid).astype(np.int64)
        else:
            first = np.full(lanes, mid, dtype=np.int64)
        self._sets = np.empty((0, lanes), dtype=np.int64)
        self._times = first[None, :].copy()
        self._fired = np.zeros(lanes, dtype=np.int64)
        self.next_time = first.copy()
        self._grow(8)

    def _grow(self, rows: int) -> None:
        drawn = self._sets.shape[0]
        sets_new = np.empty((rows, self.lanes), dtype=np.int64)
        times_new = np.empty((rows, self.lanes), dtype=np.int64)
        current = self._times[drawn]
        for rank in range(rows):
            sets_new[rank] = self.rng.randrange_unmasked(self.num_sets)
            if self.randomise:
                gap = self.rng.randrange_unmasked(2 * self.mid + 1)
                # A zero gap still advances time by one cycle (at most
                # one forced eviction per cycle per core).
                increment = np.maximum(gap.astype(np.int64), 1)
            else:
                increment = self.mid if self.mid > 0 else 1
            current = current + increment
            times_new[rank] = current
        self._sets = np.concatenate([self._sets, sets_new], axis=0)
        self._times = np.concatenate([self._times, times_new], axis=0)
        self._top_min = int(self._times[-1].min())

    def fire_until(self, now: np.ndarray, mask: np.ndarray, llc) -> None:
        pending = mask & (self.next_time <= now)
        if not pending.any():
            return
        if llc._res is None:
            # LRU LLC: forced evictions demote through a shared stamp
            # counter whose value depends on the round structure, so
            # replay the base engine's per-round drain exactly.
            self._fire_rounds(now, mask, llc, pending)
            return
        fired = self._fired
        ids = self._ids
        # Extend the timeline until every masked lane's next undrawn
        # arrival lies beyond its `now`.  The scalar pre-filter (min
        # of the top row vs max `now`) skips the full check on almost
        # every drain; over-growing merely precomputes more of each
        # lane's private stream, draws stay in rank order.
        if self._top_min <= int(now.max()):
            while (mask & (self._times[-1] <= now)).any():
                self._grow(self._sets.shape[0])
        # Arrival times are strictly increasing per lane and `now` is
        # non-decreasing across drains, so each lane's pending ranks
        # are exactly rows [fired, new_fired) of the timeline.  One
        # vectorised round advances every pending lane by its first
        # rank — almost always the only one — and the few lanes with
        # deeper backlogs finish on compacted arrays.
        new_fired = fired + pending
        step = mask & (self._times[new_fired, ids] <= now)
        if step.any():
            # Deep backlogs are sparse: advance only those lanes, on
            # compacted arrays, instead of dragging every lane through
            # more full-width rounds.
            times = self._times
            act = np.nonzero(step)[0]
            sub = new_fired[act] + 1
            sub_now = now[act]
            more = times[sub, act] <= sub_now
            while more.any():
                sub += more
                more = times[sub, act] <= sub_now
            new_fired[act] = sub
        delta = new_fired - fired
        total = int(delta.sum())
        if total:
            ev_lanes = np.repeat(ids, delta)
            starts = np.cumsum(delta) - delta
            offsets = np.arange(total) - np.repeat(starts, delta)
            ev_ranks = np.repeat(fired, delta) + offsets
            ev_sets = self._sets[ev_ranks, ev_lanes]
            llc.force_evict_events(ev_lanes, ev_sets, delta)
            self._fired = new_fired
            self.next_time = self._times[new_fired, ids]

    def _fire_rounds(self, now: np.ndarray, mask: np.ndarray, llc,
                     pending: np.ndarray) -> None:
        fired = self._fired
        ids = self._ids
        while True:
            sets = self._sets[fired, ids]
            llc.force_evict_at(sets, pending)
            fired += pending
            if int(fired.max()) >= self._sets.shape[0]:
                self._grow(self._sets.shape[0])
            self.next_time = self._times[fired, ids]
            pending = mask & (self.next_time <= now)
            if not pending.any():
                return


class _KernelCRGBank(_KernelCRG):
    """Every interfering core's CRG of one campaign, drained as one.

    Under EoM replacement the forced evictions of one drain commute
    (their writes are constants and their victim-way draws are
    state-independent), and each CRG owns a private per-lane MWC
    stream — so the k per-core generators can advance side by side as
    ``k * lanes`` *virtual* lanes.  The interleave is lane-major
    (virtual lane ``lane*k + crg``) so the flat event batch lists, for
    each lane, CRG 0's pending ranks, then CRG 1's, ... — exactly the
    order the scalar engine fires evictions and consumes victim draws
    in.  One bank drain replaces k per-CRG drains; the drain is numpy
    call-overhead-bound, so the merge cuts most of that overhead.

    Only built for EoM LLCs: the LRU drain (:meth:`_fire_rounds`)
    demotes through a shared stamp counter whose value depends on the
    per-CRG round structure, which merging would reorder.
    """

    __slots__ = ("k", "_real", "_rlanes", "_next_min")

    def __init__(self, crgs: Sequence[_KernelCRG]) -> None:
        k = len(crgs)
        first = crgs[0]
        self.k = k
        self.mid = first.mid
        self.randomise = first.randomise
        self.num_sets = first.num_sets
        self._rlanes = first.lanes
        self.lanes = first.lanes * k  # virtual lanes, for _grow
        self._ids = np.arange(self.lanes)
        self._real = np.repeat(np.arange(first.lanes), k)
        # Interleave the private streams and the already-drawn
        # timeline prefixes; per-stream draw sequences are untouched.
        rng = MWCArray.__new__(MWCArray)
        rng._x = np.stack([c.rng._x for c in crgs], axis=1).ravel()
        rng._c = np.stack([c.rng._c for c in crgs], axis=1).ravel()
        self.rng = rng
        rows = crgs[0]._sets.shape[0]
        self._sets = np.stack(
            [c._sets for c in crgs], axis=2).reshape(rows, -1)
        self._times = np.stack(
            [c._times for c in crgs], axis=2).reshape(rows + 1, -1)
        self._fired = np.zeros(self.lanes, dtype=np.int64)
        self.next_time = np.stack(
            [c.next_time for c in crgs], axis=1).ravel()
        self._top_min = int(self._times[-1].min())
        self._next_min = int(self.next_time.min())

    def fire_until(self, now: np.ndarray, mask: np.ndarray, llc) -> None:
        now_max = int(now.max())
        if now_max < self._next_min:
            return
        k = self.k
        now_v = np.repeat(now, k)
        mask_v = np.repeat(mask, k)
        pending = mask_v & (self.next_time <= now_v)
        if not pending.any():
            return
        fired = self._fired
        ids = self._ids
        if self._top_min <= now_max:
            while (mask_v & (self._times[-1] <= now_v)).any():
                self._grow(self._sets.shape[0])
        new_fired = fired + pending
        step = mask_v & (self._times[new_fired, ids] <= now_v)
        if step.any():
            # Deep backlogs are sparse: advance only those lanes, on
            # compacted arrays, instead of dragging every lane through
            # more full-width rounds.
            times = self._times
            act = np.nonzero(step)[0]
            sub = new_fired[act] + 1
            sub_now = now_v[act]
            more = times[sub, act] <= sub_now
            while more.any():
                sub += more
                more = times[sub, act] <= sub_now
            new_fired[act] = sub
        delta = new_fired - fired
        total = int(delta.sum())
        if total:
            # Events sorted by virtual lane = sorted by real lane with
            # per-lane CRG order preserved; the LLC consumes one flat
            # batch with per-REAL-lane event counts.
            ev_v = np.repeat(ids, delta)
            ev_lanes = self._real[ev_v]
            starts = np.cumsum(delta) - delta
            offsets = np.arange(total) - np.repeat(starts, delta)
            ev_ranks = np.repeat(fired, delta) + offsets
            ev_sets = self._sets[ev_ranks, ev_v]
            delta_real = delta.reshape(self._rlanes, k).sum(axis=1)
            llc.force_evict_events(ev_lanes, ev_sets, delta_real)
            self._fired = new_fired
            self.next_time = self._times[new_fired, ids]
            self._next_min = int(self.next_time.min())


# ----------------------------------------------------------------------
# the kernel runtime
# ----------------------------------------------------------------------
class KernelTemplatePlan(_TemplatePlan):
    """A :class:`_TemplatePlan` executed through a grouped-opcode plan.

    Same scenario constants, same lane state (via the draw-plan-backed
    subclasses), same outcome packaging — only the sweep loop differs:
    it walks the compiled op list instead of the instruction steps.
    """

    cache_cls = _KernelCache
    acu_cls = _KernelACU
    crg_cls = _KernelCRG

    def __init__(self, config, scenario, core_id: int, program,
                 kernel_plan: Optional[KernelPlan] = None) -> None:
        super().__init__(config, scenario, core_id, program)
        self.kernel = (
            kernel_plan if kernel_plan is not None
            else compile_kernel_plan(program, config)
        )

    @classmethod
    def for_request(
        cls, request, plan_cache: Optional[PlanCache] = None
    ) -> "KernelTemplatePlan":
        cache = plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        # One call resolves both halves: the cache returns the program
        # alongside the kernel so a kernel campaign costs exactly one
        # program hit/miss, same as the batch engine (compile-once
        # accounting is engine-agnostic).
        program, kernel_plan = cache.kernel_plan(
            request.traces[0], request.config, compile_kernel_plan
        )
        return cls(request.config, request.scenario, request.core_id,
                   program, kernel_plan)

    def execute_lanes(self, triples: Sequence[tuple]):
        started = perf_counter()
        lanes = len(triples)
        env = self._lane_env(triples)
        il1, dl1, llc = env.il1, env.dl1, env.llc
        if len(env.crgs) > 1 and llc._res is not None:
            env.crgs = [_KernelCRGBank(env.crgs)]
        fill = env.fill
        memory_writes = env.memory_writes
        l1_hit = self.l1_hit

        state = np.zeros((N_STATE, lanes), dtype=np.int64)
        port_free = np.zeros(lanes, dtype=np.int64)
        scratch = np.empty(lanes, dtype=np.int64)
        chain_scratch = (
            np.empty((N_STATE, lanes), dtype=np.int64)
            if _NUMBA_CHAIN is not None else None
        )

        for op in self.kernel.ops:
            kind = op.kind
            if kind == "chain":
                if chain_scratch is not None:  # pragma: no cover — numba
                    _NUMBA_CHAIN(state, op.out_rows, op.src, op.weights,
                                 op.starts, chain_scratch)
                else:
                    gathered = state[op.pad_src]
                    gathered += op.pad_wcol
                    state[op.out_rows] = gathered.reshape(
                        op.rows_n, op.width, lanes
                    ).max(axis=1)
            elif kind == "fetch":
                # Fetch (latch frees when the previous instruction
                # decoded) — the interpreter's step, on state rows.
                np.maximum(state[EF], state[SD], out=scratch)
                miss, vids, _d = il1.demand_full(op.line, False)
                np.add(scratch, l1_hit, out=state[EF])
                if miss is not None:
                    issue = np.maximum(scratch, port_free)
                    done = fill(op.line, issue, miss)
                    np.copyto(port_free, done, where=miss)
                    np.copyto(state[EF], done, where=miss)
            else:
                # Full DL1 access; decode already composed into the
                # preceding chain, write-back into the following one.
                np.add(state[SD], 1, out=scratch)
                np.maximum(scratch, state[SW], out=state[SM])
                miss, vids, vdirty = dl1.demand_full(op.line, op.store)
                np.add(state[SM], l1_hit, out=state[EM])
                if miss is not None:
                    issue = np.maximum(state[SM], port_free)
                    done = fill(op.line, issue, miss)
                    np.copyto(port_free, done, where=miss)
                    np.copyto(state[EM], done, where=miss)
                    dirty_victims = miss & vdirty
                    if dirty_victims.any():
                        resident = llc.writeback(vids, dirty_victims)
                        memory_writes += dirty_victims & ~resident

        il1.finalise_counters()
        dl1.finalise_counters()
        return self._finalise(triples, env, state[EW], started)
