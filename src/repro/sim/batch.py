"""Lock-step batch engine: a whole analysis campaign as NumPy lanes.

MBPTA's analysis stage re-executes one trace R >= 300-1000 times on a
freshly randomised single-core platform (§3.3).  The runs are
structurally identical — same instruction stream, same control flow,
same memory-path choreography — and differ *only* in their PRNG
streams.  That is the Monte-Carlo-replica shape, and this module
exploits it: instead of R scalar interpreter walks over the trace, one
sweep advances all R runs together, each run occupying one *lane* of a
struct-of-arrays state.

Layout (``R`` = lanes, i.e. runs in flight):

* every cache is a packed ``tags[R, sets, ways]`` / ``dirty[R, sets,
  ways]`` pair mirroring :class:`repro.mem.cache.Cache` (``-1`` = an
  invalid frame);
* placement is a precomputed ``sets[line, R]`` matrix: the parametric
  hash of every distinct trace line under every lane's RII
  (:func:`repro.utils.hashing.set_index_array`), or one broadcast
  modulo column for TD;
* every hardware PRNG is one :class:`repro.utils.rng.MWCArray` lane
  bundle; draws are *masked*, so a lane consumes exactly the draws its
  scalar twin would, in the same order;
* LRU recency stacks become timestamp planes (argmin = victim), EoM
  stays a masked ``randrange`` over the candidate ways;
* the 4-stage in-order pipeline is five per-lane time vectors advanced
  by the same max/add recurrence as
  :class:`repro.cpu.pipeline.InOrderPipeline`;
* EFL is a per-lane ACU (EAB times, stall accumulators) plus one
  per-interfering-core CRG whose pending injections advance under a
  compare-and-reload mask until every lane drained.

The engine's contract is **bit-identity** with
:class:`~repro.sim.backend.SerialBackend` — execution times, per-run
cache counters, checksums and seed provenance — for every analysis
scenario class (TR+EFL, TR isolation, CP, TD), asserted by
``tests/test_batch.py`` the same way ``tests/test_hotpath.py`` pins
the scalar hot path to ``sim/reference.py``.  Everything the engine
cannot reproduce exactly is declared ineligible up front
(:func:`repro.sim.simulator.batch_ineligibility`) and stays scalar.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, classify_exception
from repro.observability import current_telemetry
from repro.sim import backend as _backend_mod
from repro.sim.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    RunObserver,
    RunOutcome,
    SerialBackend,
    _notify,
    installed_fault_plan,
    result_checksum,
    usable_cpus,
)
from repro.sim.plancache import (
    GLOBAL_PLAN_CACHE,
    PlanCache,
    SharedProgram,
    SharedProgramHandle,
)
from repro.sim.simulator import (
    CoreResult,
    RunRequest,
    RunResult,
    batch_ineligibility,
)
from repro.utils.hashing import set_index_array
from repro.utils.rng import MWCArray, splitmix64_draw
from repro.utils.xp import xp

#: Engine names accepted by ``collect_execution_times(engine=...)`` and
#: the CLI's ``--engine`` flag.  ``kernel`` is the grouped-opcode
#: compiler (:mod:`repro.sim.kernels`) running on this engine's lane
#: state; ``auto`` prefers it wherever plain ``batch`` would apply.
ENGINE_NAMES = ("auto", "scalar", "batch", "sharded", "kernel")

#: Campaign size below which the ``auto`` engine policy keeps the
#: single-process batch engine even on a multi-core host: sharding a
#: small campaign spends more on pool spin-up than the parallel sweep
#: returns (the tiny/quick analysis scales run 40-80 lanes).
SHARDED_AUTO_MIN_RUNS = 512

_MASK32 = np.uint64(0xFFFFFFFF)


class _LaneCache:
    """One cache level across all lanes: ``tags[R, sets, ways]`` SoA.

    Mirrors :class:`repro.mem.cache.Cache` exactly on the transactions
    the analysis hot path uses: demand access (hit bookkeeping, EoM /
    LRU victim choice, write-allocate fill), CRG forced eviction and
    the posted L1 write-back update.  ``candidates`` restricts victim
    choice and lookup to the first ``candidates`` ways — the
    contiguous partition :func:`repro.sim.platform.build_platform`
    materialises for CP analysis.
    """

    def __init__(
        self,
        lanes: int,
        num_sets: int,
        ways: int,
        candidates: int,
        sets: np.ndarray,
        rng: Optional[MWCArray],
        lru: bool,
    ) -> None:
        self.lanes = lanes
        self.num_sets = num_sets
        self.ways = ways
        self.k = candidates
        self.sets = sets  # [lines, lanes]
        self.rng = rng
        self.tags = xp.full((lanes, num_sets, ways), -1, dtype=np.int32)
        self.dirty = xp.zeros((lanes, num_sets, ways), dtype=bool)
        self.hits = xp.zeros(lanes, dtype=np.int64)
        self.misses = xp.zeros(lanes, dtype=np.int64)
        # Write-back probe hits live apart from demand hits: the LLC's
        # reported per-run hit counts are demand hits only (matching
        # the scalar oracle), so keeping ``hits`` demand-pure lets the
        # sweep read them off the cache instead of accumulating a
        # separate path vector on every fill.
        self.wb_hits = xp.zeros(lanes, dtype=np.int64)
        self.forced = xp.zeros(lanes, dtype=np.int64)
        self._lane_ids = xp.arange(lanes)
        if lru:
            # LRU stacks as timestamp planes: stack position maps to
            # stamp order (front = max).  Initial stack [0..w-1] means
            # way w starts at stamp -(w+1); hits/fills stamp from a
            # growing positive counter, invalidations from a shrinking
            # counter below every initial stamp, so argmin over a
            # set's stamps is exactly LRUReplacement.choose_victim.
            self.stamps = xp.broadcast_to(
                -(xp.arange(ways, dtype=np.int64) + 1), (lanes, num_sets, ways)
            ).copy()
            self._pos_stamp = 0
            self._neg_stamp = -(ways + 1)
        else:
            self.stamps = None

    def _victims(self, set_idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Victim way per lane, mirroring ``Cache._choose_victim``."""
        if self.stamps is None:
            # EoM: one randrange(k) draw per masked lane iff k > 1
            # (the scalar path skips the draw for a single candidate).
            if self.k == 1:
                return np.zeros(self.lanes, dtype=np.int64)
            return self.rng.randrange(self.k, mask).astype(np.int64)
        stamps = self.stamps[self._lane_ids, set_idx]
        if self.k != self.ways:
            stamps = stamps[:, : self.k]
        return np.argmin(stamps, axis=1)

    def _stamp_touch(self, l: np.ndarray, s: np.ndarray, w: np.ndarray) -> None:
        self._pos_stamp += 1
        self.stamps[l, s, w] = self._pos_stamp

    def demand(self, line_id: int, mask: np.ndarray, write: bool):
        """Demand access of one trace line across the masked lanes.

        Returns ``(hit, miss, victim_ids, victim_dirty)`` lane masks /
        vectors; ``victim_*`` describe the displaced line of each miss
        lane (``-1`` / ``False`` where the filled frame was invalid).
        """
        set_idx = self.sets[line_id]
        lanes_ = self._lane_ids
        frames = self.tags[lanes_, set_idx]
        cand = frames if self.k == self.ways else frames[:, : self.k]
        match = cand == line_id
        hit = match.any(axis=1)
        hit &= mask
        miss = mask & ~hit
        self.hits += hit
        self.misses += miss
        if (write or self.stamps is not None) and hit.any():
            hw = np.argmax(match, axis=1)
            hl = lanes_[hit]
            hs = set_idx[hit]
            hww = hw[hit]
            if write:
                self.dirty[hl, hs, hww] = True
            if self.stamps is not None:
                self._stamp_touch(hl, hs, hww)
        victim_ids = None
        victim_dirty = None
        if miss.any():
            vway = self._victims(set_idx, miss)
            ml = lanes_[miss]
            ms = set_idx[miss]
            mw = vway[miss]
            vt = self.tags[ml, ms, mw]
            vd = self.dirty[ml, ms, mw]
            victim_ids = np.full(self.lanes, -1, dtype=np.int64)
            victim_ids[miss] = vt
            victim_dirty = np.zeros(self.lanes, dtype=bool)
            victim_dirty[miss] = vd & (vt >= 0)
            self.tags[ml, ms, mw] = line_id
            self.dirty[ml, ms, mw] = bool(write)
            if self.stamps is not None:
                self._stamp_touch(ml, ms, mw)
        return hit, miss, victim_ids, victim_dirty

    def force_evict_at(self, set_idx: np.ndarray, mask: np.ndarray) -> None:
        """CRG force-miss: victim draw + displace, no allocation.

        Mirrors ``Cache.force_eviction`` → ``_displace``: the draw and
        the ``forced_evictions`` count happen even when the chosen
        frame is invalid; the LRU demotion only when it was valid.
        """
        self.forced += mask
        vway = self._victims(set_idx, mask)
        ml = self._lane_ids[mask]
        ms = set_idx[mask]
        mw = vway[mask]
        valid = self.tags[ml, ms, mw] >= 0
        self.tags[ml, ms, mw] = -1
        self.dirty[ml, ms, mw] = False
        if self.stamps is not None and valid.any():
            self._neg_stamp -= 1
            self.stamps[ml[valid], ms[valid], mw[valid]] = self._neg_stamp

    def writeback(self, line_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Posted dirty-L1-victim update (``MemoryPath.l1_writeback``).

        Per-lane line ids: each lane's DL1 evicted its own victim.
        Returns the lanes where the line was resident (updated and
        marked dirty); the caller forwards the rest to memory.
        """
        safe = np.where(mask, line_ids, 0)
        set_idx = self.sets[safe, self._lane_ids]
        frames = self.tags[self._lane_ids, set_idx]
        cand = frames if self.k == self.ways else frames[:, : self.k]
        match = cand == line_ids[:, None]
        resident = match.any(axis=1)
        resident &= mask
        if resident.any():
            hw = np.argmax(match, axis=1)
            rl = self._lane_ids[resident]
            rs = set_idx[resident]
            rw = hw[resident]
            self.dirty[rl, rs, rw] = True
            self.wb_hits += resident
            if self.stamps is not None:
                self._stamp_touch(rl, rs, rw)
        return resident

    def demand_compact(self, line_id: int, mask: np.ndarray, write: bool):
        """:meth:`demand` with victims in compact form.

        Returns ``(miss, miss_lanes, victim_dirty)`` where the last two
        are aligned compact vectors over the missed lanes, or ``(None,
        None, None)`` when every probed lane hit — the fill path needs
        only the dirty victims' lane ids, so the full-width victim
        expansion is skipped.
        """
        _hit, miss, vids, vdirty = self.demand(line_id, mask, write)
        if vids is None:
            return None, None, None
        ml = np.nonzero(miss)[0]
        return miss, ml, vdirty[ml]


class _LaneACU:
    """Per-lane EFL Access Control Unit (EAB times and stalls)."""

    def __init__(
        self, mid: int, randomise: bool, rng: Optional[MWCArray], lanes: int
    ) -> None:
        self.mid = mid
        self.randomise = randomise
        self.rng = rng
        self.eab = xp.zeros(lanes, dtype=np.int64)
        self.stall = xp.zeros(lanes, dtype=np.int64)
        self.evictions = xp.zeros(lanes, dtype=np.int64)

    def grant_record(self, now: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``eviction_grant_time`` + ``record_eviction`` fused.

        Returns the per-lane grant time (valid at masked lanes); the
        cdc reload draw is consumed only by masked lanes.
        """
        grant = np.maximum(self.eab, now)
        self.stall += np.where(mask, grant - now, 0)
        self.evictions += mask
        if self.randomise:
            delay = self.rng.randint_inclusive(0, 2 * self.mid, mask).astype(np.int64)
        else:
            delay = self.mid
        np.copyto(self.eab, grant + delay, where=mask)
        return grant


class _LaneCRG:
    """Per-lane Cache Request Generator of one interfering core.

    ``next_time`` is the per-lane absolute cycle of the next pending
    forced eviction; :meth:`fire_until` drains every lane's arrivals up
    to its own ``now`` under a shrinking pending mask (masked
    compare-and-reload), preserving each lane's scalar draw order: set
    draw, forced LLC victim draw, gap draw — repeat.
    """

    def __init__(
        self, mid: int, randomise: bool, rng: MWCArray, num_sets: int, lanes: int
    ) -> None:
        self.mid = mid
        self.randomise = randomise
        self.rng = rng
        self.num_sets = num_sets
        if randomise:
            self.next_time = rng.randint_inclusive(0, 2 * mid).astype(np.int64)
        else:
            self.next_time = xp.full(lanes, mid, dtype=np.int64)

    def fire_until(self, now: np.ndarray, mask: np.ndarray, llc: _LaneCache) -> None:
        pending = mask & (self.next_time <= now)
        while pending.any():
            sets = self.rng.randrange(self.num_sets, pending).astype(np.int64)
            llc.force_evict_at(sets, pending)
            if self.randomise:
                gap = self.rng.randint_inclusive(0, 2 * self.mid, pending).astype(
                    np.int64
                )
                # A zero gap still advances time by one cycle (at most
                # one forced eviction per cycle per core).
                inc = np.where(gap > 0, gap, 1)
            else:
                inc = self.mid if self.mid > 0 else 1
            self.next_time = np.where(pending, self.next_time + inc, self.next_time)
            pending = mask & (self.next_time <= now)


class _LaneEnv:
    """One sweep's lane state: caches, EFL units and path counters.

    Built by :meth:`_TemplatePlan._lane_env` and driven by two
    runtimes — the per-step interpreter below and the grouped-opcode
    kernel (:mod:`repro.sim.kernels`).  Both advance exactly this
    state through the same :meth:`fill` choreography, which is what
    makes their outcomes bit-identical by construction: the kernel
    only changes *how many Python-level operations* it takes to get
    here, never the order of cache transactions or PRNG draws.

    The ``cache_cls`` / ``acu_cls`` / ``crg_cls`` hooks let the kernel
    substitute draw-plan-backed implementations that consume the same
    per-lane PRNG sequences through precomputed blocks.
    """

    __slots__ = (
        "lanes", "il1", "dl1", "llc", "acu", "crgs", "all_mask",
        "memory_writes", "bus_cycles", "llc_hit_latency", "memory_cycles",
    )

    def __init__(self, plan: "_TemplatePlan", triples: Sequence[tuple],
                 cache_cls, acu_cls, crg_cls) -> None:
        lanes = len(triples)
        config = plan.config
        scenario = plan.scenario
        core = plan.core
        nc = config.num_cores
        seeds = np.array([seed for _index, seed, _attempt in triples],
                         dtype=np.uint64)

        # build_platform's SplitMix64(run_seed) draw schedule, 1-based:
        # IL1[c] consumes draws (2c+1, 2c+2), DL1[c] (2nc+2c+1,
        # 2nc+2c+2), the LLC (4nc+1, 4nc+2), the bus seed 4nc+3
        # (unused in analysis) and the EFL seed 4nc+4.  SplitMix64 is
        # counter-based, so only the analysed core's draws are computed.
        l1_sets = config.l1_geometry.num_sets
        l1_ways = config.l1_geometry.ways
        llc_sets = config.llc_geometry.num_sets
        llc_ways = config.llc_geometry.ways
        lru = not plan.eom

        def lane_cache(rii_k, rng_k, num_sets, ways, candidates):
            rng = MWCArray(splitmix64_draw(seeds, rng_k)) if plan.eom else None
            matrix = plan._sets_matrix(
                splitmix64_draw(seeds, rii_k), num_sets, lanes
            )
            return cache_cls(lanes, num_sets, ways, candidates, matrix, rng, lru)

        self.lanes = lanes
        self.il1 = lane_cache(2 * core + 1, 2 * core + 2, l1_sets, l1_ways,
                              l1_ways)
        self.dl1 = lane_cache(2 * nc + 2 * core + 1, 2 * nc + 2 * core + 2,
                              l1_sets, l1_ways, l1_ways)
        self.llc = lane_cache(4 * nc + 1, 4 * nc + 2, llc_sets, llc_ways,
                              plan.llc_candidates)

        self.acu = None
        self.crgs: List[object] = []
        if scenario.mechanism == "efl":
            # EFLController's inner SplitMix64(efl_seed): ACU seeds for
            # cores 0..nc-1 first, then CRG seeds for the interfering
            # cores in core order.
            efl_seeds = splitmix64_draw(seeds, 4 * nc + 4)
            mid = scenario.mid
            randomise = scenario.randomise_mid
            self.acu = acu_cls(
                mid, randomise,
                MWCArray(splitmix64_draw(efl_seeds, core + 1)), lanes,
            )
            position = 0
            for other in range(nc):
                if other == core:
                    continue
                position += 1
                self.crgs.append(crg_cls(
                    mid, randomise,
                    MWCArray(splitmix64_draw(efl_seeds, nc + position)),
                    llc_sets, lanes,
                ))

        self.memory_writes = xp.zeros(lanes, dtype=np.int64)
        self.all_mask = xp.ones(lanes, dtype=bool)
        self.bus_cycles = plan.bus_cycles
        self.llc_hit_latency = plan.llc_hit_latency
        self.memory_cycles = plan.memory_cycles

    def fill(self, line_id: int, issue: np.ndarray,
             mask: np.ndarray) -> np.ndarray:
        """``MemoryPath.fill`` (analysis mode) for the masked lanes.

        Hit/miss/read accounting is NOT accumulated here: the LLC is
        probed only through this path, so its own demand counters are
        the path stats — :meth:`_finalise` reads them off the cache,
        and each fill pays only the compact dirty-victim update.
        """
        arrival = issue + self.bus_cycles
        llc = self.llc
        for crg in self.crgs:
            crg.fire_until(arrival, mask, llc)
        lookup = arrival + self.llc_hit_latency
        miss, ml, vdirty = llc.demand_compact(line_id, mask, write=False)
        if miss is None:  # demand saw no miss
            return lookup
        if self.acu is not None:
            grant = self.acu.grant_record(lookup, miss)
        else:
            grant = lookup
        # Dirty LLC victims are posted write-backs (no added latency).
        if vdirty.any():
            self.memory_writes[ml[vdirty]] += 1
        return np.where(miss, grant + self.memory_cycles, lookup)


class _TemplatePlan:
    """One campaign's executable plan: program + scenario constants.

    The expensive trace-derived half lives in a cacheable
    :class:`~repro.sim.plancache.TraceProgram` (compiled once per
    ``(trace, config)`` by the :class:`~repro.sim.plancache.PlanCache`
    and shareable across processes); this class adds the cheap
    scenario-derived half — CP way restrictions, analysis latency
    constants, MID — and the lane sweep itself.
    """

    def __init__(self, config, scenario, core_id: int, program) -> None:
        self.config = config
        self.scenario = scenario
        self.core = core_id
        self.program = program
        self.task = program.task
        self.instructions = program.instructions
        self.fast_ihits = program.fast_ihits
        self.fast_dhits = program.fast_dhits
        self.lines = program.lines
        nc = config.num_cores
        if not 0 <= self.core < nc:
            raise ConfigurationError(f"core_id {self.core} out of range")
        self.llc_candidates = config.llc_ways
        if scenario.mechanism == "cp":
            counts = scenario.ways_per_core
            if len(counts) != nc:
                raise ConfigurationError(
                    f"CP scenario gives {len(counts)} per-core way counts "
                    f"for a {nc}-core system"
                )
            if counts[self.core] > config.llc_ways:
                raise ConfigurationError(
                    f"CP partition of {counts[self.core]} ways exceeds the "
                    f"LLC's {config.llc_ways}"
                )
            self.llc_candidates = counts[self.core]

        bus_penalty = config.analysis_bus_penalty
        if bus_penalty is None:
            bus_penalty = (nc - 1) * config.bus_latency
        self.bus_cycles = config.bus_latency + bus_penalty
        memory_penalty = config.analysis_memory_penalty
        if memory_penalty is None:
            memory_penalty = (nc - 1) * config.memory_latency
        self.memory_cycles = config.memory_latency + memory_penalty
        self.l1_hit = config.l1_hit_latency
        self.llc_hit_latency = config.llc_hit_latency
        self.random_placement = config.placement == "random"
        self.eom = config.replacement == "eom"

    @classmethod
    def for_request(
        cls, request: RunRequest, plan_cache: Optional[PlanCache] = None
    ) -> "_TemplatePlan":
        """Build a plan for ``request``, compiling through a plan cache.

        Repeated campaigns over the same ``(trace, config)`` — a
        PWCETTable sweeping MID values and way counts — hit the cache
        and skip the trace compile entirely.
        """
        cache = plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        program = cache.program(request.traces[0], request.config)
        return cls(request.config, request.scenario, request.core_id, program)

    @property
    def steps(self) -> List[tuple]:
        """Per-instruction ``(fetch_fast, iline, code, arg, store)``
        tuples (lazily materialised and cached on the program)."""
        return self.program.steps

    # ------------------------------------------------------------------
    def _sets_matrix(self, rii_draws: np.ndarray, num_sets: int, lanes: int):
        """Placement matrix ``[line_id, lane] -> set`` for one cache."""
        if self.random_placement:
            riis = rii_draws & _MASK32  # build_platform truncates to _RII_BITS
            return set_index_array(self.lines[:, None], riis[None, :], num_sets)
        column = (self.lines % num_sets).astype(np.int64)
        return np.broadcast_to(column[:, None], (self.lines.shape[0], lanes))

    def execute(self, requests: Sequence[RunRequest]) -> List[RunOutcome]:
        """Run one lane chunk; one bit-identical outcome per request."""
        return self.execute_lanes(
            [(request.index, request.seed, 1) for request in requests]
        )

    #: Lane-state implementations; the kernel plan substitutes
    #: draw-plan-backed subclasses (:mod:`repro.sim.kernels`).
    cache_cls = _LaneCache
    acu_cls = _LaneACU
    crg_cls = _LaneCRG

    def _lane_env(self, triples: Sequence[tuple]) -> _LaneEnv:
        """Fresh lane state (caches, EFL units, counters) for one sweep."""
        return _LaneEnv(self, triples, self.cache_cls, self.acu_cls,
                        self.crg_cls)

    def _finalise(
        self,
        triples: Sequence[tuple],
        env: _LaneEnv,
        end_wb: np.ndarray,
        started: float,
    ) -> List[RunOutcome]:
        """Package one sweep's lane state into per-run outcomes."""
        il1, dl1, llc, acu = env.il1, env.dl1, env.llc, env.acu
        wall_each = (perf_counter() - started) / env.lanes
        scenario_label = self.scenario.label()
        core = self.core
        outcomes = []
        for lane, (index, seed, attempt) in enumerate(triples):
            result = RunResult(
                scenario_label=scenario_label,
                mode=self.scenario.mode,
                cores=[
                    CoreResult(
                        core=core,
                        task=self.task,
                        cycles=int(end_wb[lane]),
                        instructions=self.instructions,
                        il1_misses=int(il1.misses[lane]),
                        il1_accesses=int(il1.hits[lane] + il1.misses[lane])
                        + self.fast_ihits,
                        dl1_misses=int(dl1.misses[lane]),
                        dl1_accesses=int(dl1.hits[lane] + dl1.misses[lane])
                        + self.fast_dhits,
                        efl_stall_cycles=int(acu.stall[lane]) if acu else 0,
                        efl_evictions=int(acu.evictions[lane]) if acu else 0,
                    )
                ],
                llc_hits=int(llc.hits[lane]),
                llc_misses=int(llc.misses[lane]),
                llc_forced_evictions=int(llc.forced[lane]),
                # Every LLC miss through the fill path is one memory
                # read, so the miss counter doubles as the read count.
                memory_reads=int(llc.misses[lane]),
                memory_writes=int(env.memory_writes[lane]),
                profile=None,
            )
            outcomes.append(
                RunOutcome(
                    index=index,
                    seed=seed,
                    result=result,
                    error=None,
                    wall_time_s=wall_each,
                    attempts=attempt,
                    checksum=result_checksum(index, seed, result),
                )
            )
        return outcomes

    def execute_lanes(self, triples: Sequence[tuple]) -> List[RunOutcome]:
        """Run one lane chunk of ``(index, seed, attempt)`` triples.

        The triple form is what the pool's wave dispatch ships to shard
        workers; ``attempt`` is carried through to the outcome so retry
        accounting survives the batch path.
        """
        started = perf_counter()
        lanes = len(triples)
        env = self._lane_env(triples)
        il1, dl1, llc = env.il1, env.dl1, env.llc
        all_mask = env.all_mask
        fill = env.fill
        memory_writes = env.memory_writes
        l1_hit = self.l1_hit

        # Pipeline state: five per-lane time vectors, exactly the five
        # scalars InOrderPipeline keeps, plus the single miss port.
        end_fetch = xp.zeros(lanes, dtype=np.int64)
        start_decode = xp.zeros(lanes, dtype=np.int64)
        start_mem = xp.zeros(lanes, dtype=np.int64)
        start_wb = xp.zeros(lanes, dtype=np.int64)
        end_wb = xp.zeros(lanes, dtype=np.int64)
        port_free = xp.zeros(lanes, dtype=np.int64)
        start_fetch = xp.zeros(lanes, dtype=np.int64)
        end_decode = xp.zeros(lanes, dtype=np.int64)
        end_mem = xp.zeros(lanes, dtype=np.int64)

        for fetch_fast, iline, mem_code, mem_arg, is_store in self.steps:
            # Fetch (latch frees when the previous instruction decoded).
            np.maximum(end_fetch, start_decode, out=start_fetch)
            if fetch_fast:
                np.add(start_fetch, l1_hit, out=end_fetch)
            else:
                _hit, miss, _v, _d = il1.demand(iline, all_mask, write=False)
                np.add(start_fetch, l1_hit, out=end_fetch)
                if miss.any():
                    issue = np.maximum(start_fetch, port_free)
                    done = fill(iline, issue, miss)
                    np.copyto(port_free, done, where=miss)
                    np.copyto(end_fetch, done, where=miss)
            # Decode: 1 cycle behind the previous memory-stage entry.
            np.maximum(end_fetch, start_mem, out=start_decode)
            np.add(start_decode, 1, out=end_decode)
            # Memory / execute.
            np.maximum(end_decode, start_wb, out=start_mem)
            if mem_code == 0:
                np.add(start_mem, mem_arg, out=end_mem)
            elif mem_code == 1:
                np.add(start_mem, l1_hit, out=end_mem)
            else:
                _hit, miss, vids, vdirty = dl1.demand(mem_arg, all_mask, is_store)
                np.add(start_mem, l1_hit, out=end_mem)
                if miss.any():
                    issue = np.maximum(start_mem, port_free)
                    done = fill(mem_arg, issue, miss)
                    np.copyto(port_free, done, where=miss)
                    np.copyto(end_mem, done, where=miss)
                    dirty_victims = miss & vdirty
                    if dirty_victims.any():
                        resident = llc.writeback(vids, dirty_victims)
                        memory_writes += dirty_victims & ~resident
            # Write-back: 1 cycle, in order.
            np.maximum(end_mem, end_wb, out=start_wb)
            np.add(start_wb, 1, out=end_wb)

        return self._finalise(triples, env, end_wb, started)


def _batch_obstacle(requests: Sequence[RunRequest]) -> Optional[str]:
    """Why a request batch cannot run vectorised (None if it can).

    Shared by :class:`BatchBackend` and :class:`ShardedBatchBackend`:
    both need the campaign to be a homogeneous analysis-mode template
    with no in-process fault plan installed.
    """
    if _backend_mod._FAULT_PLAN is not None:
        return "a fault-injection plan is installed (chaos testing is per-run)"
    reason = batch_ineligibility(requests[0])
    if reason is not None:
        return reason
    template = requests[0].template_key()
    if any(request.template_key() != template for request in requests[1:]):
        return (
            "requests are heterogeneous (mixed traces, configs or "
            "scenarios); lanes must share one template"
        )
    return None


class BatchBackend(ExecutionBackend):
    """Lock-step NumPy execution of homogeneous analysis campaigns.

    Implements the :class:`~repro.sim.backend.ExecutionBackend`
    protocol, so campaigns, checkpointing, observers and
    :class:`~repro.analysis.experiments.PWCETTable` compose unchanged.
    Requests must share one template (trace, config, scenario) and be
    analysis-mode isolation runs; anything else is delegated to
    ``fallback`` (default: a fresh :class:`SerialBackend`), or — with
    ``strict=True``, the CLI's ``--engine batch`` contract — rejected
    with a :class:`~repro.errors.ConfigurationError` naming the reason.

    ``max_lanes`` bounds the lane width of one sweep (memory: the LLC
    tag/dirty planes are ``lanes * sets * ways`` entries); larger
    campaigns run as consecutive chunks, which is still bit-identical
    because lanes never interact.
    """

    #: One sweep serves the whole request batch: adaptive campaigns
    #: may speculate with growing dispatch blocks on this backend.
    amortised_dispatch = True

    def __init__(
        self,
        fallback: Optional[ExecutionBackend] = None,
        strict: bool = False,
        max_lanes: int = 1024,
        plan_cache: Optional[PlanCache] = None,
        kernel: bool = False,
    ) -> None:
        if max_lanes < 1:
            raise ConfigurationError(
                f"batch engine needs max_lanes >= 1, got {max_lanes}"
            )
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.strict = strict
        self.max_lanes = max_lanes
        self.plan_cache = (
            plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        )
        self.kernel = kernel
        self.name = "kernel" if kernel else "batch"

    def _plan_for(self, request: RunRequest) -> _TemplatePlan:
        """The sweep plan for one request: interpreter or kernel."""
        if self.kernel:
            from repro.sim.kernels import KernelTemplatePlan

            return KernelTemplatePlan.for_request(request, self.plan_cache)
        return _TemplatePlan.for_request(request, self.plan_cache)

    def _ineligibility(self, requests: Sequence[RunRequest]) -> Optional[str]:
        """Why this request batch cannot run vectorised (None if it can)."""
        return _batch_obstacle(requests)

    def _delegate(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver],
        reason: str,
    ) -> List[RunOutcome]:
        self.name = self.fallback.name
        if observer is not None:
            observer.on_message(
                f"batch engine unavailable ({reason}); "
                f"falling back to the {self.fallback.name} backend"
            )
        return self.fallback.execute(requests, observer=observer)

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        requests = list(requests)
        if not requests:
            return []
        reason = self._ineligibility(requests)
        if reason is not None:
            if self.strict:
                raise ConfigurationError(
                    f"batch engine cannot run this campaign: {reason}"
                )
            return self._delegate(requests, observer, reason)
        try:
            plan = self._plan_for(requests[0])
        except Exception as exc:  # noqa: BLE001 — scalar engine decides
            if self.strict:
                raise
            return self._delegate(requests, observer, str(exc))
        self.name = "kernel" if self.kernel else "batch"
        telemetry = current_telemetry()
        outcomes: List[RunOutcome] = []
        for begin in range(0, len(requests), self.max_lanes):
            chunk = requests[begin:begin + self.max_lanes]
            sweep_span = (
                telemetry.tracer.span("batch_sweep", lanes=len(chunk),
                                      task=chunk[0].traces[0].name)
                if telemetry is not None else contextlib.nullcontext()
            )
            try:
                with sweep_span:
                    chunk_outcomes = plan.execute(chunk)
            except Exception as exc:  # noqa: BLE001 — scalar engine decides
                if self.strict:
                    raise
                outcomes.extend(self._delegate(chunk, observer, str(exc)))
                continue
            for outcome in chunk_outcomes:
                _notify(observer, outcome)
            outcomes.extend(chunk_outcomes)
        return outcomes


# ----------------------------------------------------------------------
# sharded batch: lock-step lanes inside the process pool's wave dispatch
# ----------------------------------------------------------------------
def shard_lanes(
    jobs: Sequence[tuple],
    shards: int,
    max_size: Optional[int] = None,
) -> List[List[tuple]]:
    """Partition ``jobs`` into contiguous, balanced shards.

    Deterministic: the partition depends only on ``(len(jobs), shards,
    max_size)``, sizes differ by at most one, order is preserved and
    every job lands in exactly one shard (``tests/test_shard.py``
    proves this by hypothesis).  ``max_size`` (the engine's
    ``max_lanes``) raises the shard count so no single sweep exceeds
    the lane-width bound.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be positive, got {shards}")
    if max_size is not None and max_size < 1:
        raise ConfigurationError(
            f"shard size bound must be positive, got {max_size}"
        )
    jobs = list(jobs)
    count = len(jobs)
    if count == 0:
        return []
    shards = min(shards, count)
    if max_size is not None:
        shards = max(shards, -(-count // max_size))
    base, extra = divmod(count, shards)
    out = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        out.append(jobs[start:start + size])
        start += size
    return out


@dataclass(frozen=True)
class _ShardHandle:
    """Everything a shard worker needs to rebuild its ``_TemplatePlan``.

    Pickled once per worker at pool bootstrap.  The heavy trace arrays
    travel as a :class:`~repro.sim.plancache.SharedProgramHandle`
    (name + layout of the parent's shared-memory block), so the pickle
    stays a few hundred bytes regardless of trace size.
    """

    config: object
    scenario: object
    core_id: int
    program: SharedProgramHandle
    kernel: bool = False

    def materialise(self) -> _TemplatePlan:
        attached = self.program.attach()
        if self.kernel:
            from repro.sim.kernels import KernelTemplatePlan

            # The kernel plan recompiles worker-side from the attached
            # program: the compile is a single cheap pass over the step
            # arrays, far below the cost of shipping the op list.
            return KernelTemplatePlan(
                self.config, self.scenario, self.core_id, attached
            )
        return _TemplatePlan(self.config, self.scenario, self.core_id,
                             attached)


# Worker-side state of ShardedBatchBackend: the materialised plan,
# built once per worker from the shared-memory handle at bootstrap.
_WORKER_PLAN: Optional[_TemplatePlan] = None


def _bootstrap_shard_worker(handle: _ShardHandle, fault_plan=None) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = handle.materialise()
    _backend_mod._FAULT_PLAN = fault_plan
    _backend_mod._IN_WORKER = True


def _run_shard(triples: Sequence[tuple]) -> List[RunOutcome]:
    """Execute one shard of ``(index, seed, attempt)`` triples lock-step.

    Fault injection (chaos tests) acts before the sweep: a lane whose
    plan says "crash"/"hang" takes the whole shard with it — that is
    the sharded blast radius, and the parent's wave machinery retries
    exactly those lanes.  "corrupt" mutates only its own lane's result
    after the checksum stamp, so the parent's integrity re-check
    retries that lane alone.
    """
    plan = _WORKER_PLAN
    if plan is None:  # pragma: no cover — would be a harness bug
        raise RuntimeError("shard worker used before bootstrap")
    fault_plan = _backend_mod._FAULT_PLAN
    corrupt = set()
    if fault_plan is not None:
        for index, _seed, attempt in triples:
            fault = fault_plan.fault_for(index, attempt)
            if fault == "corrupt":
                corrupt.add(index)
            elif fault is not None:
                _backend_mod._trigger_fault(fault, fault_plan)
    try:
        outcomes = plan.execute_lanes(triples)
    except Exception as exc:  # noqa: BLE001 — captured per lane
        error = traceback.format_exc()
        kind = classify_exception(exc)
        return [
            RunOutcome(
                index=index, seed=seed, result=None, error=error,
                wall_time_s=0.0, error_kind=kind, attempts=attempt,
            )
            for index, seed, attempt in triples
        ]
    for outcome in outcomes:
        if outcome.index in corrupt:
            # Simulate a bit-flip in IPC transit: mutate the payload
            # *after* its integrity stamp, as _run_one does.
            outcome.result.cores[0].cycles += 1
    return outcomes


class ShardedBatchBackend(ProcessPoolBackend):
    """Multi-core lane sharding: batch sweeps inside the wave dispatch.

    Partitions a campaign's lanes into deterministic contiguous shards
    (:func:`shard_lanes`) and executes each shard with the lock-step
    ``_TemplatePlan`` sweep inside :class:`ProcessPoolBackend`'s wave
    machinery — inheriting its retry policy, progress watchdog, hard
    worker-death detection and checksum re-verification.  The compiled
    plan's arrays travel to workers zero-copy through one
    ``multiprocessing.shared_memory`` block; the per-worker pickle is a
    fixed-size :class:`_ShardHandle`.

    Bit-identity holds by construction: lanes never interact, each
    lane's PRNG streams derive from its own run seed, and a retried
    shard re-executes the same pure ``(plan, index, seed)`` functions
    — so samples, records, checksums and seeds equal single-process
    batch, which equals scalar.

    Eligibility matches :class:`BatchBackend` (homogeneous
    analysis-mode campaigns); ``strict=True`` (the CLI's
    ``--engine sharded`` contract) rejects ineligible work with a
    :class:`~repro.errors.ConfigurationError`, otherwise it falls back
    to serial execution.  On a single usable CPU the pool degrades to
    the in-process batch engine unless ``force_pool=True``.
    """

    #: Shards amortise dispatch like the in-process batch engine.
    amortised_dispatch = True

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        retry=None,
        run_timeout_s: Optional[float] = None,
        fault_plan=None,
        force_pool: bool = False,
        strict: bool = False,
        plan_cache: Optional[PlanCache] = None,
        max_lanes: int = 1024,
        kernel: bool = False,
    ) -> None:
        if workers is None:
            workers = usable_cpus()
        super().__init__(
            workers=workers,
            mp_context=mp_context,
            retry=retry,
            run_timeout_s=run_timeout_s,
            fault_plan=fault_plan,
            force_pool=force_pool,
        )
        if max_lanes < 1:
            raise ConfigurationError(
                f"sharded batch engine needs max_lanes >= 1, got {max_lanes}"
            )
        self.strict = strict
        self.plan_cache = (
            plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        )
        self.max_lanes = max_lanes
        self.kernel = kernel
        self.name = f"sharded[{workers}]"
        self._shard_template: Optional[_ShardHandle] = None

    # -- wave-dispatch hooks -------------------------------------------
    def _chunks(self, jobs: List[tuple]) -> List[List[tuple]]:
        return shard_lanes(jobs, self.workers, self.max_lanes)

    def _pool_initializer(self, template: RunRequest) -> Tuple[Callable, tuple]:
        if self._shard_template is None:  # pragma: no cover — harness bug
            raise RuntimeError("sharded dispatch without a shared plan")
        return _bootstrap_shard_worker, (self._shard_template, self.fault_plan)

    def _runner(self) -> Callable:
        return _run_shard

    # -- entry ---------------------------------------------------------
    def _delegate_scalar(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver],
        reason: str,
    ) -> List[RunOutcome]:
        if observer is not None:
            observer.on_message(
                f"sharded batch engine unavailable ({reason}); "
                f"falling back to the serial backend"
            )
        serial = SerialBackend(retry=self.retry)
        if self.fault_plan is not None:
            with installed_fault_plan(self.fault_plan):
                return serial.execute(requests, observer)
        return serial.execute(requests, observer)

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        requests = list(requests)
        if not requests:
            return []
        self._degrade_warned = False  # new campaign: the advisory may fire once
        reason = _batch_obstacle(requests)
        if reason is not None:
            if self.strict:
                raise ConfigurationError(
                    f"sharded batch engine cannot run this campaign: {reason}"
                )
            return self._delegate_scalar(requests, observer, reason)
        try:
            plan = _TemplatePlan.for_request(requests[0], self.plan_cache)
        except Exception as exc:  # noqa: BLE001 — scalar engine decides
            if self.strict:
                raise
            return self._delegate_scalar(requests, observer, str(exc))
        if (self.workers == 1 or len(requests) == 1
                or self._degrades(requests, observer)):
            # One shard is just the batch engine; run it in-process
            # (chaos plans stay per-run serial, as batch requires).
            if self.fault_plan is not None:
                serial = SerialBackend(retry=self.retry)
                with installed_fault_plan(self.fault_plan):
                    return serial.execute(requests, observer)
            inner = BatchBackend(
                fallback=SerialBackend(retry=self.retry),
                strict=self.strict,
                max_lanes=self.max_lanes,
                plan_cache=self.plan_cache,
                kernel=self.kernel,
            )
            return inner.execute(requests, observer)
        shared = SharedProgram.create(plan.program)
        self._shard_template = _ShardHandle(
            config=requests[0].config,
            scenario=requests[0].scenario,
            core_id=requests[0].core_id,
            program=shared.handle,
            kernel=self.kernel,
        )
        context = multiprocessing.get_context(self.mp_context)
        try:
            return self._execute_waves(context, requests[0], requests, observer)
        finally:
            self._shard_template = None
            shared.dispose()
