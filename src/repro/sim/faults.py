"""Deterministic fault injection: reproducible chaos for the run engine.

The resilience machinery (retries, crash recovery, watchdogs, result
integrity checks) only earns trust if every recovery path is exercised
on demand — and exercised *reproducibly*, so a chaos test that fails
in CI fails identically on a laptop.  This module provides that:

* :class:`FaultPlan` — a pure function from ``(index, attempt)`` to a
  fault kind, derived from a seed.  The same plan injects the same
  faults in every process, on every host, in every run of the suite.
* :class:`FaultInjectingBackend` — wraps any execution backend and
  installs the plan into its execution path: in-process for
  :class:`~repro.sim.backend.SerialBackend`, at worker bootstrap for
  :class:`~repro.sim.backend.ProcessPoolBackend` (where an injected
  "crash" genuinely ``os._exit``\\ s the worker and an injected "hang"
  genuinely parks it past the watchdog).

Fault kinds and the recovery path each one exercises:

========== ==========================================================
``crash``  hard worker death → exit-code detection, pool rebuild,
           re-dispatch (:class:`~repro.errors.WorkerCrashError`)
``hang``   worker parks past ``run_timeout_s`` → progress watchdog,
           pool termination (:class:`~repro.errors.RunTimeoutError`)
``slow``   run sleeps ``slow_s`` → no failure; exercises completion
           reordering and watchdog *non*-firing
``corrupt`` result mutated after checksumming → consumer-side
           integrity check (:class:`~repro.errors.ResultIntegrityError`)
========== ==========================================================

Because retries re-execute pure functions of ``(template, index,
seed)``, a campaign under any fault plan yields ``execution_times``
bit-identical to a fault-free serial campaign — the property the
chaos suite asserts.

Under the :class:`~repro.sim.batch.ShardedBatchBackend` the blast
radius changes shape but not the contract: a "crash" or "hang" fires
before its shard's lock-step sweep, so the *whole shard* is lost and
re-dispatched (each lane's attempt counter advancing), while a
"corrupt" mutates only its own lane's payload after the integrity
stamp and is retried alone.  Either way, recovery re-executes pure
functions and the final sample stays bit-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.backend import (
    ExecutionBackend,
    RunObserver,
    RunOutcome,
    installed_fault_plan,
)
from repro.utils.rng import SplitMix64

#: Fault kinds a plan can inject, in cumulative-rate order.
FAULT_KINDS = ("crash", "hang", "slow", "corrupt")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    ``fault_for(index, attempt)`` is a pure function: the same plan
    gives the same answer in the parent, in every worker, and across
    suite runs.  Faults are only injected while ``attempt <=
    max_faulty_attempts``, which guarantees a campaign under a
    bounded :class:`~repro.sim.backend.RetryPolicy` always converges
    (the final permitted attempt runs fault-free).

    Rates are probabilities per ``(index, attempt)`` draw and must sum
    to at most 1.
    """

    seed: int
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: Host seconds an injected "slow" run sleeps (keep well below any
    #: watchdog timeout).
    slow_s: float = 0.05
    #: Host seconds an injected "hang" parks a worker (keep well above
    #: the watchdog timeout so the hang is detected, not outwaited).
    hang_s: float = 30.0
    #: Inject faults only on attempts up to this number, so bounded
    #: retries always converge.
    max_faulty_attempts: int = 1

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.hang_rate, self.slow_rate,
                 self.corrupt_rate)
        if any(rate < 0 for rate in rates):
            raise ConfigurationError(f"fault rates must be non-negative: {rates}")
        if sum(rates) > 1.0:
            raise ConfigurationError(
                f"fault rates must sum to at most 1, got {sum(rates)}"
            )
        if self.max_faulty_attempts < 0:
            raise ConfigurationError(
                "max_faulty_attempts must be non-negative, "
                f"got {self.max_faulty_attempts}"
            )
        if self.slow_s < 0 or self.hang_s < 0:
            raise ConfigurationError("fault sleep durations must be non-negative")

    def fault_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault injected into attempt ``attempt`` of run ``index``.

        Returns one of :data:`FAULT_KINDS` or ``None``.  Deterministic:
        derived from ``(seed, index, attempt)`` through SplitMix64, with
        no process-local state.
        """
        if attempt > self.max_faulty_attempts:
            return None
        # One independent draw per (index, attempt): mix both into the
        # stream seed so consecutive indices/attempts are uncorrelated.
        mixer = SplitMix64(self.seed & 0xFFFFFFFFFFFFFFFF)
        key = (index * 0x9E3779B97F4A7C15 + attempt) & 0xFFFFFFFFFFFFFFFF
        stream = SplitMix64(mixer.next_u64() ^ key)
        draw = stream.next_u64() / 2.0 ** 64
        cumulative = 0.0
        for kind, rate in zip(
            FAULT_KINDS,
            (self.crash_rate, self.hang_rate, self.slow_rate, self.corrupt_rate),
        ):
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def fault_counts(self, runs: int, attempt: int = 1) -> dict:
        """How many of ``runs`` indices draw each fault at ``attempt``.

        A planning/reporting helper: lets a chaos test assert its plan
        actually injects every kind before claiming coverage.
        """
        counts = {kind: 0 for kind in FAULT_KINDS}
        for index in range(runs):
            kind = self.fault_for(index, attempt)
            if kind is not None:
                counts[kind] += 1
        return counts

    def fault_indices(self, kind: str, runs: int, attempt: int = 1) -> list:
        """The run indices that draw fault ``kind`` at ``attempt``.

        Chaos tests use this to predict a plan's blast radius up
        front — e.g. which lanes a sharded campaign must retry because
        their shard hosted a crashing index.
        """
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        return [
            index for index in range(runs)
            if self.fault_for(index, attempt) == kind
        ]


#: Fault kinds a service-level plan can inject, in cumulative-rate order.
SERVICE_FAULT_KINDS = ("kill", "torn_journal", "corrupt_entry")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Deterministic chaos for the *service* layer.

    Where :class:`FaultPlan` attacks individual simulation runs, this
    plan attacks the machinery around them — the job queue, the
    write-ahead job journal and the result store:

    =================  ==================================================
    ``kill``           a queue worker dies mid-job
                       (:class:`~repro.errors.WorkerCrashError`) →
                       exercises the admission layer's job-level retry
                       budget and checkpoint-based resume
    ``torn_journal``   a crash mid-append leaves a torn journal tail →
                       exercises the durable-prefix loader
                       (:func:`~repro.sim.checkpoint.scan_durable_jsonl`)
    ``corrupt_entry``  a store entry is corrupted mid-write / by bit-rot
                       → exercises checksum rejection + re-simulation
    =================  ==================================================

    Everything is a pure function of ``(seed, index, attempt)`` through
    SplitMix64 — the same plan injects the same faults on every host,
    so a service chaos test that fails in CI fails identically locally.
    As with :class:`FaultPlan`, faults fire only while ``attempt <=
    max_faulty_attempts``, so a bounded retry budget always converges.
    """

    seed: int
    kill_rate: float = 0.0
    torn_journal_rate: float = 0.0
    corrupt_entry_rate: float = 0.0
    #: Inject faults only on attempts up to this number, so bounded
    #: job-level retry budgets always converge.
    max_faulty_attempts: int = 1

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.torn_journal_rate,
                 self.corrupt_entry_rate)
        if any(rate < 0 for rate in rates):
            raise ConfigurationError(
                f"service fault rates must be non-negative: {rates}"
            )
        if sum(rates) > 1.0:
            raise ConfigurationError(
                f"service fault rates must sum to at most 1, got {sum(rates)}"
            )
        if self.max_faulty_attempts < 0:
            raise ConfigurationError(
                "max_faulty_attempts must be non-negative, "
                f"got {self.max_faulty_attempts}"
            )

    def _stream(self, index: int, attempt: int, domain: int) -> SplitMix64:
        # Domain-separated from FaultPlan's draws: the same seed driving
        # both a run-level and a service-level plan must not correlate.
        mixer = SplitMix64((self.seed ^ 0xA5A5_5A5A_C3C3_3C3C) & 0xFFFFFFFFFFFFFFFF)
        key = (index * 0x9E3779B97F4A7C15 + attempt * 0xBF58476D1CE4E5B9
               + domain) & 0xFFFFFFFFFFFFFFFF
        return SplitMix64(mixer.next_u64() ^ key)

    def fault_for(self, index: int, attempt: int = 1) -> Optional[str]:
        """The fault injected into attempt ``attempt`` of admission ``index``.

        Returns one of :data:`SERVICE_FAULT_KINDS` or ``None``; pure in
        ``(seed, index, attempt)``.
        """
        if attempt > self.max_faulty_attempts:
            return None
        draw = self._stream(index, attempt, domain=1).next_u64() / 2.0 ** 64
        cumulative = 0.0
        for kind, rate in zip(
            SERVICE_FAULT_KINDS,
            (self.kill_rate, self.torn_journal_rate, self.corrupt_entry_rate),
        ):
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def torn_tail_bytes(self, index: int, max_bytes: int) -> int:
        """Deterministic tear size (1..max_bytes) for a torn-journal fault."""
        if max_bytes <= 0:
            raise ConfigurationError(
                f"torn_tail_bytes needs a positive max, got {max_bytes}"
            )
        return 1 + self._stream(index, 1, domain=2).next_u64() % max_bytes

    def corrupt_offset(self, index: int, size: int) -> int:
        """Deterministic byte offset (0..size-1) for a corrupt-entry fault."""
        if size <= 0:
            raise ConfigurationError(
                f"corrupt_offset needs a positive file size, got {size}"
            )
        return self._stream(index, 1, domain=3).next_u64() % size


def tear_file_tail(path, nbytes: int) -> int:
    """Truncate the last ``nbytes`` of ``path`` (a crash mid-append).

    Returns the number of bytes actually removed (the whole file, if
    shorter).  The service chaos suite applies this to job journals and
    asserts the durable-prefix loader recovers everything before the
    tear.
    """
    size = os.path.getsize(path)
    removed = min(max(nbytes, 0), size)
    os.truncate(path, size - removed)
    return removed


def flip_file_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` (mid-write corruption / bit-rot).

    The service chaos suite applies this to result-store entries and
    asserts the checksum rejects the entry and the campaign is
    re-simulated bit-identically.
    """
    with open(path, "r+b") as stream:
        stream.seek(offset)
        byte = stream.read(1)
        if not byte:
            raise ConfigurationError(
                f"cannot corrupt byte {offset} of {path}: past end of file"
            )
        stream.seek(offset)
        stream.write(bytes([byte[0] ^ 0xFF]))


class FaultInjectingBackend(ExecutionBackend):
    """Wrap a backend so its runs execute under a :class:`FaultPlan`.

    For a :class:`~repro.sim.backend.ProcessPoolBackend` the plan is
    shipped to the workers at bootstrap, so crashes and hangs are the
    real thing (``os._exit``, a genuine stuck worker) and exercise the
    real recovery machinery.  For in-process backends the plan is
    installed for the duration of ``execute`` and the process-level
    faults are simulated by their classified exceptions (a crash
    cannot genuinely kill the test process).

    The wrapper adds nothing else: ordering, retries and observer
    semantics are the inner backend's.
    """

    def __init__(self, inner: ExecutionBackend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = f"faulty[{inner.name}]"

    def execute(
        self,
        requests,
        observer: Optional[RunObserver] = None,
    ) -> "list[RunOutcome]":
        inner = self.inner
        if hasattr(inner, "fault_plan"):
            # Process pool: the plan must travel to the workers, which
            # happens at pool bootstrap — install it on the backend.
            previous = inner.fault_plan
            inner.fault_plan = self.plan
            try:
                return inner.execute(requests, observer=observer)
            finally:
                inner.fault_plan = previous
        with installed_fault_plan(self.plan):
            return inner.execute(requests, observer=observer)
