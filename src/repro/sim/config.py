"""System configuration and experiment scenarios.

:class:`SystemConfig` captures the paper's experimental platform
(§4.1): a 4-core processor with per-core 4KB/4-way/16B-line IL1 and
DL1, a shared 64KB/8-way non-inclusive LLC, 1/10/100-cycle
L1/LLC/memory latencies and a 2-cycle random-arbitration bus.  All
caches are write-back; random placement and Evict-on-Miss random
replacement make the platform MBPTA-compliant.

:class:`Scenario` selects the inter-task interference mechanism under
evaluation — EFL with some MID, hardware way-partitioning (CP) with
some per-core way count, or an uncontrolled shared LLC — plus the
operation mode (analysis vs deployment, Figure 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import EFLConfig, OperationMode
from repro.errors import ConfigurationError
from repro.mem.cache import CacheGeometry
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class SystemConfig:
    """Hardware parameters of the simulated platform.

    Defaults reproduce the paper's setup exactly.
    """

    num_cores: int = 4
    line_size: int = 16
    l1_size: int = 4096
    l1_ways: int = 4
    llc_size: int = 65536
    llc_ways: int = 8
    l1_hit_latency: int = 1
    llc_hit_latency: int = 10
    memory_latency: int = 100
    bus_latency: int = 2
    #: "random" (TR, the paper's platform) or "modulo" (TD substrate).
    placement: str = "random"
    #: "eom" (TR) or "lru" (TD substrate / A3 ablation).
    replacement: str = "eom"
    #: write-back DL1 (paper default); False = write-through (A2 ablation).
    dl1_write_back: bool = True
    #: Extra cycles charged per bus transfer at analysis time — the
    #: composable upper bound of the random-arbitration bus [13].
    #: ``None`` selects the full worst round, (num_cores - 1) * bus_latency.
    analysis_bus_penalty: Optional[int] = None
    #: Extra cycles charged per memory read at analysis time — the
    #: per-request interference bound of the analysable memory
    #: controller [25].  ``None`` selects the full worst round,
    #: (num_cores - 1) * memory_latency.
    analysis_memory_penalty: Optional[int] = None

    def __post_init__(self) -> None:
        require_positive_int("num_cores", self.num_cores)
        require_positive_int("l1_hit_latency", self.l1_hit_latency)
        require_positive_int("llc_hit_latency", self.llc_hit_latency)
        require_positive_int("memory_latency", self.memory_latency)
        require_positive_int("bus_latency", self.bus_latency)
        if self.placement not in ("random", "modulo"):
            raise ConfigurationError(f"unknown placement {self.placement!r}")
        if self.replacement not in ("eom", "lru"):
            raise ConfigurationError(f"unknown replacement {self.replacement!r}")
        for name in ("analysis_bus_penalty", "analysis_memory_penalty"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        # Trigger geometry validation early.
        self.l1_geometry
        self.llc_geometry

    @property
    def l1_geometry(self) -> CacheGeometry:
        """Geometry shared by every IL1 and DL1."""
        return CacheGeometry(
            size_bytes=self.l1_size, line_size=self.line_size, ways=self.l1_ways
        )

    @property
    def llc_geometry(self) -> CacheGeometry:
        """Geometry of the shared LLC."""
        return CacheGeometry(
            size_bytes=self.llc_size, line_size=self.line_size, ways=self.llc_ways
        )

    @property
    def is_time_randomised(self) -> bool:
        """Whether the cache policies are the MBPTA-compliant TR pair."""
        return self.placement == "random" and self.replacement == "eom"


@dataclass(frozen=True)
class Scenario:
    """Which interference-control mechanism and stage to simulate.

    Use the constructors :meth:`efl`, :meth:`cache_partitioning` and
    :meth:`uncontrolled` rather than filling fields by hand.

    Attributes
    ----------
    mechanism:
        ``"efl"``, ``"cp"`` or ``"none"``.
    mode:
        Analysis (isolation + worst-case interference injection /
        upper-bounds) or deployment (real co-running).
    mid:
        The MID value for EFL scenarios (cycles).
    randomise_mid:
        EFL MID randomisation knob (A1 ablation sets it False).
    ways_per_core:
        For CP scenarios: how many LLC ways each core owns.  A single
        int gives every core that many ways; a tuple gives per-core
        counts (deployment-time partitions found by the optimiser).
    """

    mechanism: str
    mode: OperationMode
    mid: int = 0
    randomise_mid: bool = True
    ways_per_core: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.mechanism not in ("efl", "cp", "none"):
            raise ConfigurationError(f"unknown mechanism {self.mechanism!r}")
        if self.mechanism == "efl" and self.mid <= 0:
            raise ConfigurationError("EFL scenarios need a positive MID")
        if self.mechanism == "cp":
            if not self.ways_per_core:
                raise ConfigurationError("CP scenarios need ways_per_core")
            if any(w <= 0 for w in self.ways_per_core):
                raise ConfigurationError("every CP partition needs >= 1 way")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def efl(
        cls,
        mid: int,
        mode: OperationMode = OperationMode.ANALYSIS,
        randomise_mid: bool = True,
    ) -> "Scenario":
        """EFL with the given MID — the paper's EFLmid configurations."""
        return cls(mechanism="efl", mode=mode, mid=mid, randomise_mid=randomise_mid)

    @classmethod
    def cache_partitioning(
        cls,
        ways,
        num_cores: int = 4,
        mode: OperationMode = OperationMode.ANALYSIS,
    ) -> "Scenario":
        """Hardware way-partitioning — the paper's CPways configurations.

        ``ways`` may be an int (uniform per-core count, e.g. CP2) or a
        per-core tuple (an optimiser-chosen deployment partition).
        """
        if isinstance(ways, int):
            counts = tuple([ways] * num_cores)
        else:
            counts = tuple(ways)
        return cls(mechanism="cp", mode=mode, ways_per_core=counts)

    @classmethod
    def uncontrolled(
        cls, mode: OperationMode = OperationMode.DEPLOYMENT
    ) -> "Scenario":
        """A fully shared LLC with no interference control.

        Not analysable (deployment misses can exceed anything seen at
        analysis), but useful as an average-performance reference.
        """
        return cls(mechanism="none", mode=mode)

    @classmethod
    def from_label(
        cls,
        label: str,
        num_cores: int = 4,
        mode: OperationMode = OperationMode.ANALYSIS,
    ) -> "Scenario":
        """Parse a :meth:`label`-style tag back into a scenario.

        The inverse of :meth:`label` for the tags the CLI and the
        campaign service accept: ``EFL<mid>`` (e.g. ``EFL500``),
        ``CP<ways>`` (uniform, e.g. ``CP2``) or ``CP<a>-<b>-…``
        (per-core counts), and ``SHARED``.  ``mode`` defaults to
        analysis — what a pWCET campaign submission means.
        """
        tag = label.strip().upper()
        try:
            if tag.startswith("EFL"):
                return cls.efl(int(tag[3:]), mode=mode)
            if tag.startswith("CP"):
                body = tag[2:]
                if "-" in body:
                    return cls.cache_partitioning(
                        tuple(int(part) for part in body.split("-")),
                        num_cores=num_cores, mode=mode,
                    )
                return cls.cache_partitioning(
                    int(body), num_cores=num_cores, mode=mode
                )
            if tag == "SHARED":
                return cls.uncontrolled(mode=mode)
        except ValueError:
            pass
        raise ConfigurationError(
            f"cannot parse scenario label {label!r}; expected EFL<mid> "
            f"(e.g. EFL500), CP<ways> (e.g. CP2 or CP1-2-2-3) or SHARED"
        )

    # ------------------------------------------------------------------
    def efl_config(self) -> EFLConfig:
        """The per-core EFL register file implied by this scenario."""
        if self.mechanism != "efl":
            return EFLConfig.disabled()
        return EFLConfig(mid=self.mid, randomise_mid=self.randomise_mid)

    def label(self) -> str:
        """Short human-readable tag, e.g. ``EFL500`` or ``CP2``."""
        if self.mechanism == "efl":
            return f"EFL{self.mid}"
        if self.mechanism == "cp":
            counts = set(self.ways_per_core)
            if len(counts) == 1:
                return f"CP{next(iter(counts))}"
            return "CP" + "-".join(str(w) for w in self.ways_per_core)
        return "SHARED"
