"""Hardware construction: one fresh platform instance per run.

MBPTA's measurement protocol requires a *fresh randomisation* per run:
new RIIs for every random-placement cache (so addresses land in new
sets) and new PRNG streams for replacement, arbitration and EFL.  A
:func:`build_platform` call materialises one such instance from a
(config, scenario, run-seed) triple; campaigns call it once per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import OperationMode
from repro.core.efl import EFLController
from repro.errors import ConfigurationError
from repro.mem.cache import AccessResult, Cache
from repro.mem.partition import PartitionedLLC, WayPartition
from repro.mem.bus import SharedBus
from repro.mem.mainmemory import MainMemory
from repro.mem.memctrl import AnalysableMemoryController
from repro.mem.placement import make_placement
from repro.mem.replacement import make_replacement
from repro.sim.config import Scenario, SystemConfig
from repro.utils.rng import MultiplyWithCarry, SplitMix64

_RII_BITS = 32


class FullySharedLLCView:
    """Adapter presenting a fully shared LLC uniformly to the memory path.

    Every core sees every way — the EFL (and uncontrolled) organisation.
    """

    def __init__(self, cache: Cache) -> None:
        self.cache = cache

    def probe(self, core: int, line: int) -> bool:
        """Whether ``line`` is resident (core-independent)."""
        return self.cache.probe(line)

    def access(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Demand access over all ways."""
        return self.cache.access(line, write=write)


class PartitionedLLCView:
    """Adapter presenting a way-partitioned LLC to the memory path."""

    def __init__(self, partitioned: PartitionedLLC) -> None:
        self.partitioned = partitioned
        self.cache = partitioned.cache

    def probe(self, core: int, line: int) -> bool:
        """Whether ``line`` is resident in ``core``'s partition."""
        return self.partitioned.probe(core, line)

    def access(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Demand access confined to ``core``'s partition."""
        return self.partitioned.access(core, line, write=write)


@dataclass
class Platform:
    """All hardware instances of one simulated run."""

    config: SystemConfig
    scenario: Scenario
    il1s: List[Cache]
    dl1s: List[Cache]
    llc: Cache
    llc_view: object
    bus: SharedBus
    memory: MainMemory
    memctrl: AnalysableMemoryController
    efl: Optional[EFLController]

    @property
    def mode(self) -> OperationMode:
        """Operation mode of this run (from the scenario)."""
        return self.scenario.mode


def _build_cache(
    config: SystemConfig,
    geometry,
    name: str,
    seeds: SplitMix64,
    write_back: bool = True,
) -> Cache:
    """Construct one cache with the configured policy pair."""
    rii = seeds.next_u64() & ((1 << _RII_BITS) - 1)
    placement = make_placement(config.placement, geometry.num_sets, rii)
    rng = MultiplyWithCarry(seeds.next_u64())
    replacement = make_replacement(config.replacement, rng)
    return Cache(geometry, placement, replacement, name=name, write_back=write_back)


def build_platform(
    config: SystemConfig,
    scenario: Scenario,
    seed: int,
    analysed_core: int = 0,
) -> Platform:
    """Materialise the hardware for one run.

    Every random-placement cache receives a fresh RII derived from
    ``seed`` and every PRNG a fresh stream, implementing the paper's
    per-run re-randomisation (a new RII is generated for each of the
    300–1,000 analysis runs, §3.3).
    """
    seeds = SplitMix64(seed)
    il1s = [
        _build_cache(config, config.l1_geometry, f"IL1[{c}]", seeds)
        for c in range(config.num_cores)
    ]
    dl1s = [
        _build_cache(
            config,
            config.l1_geometry,
            f"DL1[{c}]",
            seeds,
            write_back=config.dl1_write_back,
        )
        for c in range(config.num_cores)
    ]
    llc = _build_cache(config, config.llc_geometry, "LLC", seeds)

    if scenario.mechanism == "cp":
        counts = scenario.ways_per_core
        if len(counts) != config.num_cores:
            raise ConfigurationError(
                f"CP scenario gives {len(counts)} per-core way counts for a "
                f"{config.num_cores}-core system"
            )
        if scenario.mode is OperationMode.ANALYSIS:
            # Isolation analysis: only the analysed core runs, so only
            # its partition is materialised.  This is what the paper's
            # CP-w analysis means — the task under analysis owns w of
            # the LLC's ways, whoever ends up owning the rest later.
            ways = counts[analysed_core]
            if ways > config.llc_ways:
                raise ConfigurationError(
                    f"CP partition of {ways} ways exceeds the LLC's "
                    f"{config.llc_ways}"
                )
            partition = WayPartition({analysed_core: tuple(range(ways))})
        else:
            if sum(counts) > config.llc_ways:
                raise ConfigurationError(
                    f"CP partition {counts} exceeds the LLC's "
                    f"{config.llc_ways} ways"
                )
            partition = WayPartition.from_counts(counts, config.llc_ways)
        llc_view = PartitionedLLCView(PartitionedLLC(llc, partition))
    else:
        llc_view = FullySharedLLCView(llc)

    bus = SharedBus(
        config.num_cores, config.bus_latency, MultiplyWithCarry(seeds.next_u64())
    )
    memory = MainMemory(config.memory_latency)
    memctrl = AnalysableMemoryController(config.num_cores, memory)

    efl = None
    if scenario.mechanism == "efl":
        efl = EFLController(
            llc,
            [scenario.efl_config()] * config.num_cores,
            mode=scenario.mode,
            analysed_core=analysed_core,
            seed=seeds.next_u64(),
        )

    return Platform(
        config=config,
        scenario=scenario,
        il1s=il1s,
        dl1s=dl1s,
        llc=llc,
        llc_view=llc_view,
        bus=bus,
        memory=memory,
        memctrl=memctrl,
        efl=efl,
    )
