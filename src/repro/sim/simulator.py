"""Execution engines: isolation (analysis) and multicore (deployment).

:func:`run_isolation` reproduces the paper's analysis stage: the task
under analysis runs alone on core 0 of a freshly randomised platform;
interference from the other cores arrives either as CRG force-miss
evictions (EFL scenarios) or not at all (CP partitions isolate), and
bus/memory interference is charged its composable upper bound.

:func:`run_workload` reproduces the deployment stage: up to
``num_cores`` tasks run simultaneously, sharing the bus, the LLC
(partitioned or EFL-throttled) and the memory controller with real
contention.

Cross-core event ordering in deployment mode is kept approximately
time-ordered by always stepping the core whose next fetch would start
earliest; reordering is bounded by one instruction's latency.  The
analysis engine has no such approximation (a single active core; CRG
evictions are replayed in exact time order), so the trust-critical
side of the paper — analysis-time bounds — is modelled exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.core.config import OperationMode
from repro.cpu.pipeline import InOrderPipeline
from repro.cpu.trace import Trace
from repro.errors import ConfigurationError, RunTimeoutError, SimulationError
from repro.mem.cache import Cache
from repro.sim.config import Scenario, SystemConfig
from repro.sim.memorypath import MemoryPath
from repro.sim.platform import Platform, build_platform
from repro.sim.profiler import HotPathProfiler, ProfileSnapshot


@dataclass
class CoreResult:
    """Outcome of one task on one core in one run."""

    core: int
    task: str
    cycles: int
    instructions: int
    il1_misses: int
    il1_accesses: int
    dl1_misses: int
    dl1_accesses: int
    efl_stall_cycles: int = 0
    efl_evictions: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle of this task."""
        if self.cycles <= 0:
            raise SimulationError(f"task {self.task!r} retired in {self.cycles} cycles")
        return self.instructions / self.cycles


@dataclass
class RunResult:
    """Outcome of one simulated run (one or more cores)."""

    scenario_label: str
    mode: OperationMode
    cores: List[CoreResult]
    llc_hits: int
    llc_misses: int
    llc_forced_evictions: int
    memory_reads: int
    memory_writes: int
    #: Per-component attribution, present only for profiled runs.
    profile: Optional[ProfileSnapshot] = None

    @property
    def cycles(self) -> int:
        """Makespan: cycles until the last task finished."""
        return max(core.cycles for core in self.cores)

    def core(self, index: int) -> CoreResult:
        """Result of the task on core ``index``."""
        for result in self.cores:
            if result.core == index:
                return result
        raise SimulationError(f"no result for core {index}")

    @property
    def total_ipc(self) -> float:
        """Sum of per-task IPCs (the paper's workload IPC aggregate)."""
        return sum(core.ipc for core in self.cores)


class CoreRunner:
    """Drives one trace through one core's pipeline and private caches."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        il1: Cache,
        dl1: Cache,
        path: MemoryPath,
        config: SystemConfig,
        profiler: Optional[HotPathProfiler] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.il1 = il1
        self.dl1 = dl1
        self.path = path
        self.config = config
        self._profiler = profiler
        self._l1_hit = config.l1_hit_latency
        self._line_shift = config.line_size.bit_length() - 1
        self._wb_dl1 = config.dl1_write_back
        self.pipeline = InOrderPipeline(self._fetch_latency, self._mem_latency)
        self._iter = iter(trace)
        self._remaining = len(trace)
        # Hot-line shortcuts, sound for stateless (EoM) replacement
        # only: a resident line stays resident until the next fill of
        # the same cache, and hits mutate nothing — so re-probing the
        # line we just touched is pure overhead.  LRU caches must take
        # the full path because their hits update recency state.
        self._shortcut_il1 = il1._stateless_repl
        self._shortcut_dl1 = dl1._stateless_repl and config.dl1_write_back
        self._last_iline = -1
        self._last_dline = -1
        self._fast_ihits = 0
        self._fast_dhits = 0
        # The core has a single port towards the shared levels and
        # blocking miss handling (one outstanding miss), standard for
        # simple in-order real-time cores: a fetch miss issued while a
        # data miss is in flight waits for the port.  This also
        # guarantees the shared resources (bus, memory controller, EFL
        # ACU) see this core's requests in non-decreasing time order.
        self._port_free = 0

    # ------------------------------------------------------------------
    # latency callbacks
    # ------------------------------------------------------------------
    def _fetch_latency(self, pc: int, time: int) -> int:
        line = pc >> self._line_shift
        prof = self._profiler
        if line == self._last_iline:
            # Sequential fetches within one line: resident by
            # construction (EoM hits mutate nothing, and only this
            # core's IL1 fills could evict it, which reset the latch).
            self._fast_ihits += 1
            if prof is not None:
                prof.account("l1", self._l1_hit)
            return self._l1_hit
        if prof is None:
            result = self.il1.access(line)
        else:
            t0 = perf_counter()
            result = self.il1.access(line)
            wall = perf_counter() - t0
        if result.hit:
            if self._shortcut_il1:
                self._last_iline = line
            if prof is not None:
                prof.account("l1", self._l1_hit, wall)
            return self._l1_hit
        if prof is not None:
            # The lookup that missed: its wall time belongs to the L1
            # model, the miss cycles to the memory-path legs below.
            prof.account("l1", 0, wall)
        if self._shortcut_il1:
            self._last_iline = line  # just filled, now resident
        # Instruction lines are never dirty; the victim (if any) is
        # silently dropped.
        issue = time if time >= self._port_free else self._port_free
        done = self.path.fill(self.core_id, line, issue)
        self._port_free = done
        return done - time

    def _mem_latency(self, address: int, is_store: bool, time: int) -> int:
        line = address >> self._line_shift
        prof = self._profiler
        if not is_store and line == self._last_dline:
            self._fast_dhits += 1
            if prof is not None:
                prof.account("l1", self._l1_hit)
            return self._l1_hit
        if is_store and not self._wb_dl1:
            # Write-through DL1 (A2 ablation): update the DL1 copy if
            # present (no allocation on miss), write through to the LLC.
            if self.dl1.probe(line):
                self.dl1.access(line)
            issue = time if time >= self._port_free else self._port_free
            done = self.path.store_through(self.core_id, line, issue)
            self._port_free = done
            return done - time
        if prof is None:
            result = self.dl1.access(line, write=is_store)
        else:
            t0 = perf_counter()
            result = self.dl1.access(line, write=is_store)
            wall = perf_counter() - t0
        if result.hit:
            if self._shortcut_dl1:
                self._last_dline = line
            if prof is not None:
                prof.account("l1", self._l1_hit, wall)
            return self._l1_hit
        if prof is not None:
            prof.account("l1", 0, wall)
        if self._shortcut_dl1:
            self._last_dline = line  # just filled, now resident
        issue = time if time >= self._port_free else self._port_free
        done = self.path.fill(self.core_id, line, issue)
        self._port_free = done
        if result.eviction is not None and result.eviction.dirty:
            self.path.l1_writeback(self.core_id, result.eviction.line, done)
        return done - time

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the whole trace has retired."""
        return self._remaining == 0

    @property
    def frontier(self) -> int:
        """Earliest cycle the next instruction could start fetching."""
        return self.pipeline.frontier

    @property
    def schedule_key(self) -> int:
        """Lower bound on this core's next shared-resource access time.

        The multicore scheduler steps the core with the lowest key.
        The fetch frontier alone is not enough: while a long miss is in
        flight the fetch of the next instruction has already happened,
        but the core's next bus/LLC/memory request cannot issue before
        the miss completes (``_port_free``).  Ordering by the maximum
        of both keeps cross-core shared-resource requests near
        time-order, which the FCFS resource models rely on.
        """
        frontier = self.pipeline.frontier
        return frontier if frontier >= self._port_free else self._port_free

    def step(self) -> None:
        """Execute one dynamic instruction."""
        if self.finished:
            raise SimulationError(
                f"core {self.core_id} stepped past the end of {self.trace.name!r}"
            )
        pc, kind, address = next(self._iter)
        self.pipeline.step(pc, kind, address)
        self._remaining -= 1

    def run_to_completion(self, cycle_budget: Optional[int] = None) -> None:
        """Execute the remaining trace without interleaving.

        ``cycle_budget`` arms the livelock watchdog: if the simulated
        clock exceeds the budget the run is aborted with a
        *deterministic* :class:`~repro.errors.RunTimeoutError` (the
        same seed livelocks identically on every attempt, so backends
        must not retry it).  The guard runs on a separate loop so the
        unguarded hot path pays nothing for it.
        """
        pipeline_step = self.pipeline.step
        if cycle_budget is None:
            for pc, kind, address in self._iter:
                pipeline_step(pc, kind, address)
            self._remaining = 0
            return
        pipeline = self.pipeline
        for pc, kind, address in self._iter:
            pipeline_step(pc, kind, address)
            self._remaining -= 1
            if pipeline.time > cycle_budget:
                raise_cycle_budget_exceeded(
                    self.trace.name, self.core_id, pipeline.time,
                    pipeline.instructions, cycle_budget,
                )
        self._remaining = 0

    def result(self, platform: Platform) -> CoreResult:
        """Snapshot this core's outcome."""
        efl = platform.efl
        return CoreResult(
            core=self.core_id,
            task=self.trace.name,
            cycles=self.pipeline.time,
            instructions=self.pipeline.instructions,
            il1_misses=self.il1.stats.misses,
            il1_accesses=self.il1.stats.accesses + self._fast_ihits,
            dl1_misses=self.dl1.stats.misses,
            dl1_accesses=self.dl1.stats.accesses + self._fast_dhits,
            efl_stall_cycles=efl.stall_cycles(self.core_id) if efl else 0,
            efl_evictions=efl.acus[self.core_id].evictions if efl else 0,
        )


def raise_cycle_budget_exceeded(
    task: str, core_id: int, time: int, instructions: int, budget: int
) -> None:
    """Abort a run whose simulated clock passed its cycle budget."""
    raise RunTimeoutError(
        f"task {task!r} on core {core_id} exceeded its cycle budget: "
        f"{time} > {budget} simulated cycles after {instructions} "
        f"instructions (deterministic for this seed; not retried)",
        transient=False,
    )


def _finalise(
    platform: Platform,
    path: MemoryPath,
    cores: List[CoreResult],
    profiler: Optional[HotPathProfiler] = None,
) -> RunResult:
    return RunResult(
        scenario_label=platform.scenario.label(),
        mode=platform.mode,
        cores=cores,
        llc_hits=path.llc_hits,
        llc_misses=path.llc_misses,
        llc_forced_evictions=platform.llc.stats.forced_evictions,
        memory_reads=platform.memory.reads,
        memory_writes=platform.memory.writes,
        profile=profiler.snapshot() if profiler is not None else None,
    )


def run_isolation(
    trace: Trace,
    config: SystemConfig,
    scenario: Scenario,
    seed: int,
    core_id: int = 0,
    profile: bool = False,
    cycle_budget: Optional[int] = None,
) -> RunResult:
    """Run one task alone on ``core_id`` (the paper's analysis stage).

    The scenario's mode decides whether composable upper bounds and CRG
    interference apply (``ANALYSIS``) or the task simply enjoys an
    otherwise idle machine (``DEPLOYMENT``, useful as a best case).
    ``profile`` attaches a per-component attribution snapshot to the
    result; it never changes the simulated timing.  ``cycle_budget``
    arms the livelock watchdog (deterministic
    :class:`~repro.errors.RunTimeoutError` past the budget).
    """
    platform = build_platform(config, scenario, seed, analysed_core=core_id)
    if not 0 <= core_id < config.num_cores:
        raise ConfigurationError(f"core_id {core_id} out of range")
    profiler = HotPathProfiler() if profile else None
    path = MemoryPath(platform, profiler)
    runner = CoreRunner(
        core_id, trace, platform.il1s[core_id], platform.dl1s[core_id], path, config,
        profiler=profiler,
    )
    runner.run_to_completion(cycle_budget=cycle_budget)
    return _finalise(platform, path, [runner.result(platform)], profiler)


def run_workload(
    traces: Sequence[Trace],
    config: SystemConfig,
    scenario: Scenario,
    seed: int,
    profile: bool = False,
    cycle_budget: Optional[int] = None,
) -> RunResult:
    """Co-run up to ``num_cores`` tasks (the paper's deployment stage).

    ``traces[i]`` runs on core ``i``.  Tasks retire independently; a
    finished task stops contending for shared resources.
    ``cycle_budget`` arms the livelock watchdog on the makespan clock.
    """
    if scenario.mode is not OperationMode.DEPLOYMENT:
        raise ConfigurationError("run_workload requires a deployment-mode scenario")
    if not traces:
        raise ConfigurationError("run_workload needs at least one trace")
    if len(traces) > config.num_cores:
        raise ConfigurationError(
            f"{len(traces)} tasks exceed the {config.num_cores}-core platform"
        )
    platform = build_platform(config, scenario, seed)
    profiler = HotPathProfiler() if profile else None
    path = MemoryPath(platform, profiler)
    runners = [
        CoreRunner(i, trace, platform.il1s[i], platform.dl1s[i], path, config,
                   profiler=profiler)
        for i, trace in enumerate(traces)
    ]
    # Step the core whose next shared-resource access can happen
    # earliest, keeping cross-core requests near time-order.  A heap
    # keyed on (schedule_key, core_id) replaces the former
    # min()-over-list scan: only the stepped runner's key changes, so
    # every stored key is current, and the core-id tie-break reproduces
    # the list scan's first-minimum (lowest core id) choice exactly.
    heap: List[Tuple[int, int, CoreRunner]] = [
        (runner.schedule_key, runner.core_id, runner) for runner in runners
    ]
    heapq.heapify(heap)
    if cycle_budget is None:
        while heap:
            _key, _core, runner = heapq.heappop(heap)
            runner.step()
            if not runner.finished:
                heapq.heappush(heap, (runner.schedule_key, runner.core_id, runner))
    else:
        while heap:
            _key, _core, runner = heapq.heappop(heap)
            runner.step()
            if runner.pipeline.time > cycle_budget:
                raise_cycle_budget_exceeded(
                    runner.trace.name, runner.core_id, runner.pipeline.time,
                    runner.pipeline.instructions, cycle_budget,
                )
            if not runner.finished:
                heapq.heappush(heap, (runner.schedule_key, runner.core_id, runner))
    return _finalise(
        platform, path, [runner.result(platform) for runner in runners], profiler
    )


# ----------------------------------------------------------------------
# run construction / run execution split
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One fully specified simulation run, separated from its execution.

    A request captures *everything* a run depends on — traces, platform
    config, scenario and the run's own seed — as plain picklable data,
    so execution backends can ship it to worker processes.  Executing
    the same request twice (in any process) yields bit-identical
    results: all randomness derives from ``seed``.

    ``engine`` selects the simulator entry point: ``"isolation"`` runs
    ``traces[0]`` alone on ``core_id`` (:func:`run_isolation`);
    ``"workload"`` co-runs all traces (:func:`run_workload`).
    ``profile`` requests a per-component attribution snapshot on the
    result (timing is unaffected either way).  ``cycle_budget`` arms
    the livelock watchdog: a run whose simulated clock exceeds it is
    aborted with a deterministic
    :class:`~repro.errors.RunTimeoutError` (never retried — the same
    seed livelocks identically on every attempt).
    """

    engine: str
    traces: Tuple[Trace, ...]
    config: SystemConfig
    scenario: Scenario
    seed: int
    index: int = 0
    core_id: int = 0
    profile: bool = False
    cycle_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ("isolation", "workload"):
            raise ConfigurationError(f"unknown run engine {self.engine!r}")
        if not self.traces:
            raise ConfigurationError("a run request needs at least one trace")
        if self.engine == "isolation" and len(self.traces) != 1:
            raise ConfigurationError(
                f"isolation runs take exactly one trace, got {len(self.traces)}"
            )
        if self.cycle_budget is not None and self.cycle_budget <= 0:
            raise ConfigurationError(
                f"cycle budget must be positive, got {self.cycle_budget}"
            )

    @classmethod
    def isolation(
        cls,
        trace: Trace,
        config: SystemConfig,
        scenario: Scenario,
        seed: int,
        index: int = 0,
        core_id: int = 0,
        profile: bool = False,
        cycle_budget: Optional[int] = None,
    ) -> "RunRequest":
        """Request running ``trace`` alone (the analysis protocol)."""
        return cls(
            "isolation", (trace,), config, scenario, seed, index, core_id,
            profile, cycle_budget,
        )

    @classmethod
    def workload(
        cls,
        traces: Sequence[Trace],
        config: SystemConfig,
        scenario: Scenario,
        seed: int,
        index: int = 0,
        profile: bool = False,
        cycle_budget: Optional[int] = None,
    ) -> "RunRequest":
        """Request co-running ``traces`` (the deployment protocol)."""
        return cls(
            "workload", tuple(traces), config, scenario, seed, index,
            profile=profile, cycle_budget=cycle_budget,
        )

    def template_key(self) -> tuple:
        """Identity of everything except ``(index, seed)``.

        Requests sharing a template key differ only in their per-run
        seed, which lets backends bootstrap workers with the shared
        trace/config data once and ship only ``(index, seed)`` pairs.
        Traces compare by identity (cheap; campaigns reuse the same
        objects), config and scenario by value.
        """
        trace_ids = tuple(id(trace) for trace in self.traces)
        return (
            self.engine, trace_ids, self.config, self.scenario,
            self.core_id, self.profile, self.cycle_budget,
        )

    def with_run(self, index: int, seed: int) -> "RunRequest":
        """The same template rebound to another ``(index, seed)`` pair."""
        return RunRequest(
            self.engine, self.traces, self.config, self.scenario,
            seed, index, self.core_id, self.profile, self.cycle_budget,
        )


def batch_ineligibility(request: RunRequest) -> Optional[str]:
    """Why ``request`` cannot run on the lock-step batch engine.

    Returns ``None`` when the request is batchable, else a short
    human-readable reason.  The batch engine
    (:mod:`repro.sim.batch`) vectorises exactly the paper's analysis
    protocol — one trace alone on one core under composable upper
    bounds — because only there is every run's control flow identical
    across lanes.  Everything else stays on the scalar engine:
    deployment co-runs interleave cores data-dependently, profiling
    attributes wall time through scalar callbacks, the cycle-budget
    watchdog checks the clock per scalar instruction, and the
    write-through DL1 ablation takes a different store path.
    """
    if request.engine != "isolation":
        return (
            "deployment-mode workloads co-run several cores with "
            "data-dependent interleaving; only isolation runs vectorise"
        )
    if request.scenario.mode is not OperationMode.ANALYSIS:
        return (
            "only analysis-mode scenarios vectorise; deployment timing "
            "is contention-dependent and stays scalar"
        )
    if request.profile:
        return (
            "profiled runs attribute cycles and wall time through "
            "per-access scalar hooks"
        )
    if request.cycle_budget is not None:
        return (
            "the cycle-budget watchdog checks the simulated clock after "
            "every scalar instruction"
        )
    if not request.config.dl1_write_back:
        return (
            "the write-through DL1 ablation (A2) takes the scalar "
            "store-through path"
        )
    return None


def execute_request(request: RunRequest) -> RunResult:
    """Execute one :class:`RunRequest` (a pure function of the request)."""
    if request.engine == "isolation":
        return run_isolation(
            request.traces[0],
            request.config,
            request.scenario,
            request.seed,
            core_id=request.core_id,
            profile=request.profile,
            cycle_budget=request.cycle_budget,
        )
    return run_workload(
        request.traces, request.config, request.scenario, request.seed,
        profile=request.profile, cycle_budget=request.cycle_budget,
    )
