"""Measurement campaigns: many runs, fresh randomisation each.

MBPTA collects end-to-end execution times over repeated runs of the
program on the time-randomised platform, regenerating the RII (and all
PRNG streams) between runs (§3.3: "In each run, a new RII is
generated").  :func:`collect_execution_times` implements that protocol:
it derives one seed per run from a master seed, dispatches the runs
through an :class:`~repro.sim.backend.ExecutionBackend` (serial or
process-pool — the sample is bit-identical either way, because seeds
are per run), and returns the execution-time sample the PTA layer
consumes together with full provenance: the master seed, every derived
per-run seed and one observability record per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional

from repro.cpu.trace import Trace
from repro.errors import CampaignRunError, ConfigurationError, SimulationError
from repro.sim.backend import (
    ExecutionBackend,
    RunObserver,
    RunRecord,
    SerialBackend,
)
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import RunRequest
from repro.utils.rng import derive_seeds


@dataclass
class CampaignResult:
    """Execution-time sample of one (task, scenario) campaign.

    Beyond the raw sample, the result carries everything needed to
    reproduce or audit the campaign without rerunning it: the master
    seed, the derived per-run seeds (``seeds[i]`` reruns run ``i`` in
    isolation), one :class:`~repro.sim.backend.RunRecord` per run with
    the shared-cache interference counters, and the wall-clock
    throughput of the backend that produced it.
    """

    task: str
    scenario_label: str
    execution_times: List[int]
    instructions: int
    runs: int
    master_seed: int = 0
    seeds: List[int] = field(default_factory=list)
    records: List[RunRecord] = field(default_factory=list)
    backend: str = "serial"
    wall_time_s: float = 0.0

    @property
    def min_time(self) -> int:
        """Fastest observed run."""
        return min(self.execution_times)

    @property
    def max_time(self) -> int:
        """High-water mark of the observations (HWM)."""
        return max(self.execution_times)

    @property
    def mean_time(self) -> float:
        """Mean observed execution time."""
        return sum(self.execution_times) / len(self.execution_times)

    @property
    def hwm_index(self) -> int:
        """Index of the (first) high-water-mark run."""
        return self.execution_times.index(self.max_time)

    @property
    def hwm_seed(self) -> Optional[int]:
        """Seed of the HWM run — rerun it alone to study the worst case."""
        if not self.seeds:
            return None
        return self.seeds[self.hwm_index]

    @property
    def runs_per_second(self) -> float:
        """Campaign throughput (0.0 when wall time was not recorded)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.runs / self.wall_time_s


def collect_execution_times(
    trace: Trace,
    config: SystemConfig,
    scenario: Scenario,
    runs: int,
    master_seed: int = 0,
    backend: Optional[ExecutionBackend] = None,
    observer: Optional[RunObserver] = None,
    profile: bool = False,
) -> CampaignResult:
    """Collect ``runs`` end-to-end execution times of ``trace``.

    Each run uses a platform freshly randomised from its own derived
    seed.  ``backend`` chooses the execution engine (default: serial,
    in-process); ``observer`` receives one structured record per
    completed run; ``profile`` attaches a per-component attribution
    snapshot to every run's record (timing is unaffected).  Per-run failures are captured by the backend and
    re-raised here as :class:`~repro.errors.CampaignRunError` naming
    every failing ``(index, seed)`` — the surviving runs' work is not
    lost to one bad seed, and the failures are reproducible alone.

    Returns a :class:`CampaignResult` whose ``execution_times`` are the
    MBPTA input sample.
    """
    if runs <= 0:
        raise ConfigurationError(f"a campaign needs at least one run, got {runs}")
    if backend is None:
        backend = SerialBackend()
    seeds = derive_seeds(master_seed, runs)
    if observer is not None:
        observer.on_campaign_start(trace.name, scenario.label(), runs)
    template = RunRequest.isolation(
        trace, config, scenario, seeds[0], index=0, profile=profile
    )
    requests = [template.with_run(index, seed) for index, seed in enumerate(seeds)]
    started = perf_counter()
    outcomes = backend.execute(requests, observer=observer)
    wall_time_s = perf_counter() - started
    failures = [
        (outcome.index, outcome.seed, outcome.error or "")
        for outcome in outcomes
        if outcome.failed
    ]
    if failures:
        raise CampaignRunError(trace.name, scenario.label(), failures)

    times: List[int] = []
    records: List[RunRecord] = []
    instructions: Optional[int] = None
    for outcome in outcomes:
        core = outcome.result.cores[0]
        times.append(core.cycles)
        records.append(outcome.record())
        # The trace is deterministic, so every run must retire exactly
        # the same instruction stream; divergence means the simulator
        # mutated shared state between runs (a harness bug).
        if instructions is None:
            instructions = core.instructions
        elif core.instructions != instructions:
            raise SimulationError(
                f"campaign {trace.name!r} under {scenario.label()}: run "
                f"{outcome.index} (seed {outcome.seed:#x}) retired "
                f"{core.instructions} instructions where run 0 retired "
                f"{instructions}; runs of one trace must be identical"
            )
    result = CampaignResult(
        task=trace.name,
        scenario_label=scenario.label(),
        execution_times=times,
        instructions=instructions if instructions is not None else 0,
        runs=runs,
        master_seed=master_seed,
        seeds=seeds,
        records=records,
        backend=backend.name,
        wall_time_s=wall_time_s,
    )
    if observer is not None:
        observer.on_campaign_end(result)
    return result
