"""Measurement campaigns: many runs, fresh randomisation each.

MBPTA collects end-to-end execution times over repeated runs of the
program on the time-randomised platform, regenerating the RII (and all
PRNG streams) between runs (§3.3: "In each run, a new RII is
generated").  :func:`collect_execution_times` implements that protocol:
it derives one seed per run from a master seed and performs independent
isolation runs, returning the execution-time sample the PTA layer
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cpu.trace import Trace
from repro.errors import ConfigurationError
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import RunResult, run_isolation
from repro.utils.rng import derive_seeds


@dataclass
class CampaignResult:
    """Execution-time sample of one (task, scenario) campaign."""

    task: str
    scenario_label: str
    execution_times: List[int]
    instructions: int
    runs: int

    @property
    def min_time(self) -> int:
        """Fastest observed run."""
        return min(self.execution_times)

    @property
    def max_time(self) -> int:
        """High-water mark of the observations (HWM)."""
        return max(self.execution_times)

    @property
    def mean_time(self) -> float:
        """Mean observed execution time."""
        return sum(self.execution_times) / len(self.execution_times)


def collect_execution_times(
    trace: Trace,
    config: SystemConfig,
    scenario: Scenario,
    runs: int,
    master_seed: int = 0,
    on_run: Optional[Callable[[int, RunResult], None]] = None,
) -> CampaignResult:
    """Collect ``runs`` end-to-end execution times of ``trace``.

    Each run uses a platform freshly randomised from its own derived
    seed.  ``on_run(index, result)`` is invoked after each run when
    provided (progress reporting, debugging).

    Returns a :class:`CampaignResult` whose ``execution_times`` are the
    MBPTA input sample.
    """
    if runs <= 0:
        raise ConfigurationError(f"a campaign needs at least one run, got {runs}")
    seeds = derive_seeds(master_seed, runs)
    times: List[int] = []
    instructions = 0
    for index, seed in enumerate(seeds):
        result = run_isolation(trace, config, scenario, seed)
        core = result.cores[0]
        times.append(core.cycles)
        instructions = core.instructions
        if on_run is not None:
            on_run(index, result)
    return CampaignResult(
        task=trace.name,
        scenario_label=scenario.label(),
        execution_times=times,
        instructions=instructions,
        runs=runs,
    )
