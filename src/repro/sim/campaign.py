"""Measurement campaigns: many runs, fresh randomisation each.

MBPTA collects end-to-end execution times over repeated runs of the
program on the time-randomised platform, regenerating the RII (and all
PRNG streams) between runs (§3.3: "In each run, a new RII is
generated").  :func:`collect_execution_times` implements that protocol:
it derives one seed per run from a master seed, dispatches the runs
through an :class:`~repro.sim.backend.ExecutionBackend` (serial or
process-pool — the sample is bit-identical either way, because seeds
are per run), and returns the execution-time sample the PTA layer
consumes together with full provenance: the master seed, every derived
per-run seed and one observability record per run.

Long campaigns can journal completed runs to a
:class:`~repro.sim.checkpoint.CampaignCheckpoint` and resume after a
crash: journalled ``(index, seed)`` runs are loaded instead of
re-executed, and because every run is a pure function of its request,
the resumed sample is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.cpu.trace import Trace
from repro.errors import (
    CampaignRunError,
    CheckpointError,
    ConfigurationError,
    SimulationError,
)
from repro.observability import Telemetry, attached_telemetry
from repro.pta.adaptive import (
    ConvergencePolicy,
    DEFAULT_WAVE_GROWTH,
    StreamingGumbelEstimator,
    WaveScheduler,
)
from repro.sim.backend import (
    ExecutionBackend,
    RunObserver,
    RunRecord,
    SerialBackend,
    usable_cpus,
)
from repro.sim.batch import (
    ENGINE_NAMES,
    SHARDED_AUTO_MIN_RUNS,
    BatchBackend,
    ShardedBatchBackend,
)
from repro.sim.plancache import PlanCache
from repro.sim.checkpoint import CampaignCheckpoint, CheckpointWriter
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import RunRequest
from repro.sim.telemetry import TelemetryObserver
from repro.utils.rng import derive_seeds


@dataclass
class CampaignResult:
    """Execution-time sample of one (task, scenario) campaign.

    Beyond the raw sample, the result carries everything needed to
    reproduce or audit the campaign without rerunning it: the master
    seed, the derived per-run seeds (``seeds[i]`` reruns run ``i`` in
    isolation), one :class:`~repro.sim.backend.RunRecord` per run with
    the shared-cache interference counters, and the wall-clock
    throughput of the backend that produced it.  ``resumed_runs`` and
    ``retried_runs`` record how much resilience machinery fired:
    neither affects the sample, only how it was obtained.

    Adaptive campaigns (``adaptive=True``) additionally record the
    convergence outcome: whether the policy ``converged``, how many
    runs were ``runs_executed`` versus ``runs_saved`` against the
    requested ``max_runs``, and the requested-vs-achieved relative
    pWCET precision.  Their sample is always a bit-identical prefix of
    the fixed-R campaign's sample for the same master seed.
    """

    task: str
    scenario_label: str
    execution_times: List[int]
    instructions: int
    runs: int
    master_seed: int = 0
    seeds: List[int] = field(default_factory=list)
    records: List[RunRecord] = field(default_factory=list)
    backend: str = "serial"
    wall_time_s: float = 0.0
    #: Runs loaded from a checkpoint journal instead of executed.
    resumed_runs: int = 0
    #: Extra attempts spent recovering transient failures (sum of
    #: ``attempts - 1`` over the executed runs).
    retried_runs: int = 0
    #: Plan-cache lookups this campaign answered from / added to the
    #: cache (batch/sharded engines only; 0/0 for scalar campaigns).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Whether this campaign ran under a streaming-convergence policy.
    adaptive: bool = False
    #: Whether the convergence policy declared the pWCET stable before
    #: ``max_runs`` (always False for fixed-R campaigns).
    converged: bool = False
    #: Observations actually collected (executed + resumed).  Equals
    #: ``runs``; kept explicit because for adaptive campaigns it is the
    #: quantity of interest against the requested ``max_runs``.
    runs_executed: int = 0
    #: Runs the convergence policy avoided:
    #: ``max_runs - runs_executed - runs_speculated_waste`` (0 for
    #: fixed-R campaigns).  The service ledger reconciles this on its
    #: ``runs_saved_converged`` counter.
    runs_saved: int = 0
    #: Runs the speculative wave scheduler executed past the stopping
    #: boundary (discarded from the sample, but simulated — they count
    #: on ``runs_simulated``, not on ``runs_saved``).  0 for fixed-R
    #: campaigns and for wave-by-wave dispatch.
    runs_speculated_waste: int = 0
    #: Relative pWCET-quantile tolerance the policy asked for, and the
    #: largest movement actually observed over the deciding window
    #: (None for fixed-R campaigns / before any fit was possible).
    pwcet_rtol_requested: Optional[float] = None
    pwcet_rtol_achieved: Optional[float] = None
    #: Compile stats of the kernel plan this campaign executed
    #: (``KernelPlan.stats``: chains, fused segments, fusion ratio...),
    #: ``None`` for non-kernel engines.
    kernel_stats: Optional[dict] = None

    def _require_sample(self, statistic: str) -> None:
        """Refuse sample statistics on an empty sample, with provenance.

        A bare ``min() arg is an empty sequence`` names neither the
        campaign nor the cause; this names both.
        """
        if not self.execution_times:
            raise SimulationError(
                f"campaign {self.task!r} under {self.scenario_label} has an "
                f"empty execution-time sample; {statistic} is undefined "
                f"(0 completed runs)"
            )

    @property
    def min_time(self) -> int:
        """Fastest observed run."""
        self._require_sample("min_time")
        return min(self.execution_times)

    @property
    def max_time(self) -> int:
        """High-water mark of the observations (HWM)."""
        self._require_sample("max_time")
        return max(self.execution_times)

    @property
    def mean_time(self) -> float:
        """Mean observed execution time."""
        self._require_sample("mean_time")
        return sum(self.execution_times) / len(self.execution_times)

    @property
    def hwm_index(self) -> int:
        """Index of the (first) high-water-mark run."""
        return self.execution_times.index(self.max_time)

    @property
    def hwm_seed(self) -> Optional[int]:
        """Seed of the HWM run — rerun it alone to study the worst case."""
        if not self.seeds:
            return None
        return self.seeds[self.hwm_index]

    @property
    def runs_per_second(self) -> float:
        """Campaign throughput (0.0 when wall time was not recorded)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.runs / self.wall_time_s

    # ------------------------------------------------------------------
    # machine-readable form (the service's wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """This result as a JSON-ready dict (full provenance).

        Per-run records keep their persisted fields only (profiles are
        measurements, not semantics — same rule as the checkpoint
        journal), so :meth:`from_dict` round-trips everything the
        result store and the service API serve.
        """
        return {
            "task": self.task,
            "scenario_label": self.scenario_label,
            "execution_times": list(self.execution_times),
            "instructions": self.instructions,
            "runs": self.runs,
            "master_seed": self.master_seed,
            "seeds": list(self.seeds),
            "records": [record.to_dict() for record in self.records],
            "backend": self.backend,
            "wall_time_s": self.wall_time_s,
            "resumed_runs": self.resumed_runs,
            "retried_runs": self.retried_runs,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "adaptive": self.adaptive,
            "converged": self.converged,
            "runs_executed": self.runs_executed,
            "runs_saved": self.runs_saved,
            "runs_speculated_waste": self.runs_speculated_waste,
            "pwcet_rtol_requested": self.pwcet_rtol_requested,
            "pwcet_rtol_achieved": self.pwcet_rtol_achieved,
            "kernel_stats": self.kernel_stats,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` payload serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError`` on malformed payloads; the
        result store wraps these into
        :class:`~repro.errors.ResultIntegrityError`.
        """
        return cls(
            task=payload["task"],
            scenario_label=payload["scenario_label"],
            execution_times=list(payload["execution_times"]),
            instructions=payload["instructions"],
            runs=payload["runs"],
            master_seed=payload["master_seed"],
            seeds=list(payload["seeds"]),
            records=[RunRecord.from_dict(entry)
                     for entry in payload["records"]],
            backend=payload["backend"],
            wall_time_s=payload["wall_time_s"],
            resumed_runs=payload["resumed_runs"],
            retried_runs=payload["retried_runs"],
            plan_cache_hits=payload["plan_cache_hits"],
            plan_cache_misses=payload["plan_cache_misses"],
            # Convergence fields postdate the wire format; stored
            # results from before the adaptive layer default to the
            # fixed-R reading.
            adaptive=payload.get("adaptive", False),
            converged=payload.get("converged", False),
            runs_executed=payload.get("runs_executed", payload["runs"]),
            runs_saved=payload.get("runs_saved", 0),
            runs_speculated_waste=payload.get("runs_speculated_waste", 0),
            pwcet_rtol_requested=payload.get("pwcet_rtol_requested"),
            pwcet_rtol_achieved=payload.get("pwcet_rtol_achieved"),
            kernel_stats=payload.get("kernel_stats"),
        )


def _select_backend(
    engine: str,
    backend: Optional[ExecutionBackend],
    workers: Optional[int] = None,
    runs: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> ExecutionBackend:
    """Resolve the (engine, backend, workers) triple to one backend.

    ``auto`` upgrades to a vectorised engine only when the caller kept
    the default execution semantics: no backend, or a plain retry-free
    :class:`SerialBackend` (exact type — subclasses carry their own
    per-run behaviour and stay scalar).  Within that, it picks the
    sharded engine when there is real parallelism to win — more than
    one usable CPU and either an explicit multi-worker request or a
    campaign of at least :data:`~repro.sim.batch.SHARDED_AUTO_MIN_RUNS`
    runs — and the single-process grouped-opcode kernel engine
    otherwise (the kernel is the batch engine's compiled form: same
    lane state, fewer Python-level operations, bit-identical output).
    Sharded selections run kernel sweeps inside their workers for the
    same reason.  The upgrade is safe because every engine re-checks
    eligibility per request batch and falls back to scalar execution.

    ``workers`` means *shards* and only composes with the batch /
    sharded / kernel engines (``--engine kernel --workers N`` is N
    kernel shards); any other combination is a labelled
    :class:`ConfigurationError` rather than a silently ignored flag.
    """
    if engine not in ENGINE_NAMES:
        names = ", ".join(ENGINE_NAMES)
        raise ConfigurationError(f"unknown engine {engine!r}; expected one of {names}")
    if engine == "sharded":
        return ShardedBatchBackend(
            workers=workers, strict=True, plan_cache=plan_cache
        )
    if engine in ("batch", "kernel"):
        kernel = engine == "kernel"
        if workers is not None and workers != 1:
            # N shards: the sharded engine is the batch engine's
            # multi-process form, under the same strict contract.
            return ShardedBatchBackend(
                workers=workers, strict=True, plan_cache=plan_cache,
                kernel=kernel,
            )
        return BatchBackend(fallback=backend, strict=True,
                            plan_cache=plan_cache, kernel=kernel)
    default_semantics = backend is None or (
        type(backend) is SerialBackend and backend.retry is None
    )
    if engine == "auto" and default_semantics:
        if usable_cpus() > 1 and (
            (workers is not None and workers > 1)
            or (workers is None and runs is not None
                and runs >= SHARDED_AUTO_MIN_RUNS)
        ):
            return ShardedBatchBackend(workers=workers, plan_cache=plan_cache,
                                       kernel=True)
        if workers is None or workers == 1:
            return BatchBackend(fallback=backend, plan_cache=plan_cache,
                                kernel=True)
        # workers > 1 on one CPU: honour the request, let the backend
        # degrade (with its observer warning) rather than refuse.
        return ShardedBatchBackend(workers=workers, plan_cache=plan_cache,
                                   kernel=True)
    if workers is not None:
        raise ConfigurationError(
            f"workers={workers} means shard workers and requires the batch "
            f"or sharded engine; engine {engine!r} with this backend "
            f"executes per-run and takes no shards"
        )
    return backend if backend is not None else SerialBackend()


def _run_adaptive(
    adaptive: ConvergencePolicy,
    trace: Trace,
    scenario: Scenario,
    runs: int,
    seeds: List[int],
    resumed: Dict[int, RunRecord],
    template: RunRequest,
    backend: ExecutionBackend,
    effective_observer: Optional[RunObserver],
    telemetry: Optional[Telemetry],
    scheduler: Optional[WaveScheduler] = None,
) -> tuple:
    """Speculative block dispatch with a streaming convergence check.

    Dispatch follows the :class:`~repro.pta.adaptive.WaveScheduler`'s
    blocks — geometrically growing on backends that amortise dispatch
    over the request batch, one policy wave at a time otherwise — and
    each completed block streams into the
    :class:`StreamingGumbelEstimator` at every *policy* wave boundary
    it covers (resumed runs replay through the same path, which is
    what makes resume reproduce the original stopping decision).
    Issuing stops at the first converged boundary or at ``max_runs``;
    runs already executed past a converged boundary are *waste* —
    discarded from the sample, returned for the
    ``runs_speculated_waste`` ledger term.

    Returns ``(outcomes, estimator, sample_size, waste)`` where
    ``sample_size`` is the number of leading observations consumed and
    ``waste`` counts the freshly-executed runs past that point.
    Per-block failures raise :class:`CampaignRunError` immediately —
    later blocks were never issued, so no completed work is discarded.
    """
    if scheduler is None:
        # Per-run backends pay full price for overshoot; speculation
        # is only free where one sweep serves the whole block.
        speculative = bool(getattr(backend, "amortised_dispatch", False))
        scheduler = WaveScheduler(
            adaptive,
            growth=DEFAULT_WAVE_GROWTH if speculative else 1.0,
        )
    estimator = StreamingGumbelEstimator(adaptive)
    outcomes: List = []
    by_index: Dict[int, RunRecord] = {}
    fed = 0
    stop: Optional[int] = None
    for start, end in scheduler.blocks(runs):
        pending = [index for index in range(start, end)
                   if index not in resumed]
        requests = [template.with_run(index, seeds[index])
                    for index in pending]
        if not requests:
            wave_outcomes = []
        elif telemetry is not None:
            with telemetry.tracer.span(
                "adaptive_wave", wave=estimator.waves, runs=len(requests)
            ):
                wave_outcomes = backend.execute(
                    requests, observer=effective_observer
                )
        else:
            wave_outcomes = backend.execute(
                requests, observer=effective_observer
            )
        failures = [
            (outcome.index, outcome.seed, outcome.error or "",
             outcome.error_kind)
            for outcome in wave_outcomes
            if outcome.failed
        ]
        if failures:
            raise CampaignRunError(trace.name, scenario.label(), failures)
        for outcome in wave_outcomes:
            by_index[outcome.index] = outcome.record()
        outcomes.extend(wave_outcomes)
        # Evaluate every policy wave boundary the dispatched prefix
        # now covers, in order — the estimator sees exactly the waves
        # wave-by-wave dispatch would have fed it, so the stopping
        # decision is dispatch-invariant.
        while fed < end:
            wave_end = min(fed + adaptive.wave_size, runs)
            if wave_end > end:
                break
            wave_times = [
                (resumed[index] if index in resumed
                 else by_index[index]).cycles
                for index in range(fed, wave_end)
            ]
            fed = wave_end
            if estimator.observe_wave(wave_times):
                stop = fed
                break
        if stop is not None:
            break
    sample_size = stop if stop is not None else fed
    waste = sum(1 for outcome in outcomes if outcome.index >= sample_size)
    return outcomes, estimator, sample_size, waste


def collect_execution_times(
    trace: Trace,
    config: SystemConfig,
    scenario: Scenario,
    runs: int,
    master_seed: int = 0,
    backend: Optional[ExecutionBackend] = None,
    observer: Optional[RunObserver] = None,
    profile: bool = False,
    checkpoint: Optional[CampaignCheckpoint] = None,
    cycle_budget: Optional[int] = None,
    engine: str = "auto",
    workers: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
    telemetry: Optional[Telemetry] = None,
    job_id: Optional[str] = None,
    adaptive: Optional[ConvergencePolicy] = None,
    scheduler: Optional[WaveScheduler] = None,
) -> CampaignResult:
    """Collect ``runs`` end-to-end execution times of ``trace``.

    Each run uses a platform freshly randomised from its own derived
    seed.  ``backend`` chooses the execution engine (default: serial,
    in-process); ``observer`` receives one structured record per
    completed run; ``profile`` attaches a per-component attribution
    snapshot to every run's record (timing is unaffected);
    ``cycle_budget`` bounds each run's simulated cycles (a livelock
    guard — exceeding it is a deterministic failure, never retried).

    ``engine`` picks the run interpreter. ``"auto"`` (default) runs the
    campaign on the grouped-opcode kernel engine — the
    :class:`~repro.sim.batch.BatchBackend` executing the compiled
    :class:`~repro.sim.kernels.KernelPlan` form of the trace —
    whenever it applies (the campaign is analysis-mode and the caller
    did not hand over a backend with its own per-run semantics:
    process pool, retry policy, fault injection) and falls back to the
    scalar interpreter otherwise; the sample is bit-identical either
    way.  ``"scalar"`` forces the per-run interpreter; ``"batch"``
    demands the per-instruction vectorised engine and raises
    :class:`~repro.errors.ConfigurationError` naming the obstacle when
    the campaign is ineligible, instead of silently falling back;
    ``"kernel"`` demands the compiled grouped-opcode form under the
    same strict contract; ``"sharded"`` likewise demands the
    multi-process sharded batch engine.

    ``workers`` sets the shard count for the batch/sharded engines
    (``engine="batch", workers=N`` runs N shards); combining it with a
    configuration that cannot shard raises a labelled
    :class:`~repro.errors.ConfigurationError`.  ``plan_cache`` lets
    sweeps reuse compiled trace programs across campaigns; the
    result's ``plan_cache_hits``/``plan_cache_misses`` record this
    campaign's share of the cache traffic.
    Per-run failures are captured by the backend and re-raised here as
    :class:`~repro.errors.CampaignRunError` naming every failing
    ``(index, seed, message, kind)`` — the surviving runs' work is not
    lost to one bad seed, and the failures are reproducible alone.

    ``checkpoint`` journals every completed run and, when resuming,
    loads already-journalled runs instead of re-executing them.
    Journalled seeds are validated against the campaign's derived
    seeds (:class:`~repro.errors.CheckpointError` on mismatch).

    ``telemetry`` attaches a :class:`~repro.observability.Telemetry`
    bundle for the duration of the campaign: a
    :class:`~repro.sim.telemetry.TelemetryObserver` is spliced in front
    of the observer chain (metrics + structured logs), a ``campaign``
    span wraps execution (with ``wave`` / ``batch_sweep`` children from
    the backends), and the plan cache mirrors its traffic.  Telemetry
    observes, never decides: the sample is bit-identical with and
    without it.  ``job_id`` stamps the service's job id on every log
    record and the campaign span.

    ``adaptive`` turns the fixed-R campaign into a bounded-error one: a
    :class:`~repro.pta.adaptive.ConvergencePolicy` whose ``max_runs``
    must equal ``runs``.  Execution then proceeds wave by wave on the
    same backend, a streaming Gumbel fit re-estimates the pWCET at each
    wave boundary, and issuing stops at the first boundary the policy
    declares stable.  Seeds are derived per run independently of wave
    grouping, so the adaptive sample is the bit-identical prefix of the
    fixed-R sample, on every engine; the stopping decision is a pure
    function of that prefix, so checkpoint resume continues converging
    from the journal and lands on the same ``runs_executed``.

    ``scheduler`` overrides the dispatch grouping of an adaptive
    campaign (a :class:`~repro.pta.adaptive.WaveScheduler` built over
    the same policy).  By default backends that amortise dispatch over
    the batch speculate with geometrically growing blocks; runs issued
    past the stopping point surface as ``runs_speculated_waste``.  The
    grouping never changes the sample or the stopping decision — only
    how much overshoot the campaign risks per dispatch.

    Returns a :class:`CampaignResult` whose ``execution_times`` are the
    MBPTA input sample.
    """
    if runs <= 0:
        raise ConfigurationError(f"a campaign needs at least one run, got {runs}")
    if adaptive is not None and runs != adaptive.max_runs:
        raise ConfigurationError(
            f"adaptive campaign requested runs={runs} but its "
            f"ConvergencePolicy caps max_runs={adaptive.max_runs}; pass "
            f"runs=policy.max_runs so checkpoints and fingerprints agree"
        )
    if scheduler is not None:
        if adaptive is None:
            raise ConfigurationError(
                "a WaveScheduler only applies to adaptive campaigns; pass "
                "adaptive=scheduler.policy alongside it"
            )
        if scheduler.policy != adaptive:
            raise ConfigurationError(
                "the WaveScheduler was built over a different "
                "ConvergencePolicy than this campaign's; build it with "
                "WaveScheduler(policy=adaptive, ...)"
            )
    backend = _select_backend(
        engine, backend, workers=workers, runs=runs, plan_cache=plan_cache
    )
    cache = getattr(backend, "plan_cache", None)
    cache_before = cache.snapshot() if cache is not None else (0, 0)
    seeds = derive_seeds(master_seed, runs)
    resumed: Dict[int, RunRecord] = {}
    effective_observer = observer
    if checkpoint is not None:
        resumed = checkpoint.open(
            trace, config, scenario, master_seed, runs, backend=backend.name
        )
        for index, record in resumed.items():
            if index < 0 or index >= runs:
                raise CheckpointError(
                    f"checkpoint journal {checkpoint.path} holds run "
                    f"{index}, outside this campaign's 0..{runs - 1}"
                )
            if record.seed != seeds[index]:
                raise CheckpointError(
                    f"checkpoint journal {checkpoint.path} holds run "
                    f"{index} with seed {record.seed:#x}, but this "
                    f"campaign derives seed {seeds[index]:#x} for it"
                )
        effective_observer = CheckpointWriter(checkpoint, observer, total=runs)
    # Campaign-level events fire on the telemetry observer when one is
    # attached (it forwards down the chain to the user observer), on the
    # user observer otherwise — exactly one notification either way.
    head: Optional[RunObserver] = observer
    if telemetry is not None:
        effective_observer = TelemetryObserver(
            telemetry, inner=effective_observer, job_id=job_id
        )
        head = effective_observer
    try:
        if head is not None:
            head.on_campaign_start(trace.name, scenario.label(), runs)
        template = RunRequest.isolation(
            trace, config, scenario, seeds[0], index=0, profile=profile,
            cycle_budget=cycle_budget,
        )
        started = perf_counter()
        estimator: Optional[StreamingGumbelEstimator] = None
        span_attrs = {
            "task": trace.name, "scenario": scenario.label(),
            "runs": runs, "backend": backend.name,
        }
        if job_id is not None:
            span_attrs["job"] = job_id
        waste = 0
        if adaptive is not None:
            span_attrs["adaptive"] = True
            if telemetry is not None:
                with attached_telemetry(telemetry), \
                        telemetry.tracer.span("campaign", **span_attrs):
                    outcomes, estimator, sample_size, waste = _run_adaptive(
                        adaptive, trace, scenario, runs, seeds, resumed,
                        template, backend, effective_observer, telemetry,
                        scheduler=scheduler,
                    )
            else:
                outcomes, estimator, sample_size, waste = _run_adaptive(
                    adaptive, trace, scenario, runs, seeds, resumed,
                    template, backend, effective_observer, telemetry,
                    scheduler=scheduler,
                )
        else:
            sample_size = runs
            requests = [
                template.with_run(index, seed)
                for index, seed in enumerate(seeds)
                if index not in resumed
            ]
            if not requests:
                outcomes = []
            elif telemetry is not None:
                with attached_telemetry(telemetry), \
                        telemetry.tracer.span("campaign", **span_attrs):
                    outcomes = backend.execute(requests,
                                               observer=effective_observer)
            else:
                outcomes = backend.execute(requests,
                                           observer=effective_observer)
        wall_time_s = perf_counter() - started
    finally:
        if checkpoint is not None:
            checkpoint.close()
    failures = [
        (outcome.index, outcome.seed, outcome.error or "", outcome.error_kind)
        for outcome in outcomes
        if outcome.failed
    ]
    if failures:
        raise CampaignRunError(trace.name, scenario.label(), failures)

    by_index: Dict[int, RunRecord] = dict(resumed)
    for outcome in outcomes:
        by_index[outcome.index] = outcome.record()
    # An adaptive campaign that converged consumed only the leading
    # ``sample_size`` observations; journalled runs beyond the stopping
    # point (e.g. a fixed-R journal resumed adaptively) stay unused.
    records = [by_index[index] for index in range(sample_size)]
    times = [record.cycles for record in records]
    instructions = records[0].instructions
    for record in records:
        # The trace is deterministic, so every run must retire exactly
        # the same instruction stream; divergence means the simulator
        # mutated shared state between runs (a harness bug) or a stale
        # journal slipped past the fingerprint.
        if record.instructions != instructions:
            raise SimulationError(
                f"campaign {trace.name!r} under {scenario.label()}: run "
                f"{record.index} (seed {record.seed:#x}) retired "
                f"{record.instructions} instructions where run 0 retired "
                f"{instructions}; runs of one trace must be identical"
            )
    result = CampaignResult(
        task=trace.name,
        scenario_label=scenario.label(),
        execution_times=times,
        instructions=instructions,
        runs=sample_size,
        master_seed=master_seed,
        seeds=seeds,
        records=records,
        backend=backend.name,
        wall_time_s=wall_time_s,
        resumed_runs=sum(1 for index in resumed if index < sample_size),
        retried_runs=sum(max(0, outcome.attempts - 1) for outcome in outcomes),
        plan_cache_hits=(
            cache.hits - cache_before[0] if cache is not None else 0
        ),
        plan_cache_misses=(
            cache.misses - cache_before[1] if cache is not None else 0
        ),
        adaptive=adaptive is not None,
        converged=estimator.converged if estimator is not None else False,
        runs_executed=sample_size,
        runs_saved=runs - sample_size - waste,
        runs_speculated_waste=waste,
        pwcet_rtol_requested=(
            adaptive.rtol if adaptive is not None else None
        ),
        pwcet_rtol_achieved=(
            estimator.achieved_rtol if estimator is not None else None
        ),
        # Compile stats travel only when the kernel engine actually ran
        # (a batch campaign sharing the cache must not report a stale
        # kernel plan's fusion as its own); the peek bumps no counters.
        kernel_stats=(
            cache.peek_kernel_stats(trace, config)
            if cache is not None and getattr(backend, "kernel", False)
            and "kernel" in backend.name else None
        ),
    )
    if adaptive is not None:
        if head is not None:
            if result.converged:
                waste_note = (
                    f", {result.runs_speculated_waste} speculated past it"
                    if result.runs_speculated_waste else ""
                )
                head.on_message(
                    f"pWCET converged after {result.runs_executed} of "
                    f"{adaptive.max_runs} runs ({result.runs_saved} saved"
                    f"{waste_note}; "
                    f"quantile moved {result.pwcet_rtol_achieved:.2e} < "
                    f"rtol {adaptive.rtol:g} for "
                    f"{adaptive.stable_waves} waves)"
                )
            else:
                head.on_message(
                    f"pWCET did not converge within max_runs="
                    f"{adaptive.max_runs} (rtol {adaptive.rtol:g}); "
                    f"sample used in full"
                )
        if telemetry is not None:
            telemetry.metrics.counter("adaptive_campaigns").inc()
            if result.converged:
                telemetry.metrics.counter("campaigns_converged").inc()
            if result.runs_saved:
                telemetry.metrics.counter("runs_saved_converged").inc(
                    result.runs_saved
                )
            if result.runs_speculated_waste:
                telemetry.metrics.counter("runs_speculated_waste").inc(
                    result.runs_speculated_waste
                )
    if head is not None:
        head.on_campaign_end(result)
    return result
