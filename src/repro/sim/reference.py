"""The unoptimised reference hot path, kept runnable for comparison.

The per-instruction simulation core (``Cache.access``, placement
hashing, the EoM victim draw, ``InOrderPipeline.step``) carries
optimisations — a per-(RII, line) set-index memo, precomputed candidate
way tuples, an inlined victim draw, branch-free pipeline recurrences —
that must be *invisible in the data*: every optimisation is required to
produce bit-identical execution times.

This module preserves the pre-optimisation implementations verbatim and
exposes :func:`reference_hot_path`, a context manager that swaps them
back in.  Two consumers rely on it:

* ``tests/test_hotpath.py`` proves optimised and reference paths
  produce bit-identical :class:`~repro.sim.simulator.RunResult`s
  (the hot-path analogue of the backend-equivalence test);
* ``benchmarks/test_perf_simrun.py`` measures the speedup of the
  optimised path over this baseline and records it in
  ``BENCH_simrun.json``.

The reference implementations are deliberately *copies*, not calls into
shared helpers: sharing code with the optimised path would silently
inherit its speedups and make the measured ratio meaningless.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.cpu.isa import OpKind
from repro.cpu.pipeline import _EXEC_LATENCY_BY_KIND, InOrderPipeline
from repro.errors import SimulationError
from repro.mem.cache import AccessResult, Cache, Eviction
from repro.mem.placement import RandomPlacement


def _reference_set_index(self, line_addr: int) -> int:
    """Pre-memoisation ``RandomPlacement.set_index``: hash every call."""
    key = (line_addr * 0x9E3779B97F4A7C15 + self.rii * 0xC2B2AE3D27D4EB4F) \
        & 0xFFFFFFFFFFFFFFFF
    z = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return ((z ^ (z >> 31)) * self.num_sets) >> 64


def _reference_probe(self, line, ways=None):
    """Pre-optimisation ``Cache.probe``."""
    set_index = self.placement.set_index(line)
    tags = self._tags[set_index]
    for way in (ways if ways is not None else self._all_ways):
        if tags[way] == line:
            return True
    return False


def _reference_access(self, line, write=False, ways=None):
    """Pre-optimisation ``Cache.access``: per-call ``tuple(ways)``
    allocation and an indirect ``choose_victim`` call on every miss."""
    set_index = self.placement.set_index(line)
    tags = self._tags[set_index]
    candidates = tuple(ways) if ways is not None else self._all_ways
    for way in candidates:
        if tags[way] == line:
            self.stats.hits += 1
            if not self._stateless_repl:
                self.replacement.on_hit(set_index, way)
            if write and self.write_back:
                self._dirty[set_index][way] = True
            return AccessResult(True, set_index, None)

    self.stats.misses += 1
    eviction = None
    target_way = self.replacement.choose_victim(set_index, candidates)
    victim_line = tags[target_way]
    if victim_line is not None:
        victim_dirty = self._dirty[set_index][target_way]
        eviction = Eviction(line=victim_line, dirty=victim_dirty)
        self.stats.evictions += 1
        if victim_dirty:
            self.stats.writebacks += 1
    tags[target_way] = line
    self._dirty[set_index][target_way] = bool(write and self.write_back)
    if not self._stateless_repl:
        self.replacement.on_fill(set_index, target_way)
    return AccessResult(False, set_index, eviction)


def _reference_force_eviction(self, set_index, ways=None):
    """Pre-optimisation ``Cache.force_eviction`` (with the consistent
    stats accounting — stats never affect timing)."""
    if not 0 <= set_index < self.geometry.num_sets:
        raise SimulationError(
            f"{self.name}: set index {set_index} out of range"
        )
    candidates = tuple(ways) if ways is not None else self._all_ways
    way = self.replacement.choose_victim(set_index, candidates)
    self.stats.forced_evictions += 1
    eviction = self._displace(set_index, way)
    return eviction if eviction is not None else Eviction(line=None, dirty=False)


def _reference_step(self, pc, kind, address):
    """Pre-optimisation ``InOrderPipeline.step``: ``max()`` builtins and
    enum comparison on the retire path."""
    start_fetch = max(self._end_fetch, self._start_decode)
    self._end_fetch = start_fetch + self._fetch_latency(pc, start_fetch)

    start_decode = max(self._end_fetch, self._start_mem)
    self._start_decode = start_decode
    end_decode = start_decode + 1

    start_mem = max(end_decode, self._start_wb)
    self._start_mem = start_mem
    try:
        fixed = _EXEC_LATENCY_BY_KIND[kind]
    except (IndexError, TypeError):
        raise SimulationError(f"unknown op kind {kind!r}") from None
    if fixed is None:
        latency = self._mem_latency(address, kind == OpKind.STORE, start_mem)
    else:
        latency = fixed
    if latency < 1:
        raise SimulationError(
            f"stage latency must be >= 1 cycle, callback returned {latency}"
        )
    end_mem = start_mem + latency

    start_wb = max(end_mem, self._end_wb)
    self._start_wb = start_wb
    self._end_wb = start_wb + 1

    self.instructions += 1
    return self._end_wb


#: (class, attribute, reference implementation) for every hot-path
#: function the optimisation pass touched.
_REFERENCE_PATCHES = (
    (RandomPlacement, "set_index", _reference_set_index),
    (Cache, "probe", _reference_probe),
    (Cache, "access", _reference_access),
    (Cache, "force_eviction", _reference_force_eviction),
    (InOrderPipeline, "step", _reference_step),
)


@contextmanager
def reference_hot_path():
    """Swap the unoptimised hot-path implementations in for the block.

    Platforms must be *built inside* the block (caches bind nothing at
    construction that the patch misses, but building inside keeps the
    measurement honest end to end).  Restores the optimised
    implementations on exit, even on error.
    """
    saved = [
        (cls, name, cls.__dict__[name]) for cls, name, _impl in _REFERENCE_PATCHES
    ]
    try:
        for cls, name, impl in _REFERENCE_PATCHES:
            setattr(cls, name, impl)
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)
