"""Telemetry wiring for campaigns: the observer that feeds metrics.

:class:`TelemetryObserver` adapts the :class:`~repro.sim.backend.RunObserver`
seam onto a :class:`~repro.observability.Telemetry` bundle: every
completed run increments ``runs_simulated`` and feeds the per-run wall
-time histogram, retries/failures/worker-crashes increment their
counters, and campaign start/end emit structured log records.  It
wraps (and always forwards to) whatever observer the caller already
attached, so progress output, checkpoint journalling and profiling
compose with telemetry instead of competing with it.

The observer measures, never decides — attaching it cannot change
samples, seeds or checksums (the telemetry suite asserts this across
the scalar, batch and sharded engines).

Metric names emitted here (and by the seams reading
:func:`~repro.observability.current_telemetry`):

=========================  ====================================================
``runs_simulated``         completed simulation runs (post-retry, final)
``runs_failed``            runs that failed for good
``runs_retried``           transient attempts that were re-dispatched
``worker_crashes``         hard pool-worker deaths detected
``campaigns_started``      campaigns entering execution
``campaigns_completed``    campaigns that produced a sample
``adaptive_campaigns``     campaigns run under a ConvergencePolicy
``campaigns_converged``    adaptive campaigns that stopped early
``runs_saved_converged``   runs a convergence policy proved unnecessary
``waves_dispatched``       process-pool dispatch waves (backend seam)
``plan_cache_hits/misses`` compiled-trace-program cache traffic (plan cache)
``run_wall_time_s``        histogram of per-run host seconds
``wave_latency_s``         histogram of per-wave host seconds (backend seam)
``campaign_latency_s``     histogram of per-campaign host seconds
=========================  ====================================================

Service-layer names (emitted by :mod:`repro.service` on the queue's
registry; listed here so the full metric namespace has one home):

===============================  ==============================================
``jobs_submitted/completed/...`` job lifecycle counters (``failed``,
                                 ``cancelled``, ``coalesced``)
``jobs_shed``                    submissions refused by admission control
``jobs_shed_<reason>``           per-reason shed breakdown (``queue_full``,
                                 ``circuit_open``, ``deadline``)
``jobs_requeued``                job-level transient retries (retry budget)
``jobs_recovered``               journalled jobs re-admitted after a restart
``journal_rebuild_failures``     journal entries that could not be rebuilt
``runs_requested``               runs asked of the store front door
``runs_resumed``                 runs taken over from a dead process's
                                 checkpoint (simulated before this process)
``runs_served_from_cache``       runs answered by store hits / coalescing
``runs_shed``                    runs of shed or cancelled front-door jobs
``store_hits/misses``            result-store lookups
``store_integrity_failures``     corrupt entries dropped and re-simulated
``store_evictions``              entries GC removed to satisfy the quota
``store_evicted_bytes``          bytes reclaimed by those evictions
``job_queue_wait_s``             histogram of queue-wait seconds
``job_queue_depth``              gauge: jobs waiting for a worker
``jobs_inflight``                gauge: jobs currently executing
===============================  ==============================================

with the service reconciliation invariant ``runs_requested ==
runs_simulated + runs_resumed + runs_served_from_cache + runs_shed
+ runs_saved_converged``
holding on every success-or-shed path (``runs_resumed`` is non-zero
only after crash recovery: those runs were simulated — and counted —
by a previous process incarnation; ``runs_saved_converged`` only for
adaptive campaigns that stopped before their ``max_runs`` ceiling).

Campaign spans gain an ``adaptive`` attribute and per-wave
``adaptive_wave`` child spans when a convergence policy drives the
dispatch.
"""

from __future__ import annotations

from typing import Optional

from repro.observability import Telemetry
from repro.sim.backend import RunObserver, RunRecord


class TelemetryObserver(RunObserver):
    """Mirror every backend event into a :class:`Telemetry` bundle.

    ``inner`` is the observer chain already attached to the campaign
    (user observer, checkpoint writer, profiler); every hook forwards
    to it unchanged after emitting.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        inner: Optional[RunObserver] = None,
        job_id: Optional[str] = None,
    ) -> None:
        self.telemetry = telemetry
        self.inner = inner
        context = {} if job_id is None else {"job": job_id}
        self.log = telemetry.logger.bind(**context)

    # ------------------------------------------------------------------
    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        self.telemetry.metrics.counter("campaigns_started").inc()
        self.log.info(
            "campaign_start",
            message=f"campaign: {task} under {scenario_label} ({runs} runs)",
            task=task, scenario=scenario_label, runs=runs,
        )
        if self.inner is not None:
            self.inner.on_campaign_start(task, scenario_label, runs)

    def on_run(self, record: RunRecord) -> None:
        self.telemetry.metrics.counter("runs_simulated").inc()
        self.telemetry.metrics.histogram("run_wall_time_s").observe(
            record.wall_time_s
        )
        self.log.debug(
            "run_done", index=record.index, seed=f"{record.seed:#x}",
            cycles=record.cycles,
        )
        if self.inner is not None:
            self.inner.on_run(record)

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        self.telemetry.metrics.counter("runs_failed").inc()
        last = error.strip().splitlines()[-1] if error else "unknown error"
        self.log.error(
            "run_failed",
            message=f"run {index} FAILED (seed {seed:#x}): {last}",
            index=index, seed=f"{seed:#x}", error=last,
        )
        if self.inner is not None:
            self.inner.on_run_failed(index, seed, error)

    def on_retry(self, index: int, seed: int, attempt: int, error: str) -> None:
        self.telemetry.metrics.counter("runs_retried").inc()
        last = error.strip().splitlines()[-1] if error else "unknown error"
        self.log.warning(
            "run_retry",
            message=f"run {index} retrying after attempt {attempt} "
                    f"(seed {seed:#x}): {last}",
            index=index, seed=f"{seed:#x}", attempt=attempt, error=last,
        )
        if self.inner is not None:
            self.inner.on_retry(index, seed, attempt, error)

    def on_worker_crash(self, dead_workers: int) -> None:
        self.telemetry.metrics.counter("worker_crashes").inc(dead_workers)
        self.log.warning(
            "worker_crash",
            message=f"{dead_workers} worker(s) died hard; rebuilding pool "
                    f"and re-dispatching unfinished runs",
            dead_workers=dead_workers,
        )
        if self.inner is not None:
            self.inner.on_worker_crash(dead_workers)

    def on_checkpoint(self, index: int, seed: int, completed: int,
                      total: int) -> None:
        self.log.debug("checkpoint", completed=completed, total=total)
        if self.inner is not None:
            self.inner.on_checkpoint(index, seed, completed, total)

    def on_campaign_end(self, result: object) -> None:
        self.telemetry.metrics.counter("campaigns_completed").inc()
        wall = getattr(result, "wall_time_s", 0.0)
        runs = getattr(result, "runs", 0)
        if wall > 0:
            self.telemetry.metrics.histogram("campaign_latency_s").observe(wall)
        self.log.info(
            "campaign_end",
            message=f"campaign done: {runs} runs in {wall:.2f}s",
            runs=runs, wall_time_s=round(wall, 6),
            backend=getattr(result, "backend", "?"),
        )
        if self.inner is not None:
            self.inner.on_campaign_end(result)

    def on_message(self, message: str) -> None:
        # Backend advisories can repeat within one campaign (a degrade
        # decision consulted per wave, a per-chunk fallback with the
        # same reason): the structured log carries each distinct
        # advisory once per campaign — the dedupe scope is this
        # observer's bound logger — while the inner observer chain
        # still receives every emission unchanged.
        self.log.info("message", message=message, dedupe=f"message:{message}")
        if self.inner is not None:
            self.inner.on_message(message)
