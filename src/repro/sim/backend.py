"""Pluggable execution backends: serial and multi-process run fan-out.

MBPTA campaigns are embarrassingly parallel — every run derives its
own seed and randomises its own platform (§3.3), with no shared state
between runs.  This module turns that property into throughput without
touching simulation semantics:

* :class:`SerialBackend` executes requests in-process, one by one —
  the reference semantics, zero dependencies;
* :class:`ProcessPoolBackend` fans requests out over a
  ``multiprocessing`` pool with chunked dispatch.  Workers are
  bootstrapped once with the campaign's shared trace/config template,
  so per-run messages carry only an ``(index, seed)`` pair; per-run
  exceptions are captured into the :class:`RunOutcome` instead of
  killing the pool, so one bad seed cannot abort a 1000-run campaign.

**Determinism guarantee.**  Seeds are derived per *run* (by the
campaign layer), never per worker, and :func:`~repro.sim.simulator.execute_request`
is a pure function of its request — so ``execution_times`` are
bit-identical across backends, worker counts and chunk sizes.  Only
wall-clock observability data (per-run wall times, completion order
seen by observers) differs.

The :class:`RunObserver` seam replaces the former ad-hoc
``on_run``/progress callables: backends report one structured
:class:`RunRecord` per completed run (cycles, LLC interference
counters, EFL stalls, wall time), which the campaign layer aggregates
into :class:`~repro.sim.campaign.CampaignResult`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.profiler import ProfileSnapshot
from repro.sim.simulator import RunRequest, RunResult, execute_request


def usable_cpus() -> int:
    """CPUs actually available to this process.

    Prefers the scheduler affinity mask (respects container/cgroup
    restrictions) and falls back to the raw CPU count.  Shared by the
    CLI's process-backend sanity warning and the benchmarks.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# per-run records and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRecord:
    """Structured observability record of one completed run.

    Everything an operator needs to reason about a campaign without
    rerunning it: the run's reproduction handle (``index``, ``seed``),
    its timing outcome, the shared-cache interference counters and the
    wall-clock cost of producing it.
    """

    index: int
    seed: int
    cycles: int
    instructions: int
    llc_hits: int
    llc_misses: int
    llc_forced_evictions: int
    efl_stall_cycles: int
    efl_evictions: int
    memory_reads: int
    memory_writes: int
    wall_time_s: float
    #: Per-component attribution snapshot (profiled runs only).
    profile: Optional[ProfileSnapshot] = None

    @classmethod
    def from_result(
        cls, index: int, seed: int, result: RunResult, wall_time_s: float
    ) -> "RunRecord":
        """Condense a :class:`RunResult` into its observability record."""
        return cls(
            index=index,
            seed=seed,
            cycles=result.cycles,
            instructions=sum(core.instructions for core in result.cores),
            llc_hits=result.llc_hits,
            llc_misses=result.llc_misses,
            llc_forced_evictions=result.llc_forced_evictions,
            efl_stall_cycles=sum(core.efl_stall_cycles for core in result.cores),
            efl_evictions=sum(core.efl_evictions for core in result.cores),
            memory_reads=result.memory_reads,
            memory_writes=result.memory_writes,
            wall_time_s=wall_time_s,
            profile=result.profile,
        )


@dataclass(frozen=True)
class RunOutcome:
    """What a backend returns per request: a result or a captured error."""

    index: int
    seed: int
    result: Optional[RunResult]
    error: Optional[str]
    wall_time_s: float

    @property
    def failed(self) -> bool:
        """Whether this run raised instead of completing."""
        return self.error is not None

    def record(self) -> RunRecord:
        """The observability record of a *successful* outcome."""
        if self.result is None:
            raise ConfigurationError(
                f"run {self.index} (seed {self.seed:#x}) failed; no record"
            )
        return RunRecord.from_result(
            self.index, self.seed, self.result, self.wall_time_s
        )


# ----------------------------------------------------------------------
# observers
# ----------------------------------------------------------------------
class RunObserver:
    """Structured observability hook threaded through every backend.

    Subclass and override what you need; every method is a no-op by
    default.  Under :class:`ProcessPoolBackend`, :meth:`on_run` fires
    in *completion* order (not index order) in the parent process.
    """

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        """A campaign of ``runs`` runs is about to start."""

    def on_run(self, record: RunRecord) -> None:
        """One run completed successfully."""

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        """One run raised; ``error`` is its formatted traceback."""

    def on_campaign_end(self, result: object) -> None:
        """A campaign finished; ``result`` is its CampaignResult."""

    def on_message(self, message: str) -> None:
        """Free-form progress text from the layer driving the runs."""


class StreamObserver(RunObserver):
    """Prints campaign progress and throughput to a text stream."""

    def __init__(self, stream: IO[str], every: int = 0) -> None:
        self.stream = stream
        self.every = every
        self._done = 0
        self._runs = 0

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        self._done = 0
        self._runs = runs
        print(f"  [campaign: {task} under {scenario_label} ({runs} runs)]",
              file=self.stream)

    def on_run(self, record: RunRecord) -> None:
        self._done += 1
        if self.every and self._done % self.every == 0:
            print(f"  [{self._done}/{self._runs} runs]", file=self.stream)

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        last = error.strip().splitlines()[-1] if error else "unknown error"
        print(f"  [run {index} FAILED (seed {seed:#x}): {last}]", file=self.stream)

    def on_campaign_end(self, result: object) -> None:
        wall = getattr(result, "wall_time_s", 0.0)
        runs = getattr(result, "runs", 0)
        if wall > 0:
            print(f"  [{runs} runs in {wall:.2f}s: {runs / wall:.1f} runs/s]",
                  file=self.stream)

    def on_message(self, message: str) -> None:
        print(f"  [{message}]", file=self.stream)


class ProfilingObserver(RunObserver):
    """Collects per-run profile snapshots, optionally wrapping another
    observer.

    Works with any backend: snapshots travel inside the
    :class:`RunRecord` (they are picklable), so process-pool runs
    profile exactly like serial ones.  ``total`` merges everything
    collected so far into one campaign-level snapshot.
    """

    def __init__(self, inner: Optional[RunObserver] = None) -> None:
        self.inner = inner
        self.snapshots: List[ProfileSnapshot] = []

    @property
    def total(self) -> ProfileSnapshot:
        """Aggregate attribution across all observed runs."""
        return ProfileSnapshot.merge(self.snapshots)

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        if self.inner is not None:
            self.inner.on_campaign_start(task, scenario_label, runs)

    def on_run(self, record: RunRecord) -> None:
        if record.profile is not None:
            self.snapshots.append(record.profile)
        if self.inner is not None:
            self.inner.on_run(record)

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        if self.inner is not None:
            self.inner.on_run_failed(index, seed, error)

    def on_campaign_end(self, result: object) -> None:
        if self.inner is not None:
            self.inner.on_campaign_end(result)

    def on_message(self, message: str) -> None:
        if self.inner is not None:
            self.inner.on_message(message)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Protocol of an execution backend.

    ``execute`` runs every request and returns one :class:`RunOutcome`
    per request, **in request (index) order**, regardless of the order
    in which runs physically completed.  Implementations must capture
    per-run exceptions into the outcome rather than propagate them.
    """

    #: Short label recorded on CampaignResult (e.g. ``"serial"``).
    name: str = "?"

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        """Execute ``requests``; one outcome per request, index order."""
        raise NotImplementedError


def _run_one(request: RunRequest) -> RunOutcome:
    """Execute one request, capturing any exception into the outcome."""
    started = time.perf_counter()
    try:
        result = execute_request(request)
        error = None
    except Exception:  # noqa: BLE001 — captured and surfaced per run
        result = None
        error = traceback.format_exc()
    return RunOutcome(
        index=request.index,
        seed=request.seed,
        result=result,
        error=error,
        wall_time_s=time.perf_counter() - started,
    )


class SerialBackend(ExecutionBackend):
    """In-process, one-at-a-time execution — the reference semantics."""

    name = "serial"

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        outcomes = []
        for request in requests:
            outcome = _run_one(request)
            _notify(observer, outcome)
            outcomes.append(outcome)
        return outcomes


# Worker-side state of ProcessPoolBackend: the shared template request
# (traces/config/scenario), shipped once per worker at bootstrap so the
# per-job messages are just (index, seed) pairs.
_WORKER_TEMPLATE: Optional[RunRequest] = None


def _bootstrap_worker(template: RunRequest) -> None:
    global _WORKER_TEMPLATE
    _WORKER_TEMPLATE = template


def _run_chunk(pairs: Sequence[tuple]) -> List[RunOutcome]:
    template = _WORKER_TEMPLATE
    if template is None:  # pragma: no cover — would be a harness bug
        raise RuntimeError("worker used before bootstrap")
    return [_run_one(template.with_run(index, seed)) for index, seed in pairs]


def _notify(observer: Optional[RunObserver], outcome: RunOutcome) -> None:
    if observer is None:
        return
    if outcome.failed:
        observer.on_run_failed(outcome.index, outcome.seed, outcome.error or "")
    else:
        observer.on_run(outcome.record())


class ProcessPoolBackend(ExecutionBackend):
    """Multiprocessing fan-out with chunked dispatch.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count.
    chunk_size:
        ``(index, seed)`` pairs per dispatched chunk.  Defaults to an
        even split over ``4 * workers`` chunks — small enough to load
        balance, large enough to amortise IPC.
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"fork"``
        where available (cheap on Linux), else ``"spawn"``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.name = f"process[{workers}]"

    def _chunks(self, pairs: List[tuple]) -> List[List[tuple]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(pairs) // (4 * self.workers)))
        return [pairs[i:i + size] for i in range(0, len(pairs), size)]

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        if not requests:
            return []
        template = requests[0]
        template_key = template.template_key()
        for request in requests[1:]:
            if request.template_key() != template_key:
                raise ConfigurationError(
                    "ProcessPoolBackend requires a homogeneous batch: all "
                    "requests must share traces/config/scenario and differ "
                    "only in (index, seed); split heterogeneous work into "
                    "one execute() call per template"
                )
        if len(requests) == 1 or self.workers == 1:
            # Not worth a pool; semantics are identical by construction.
            return SerialBackend().execute(requests, observer)
        pairs = [(request.index, request.seed) for request in requests]
        context = multiprocessing.get_context(self.mp_context)
        outcomes: List[RunOutcome] = []
        with context.Pool(
            processes=min(self.workers, len(pairs)),
            initializer=_bootstrap_worker,
            initargs=(template,),
        ) as pool:
            for chunk in pool.imap_unordered(_run_chunk, self._chunks(pairs)):
                for outcome in chunk:
                    _notify(observer, outcome)
                    outcomes.append(outcome)
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes


#: Registry of backend names accepted by :func:`make_backend` / the CLI.
BACKEND_NAMES = ("serial", "process")


def make_backend(
    name: str = "serial", workers: Optional[int] = None
) -> ExecutionBackend:
    """Build a backend from a CLI-style ``(name, workers)`` pair."""
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )
