"""Pluggable execution backends: serial and multi-process run fan-out.

MBPTA campaigns are embarrassingly parallel — every run derives its
own seed and randomises its own platform (§3.3), with no shared state
between runs.  This module turns that property into throughput without
touching simulation semantics:

* :class:`SerialBackend` executes requests in-process, one by one —
  the reference semantics, zero dependencies;
* :class:`ProcessPoolBackend` fans requests out over a
  ``multiprocessing`` pool with chunked dispatch.  Workers are
  bootstrapped once with the campaign's shared trace/config template,
  so per-run messages carry only an ``(index, seed)`` pair; per-run
  exceptions are captured into the :class:`RunOutcome` instead of
  killing the pool, so one bad seed cannot abort a 1000-run campaign;
* :class:`~repro.sim.batch.BatchBackend` (in :mod:`repro.sim.batch`)
  exploits the same property *within* one process: homogeneous
  analysis-mode campaigns run as lock-step NumPy lanes, bit-identical
  to :class:`SerialBackend` and several times faster per core.

**Determinism guarantee.**  Seeds are derived per *run* (by the
campaign layer), never per worker, and :func:`~repro.sim.simulator.execute_request`
is a pure function of its request — so ``execution_times`` are
bit-identical across backends, worker counts and chunk sizes.  Only
wall-clock observability data (per-run wall times, completion order
seen by observers) differs.

The :class:`RunObserver` seam replaces the former ad-hoc
``on_run``/progress callables: backends report one structured
:class:`RunRecord` per completed run (cycles, LLC interference
counters, EFL stalls, wall time), which the campaign layer aggregates
into :class:`~repro.sim.campaign.CampaignResult`.

**Resilience.**  Long campaigns die to infrastructure, not to
simulation bugs: a worker OOM-killed mid-chunk, a livelocked host, a
corrupted IPC payload.  The backends classify every failure as
*transient* (infrastructure — retrying the same ``(index, seed)``
yields the bit-identical result the failed attempt owed) or
*deterministic* (the simulation itself raised — every attempt fails
the same way) and retry only the former, under a bounded
:class:`RetryPolicy` with exponential backoff.
:class:`ProcessPoolBackend` additionally detects hard worker deaths
(the chunk never returns; the dead process's exit code gives it away),
terminates and rebuilds the pool, and re-dispatches only the
unfinished requests; an optional per-run wall-clock watchdog
(``run_timeout_s``) converts a hung worker into a retryable timeout.
Every result is stamped with a checksum by the process that computed
it and re-verified on receipt, so corrupted transfers are caught and
retried instead of silently poisoning the sample.  None of this can
change ``execution_times``: retries re-execute pure functions of
``(template, index, seed)``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
import traceback
import zlib
from dataclasses import dataclass, field, replace
from typing import IO, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ERROR_KIND_DETERMINISTIC,
    ERROR_KIND_TRANSIENT,
    ConfigurationError,
    ResultIntegrityError,
    RunTimeoutError,
    SimulationError,
    WorkerCrashError,
    classify_exception,
)
from repro.observability import StructuredLogger, current_telemetry
from repro.sim.profiler import ProfileSnapshot
from repro.sim.simulator import RunRequest, RunResult, execute_request


def usable_cpus() -> int:
    """CPUs actually available to this process.

    Prefers the scheduler affinity mask (respects container/cgroup
    restrictions) and falls back to the raw CPU count.  Shared by the
    CLI's process-backend sanity warning and the benchmarks.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# per-run records and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRecord:
    """Structured observability record of one completed run.

    Everything an operator needs to reason about a campaign without
    rerunning it: the run's reproduction handle (``index``, ``seed``),
    its timing outcome, the shared-cache interference counters and the
    wall-clock cost of producing it.
    """

    index: int
    seed: int
    cycles: int
    instructions: int
    llc_hits: int
    llc_misses: int
    llc_forced_evictions: int
    efl_stall_cycles: int
    efl_evictions: int
    memory_reads: int
    memory_writes: int
    wall_time_s: float
    #: Per-component attribution snapshot (profiled runs only).
    profile: Optional[ProfileSnapshot] = None

    #: Fields persisted by the checkpoint journal and the result store
    #: (everything but the profile, which is a measurement, not
    #: semantics).
    PERSISTED_FIELDS = (
        "index", "seed", "cycles", "instructions",
        "llc_hits", "llc_misses", "llc_forced_evictions",
        "efl_stall_cycles", "efl_evictions",
        "memory_reads", "memory_writes", "wall_time_s",
    )

    def to_dict(self) -> dict:
        """The persisted fields as a JSON-ready dict."""
        return {name: getattr(self, name) for name in self.PERSISTED_FIELDS}

    @classmethod
    def from_dict(cls, entry: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError`` on malformed entries; callers
        (the checkpoint journal, the result store) wrap these into
        their own labelled errors.
        """
        return cls(**{name: entry[name] for name in cls.PERSISTED_FIELDS})

    @classmethod
    def from_result(
        cls, index: int, seed: int, result: RunResult, wall_time_s: float
    ) -> "RunRecord":
        """Condense a :class:`RunResult` into its observability record."""
        return cls(
            index=index,
            seed=seed,
            cycles=result.cycles,
            instructions=sum(core.instructions for core in result.cores),
            llc_hits=result.llc_hits,
            llc_misses=result.llc_misses,
            llc_forced_evictions=result.llc_forced_evictions,
            efl_stall_cycles=sum(core.efl_stall_cycles for core in result.cores),
            efl_evictions=sum(core.efl_evictions for core in result.cores),
            memory_reads=result.memory_reads,
            memory_writes=result.memory_writes,
            wall_time_s=wall_time_s,
            profile=result.profile,
        )


def result_checksum(index: int, seed: int, result: RunResult) -> int:
    """Integrity checksum over a run result's semantic payload.

    Computed by the process that produced the result and re-verified
    by the process that consumes it, so a payload corrupted in IPC
    transit is detected (and the run retried) instead of silently
    poisoning the campaign sample.  Covers everything the campaign
    layer reads; wall times and profiles are measurements, not
    semantics, and are excluded.
    """
    parts: List[object] = [
        index, seed, result.scenario_label,
        result.llc_hits, result.llc_misses, result.llc_forced_evictions,
        result.memory_reads, result.memory_writes,
    ]
    for core in result.cores:
        parts.extend((
            core.core, core.task, core.cycles, core.instructions,
            core.il1_misses, core.il1_accesses,
            core.dl1_misses, core.dl1_accesses,
            core.efl_stall_cycles, core.efl_evictions,
        ))
    return zlib.crc32(repr(parts).encode())


@dataclass(frozen=True)
class RunOutcome:
    """What a backend returns per request: a result or a captured error.

    ``error_kind`` classifies a failure for the retry machinery:
    :data:`~repro.errors.ERROR_KIND_TRANSIENT` failures are
    infrastructure (retryable), :data:`~repro.errors.ERROR_KIND_DETERMINISTIC`
    ones reproduce per seed (surfaced after exactly one attempt).
    ``attempts`` counts how many executions this outcome cost;
    ``checksum`` is the producer-side integrity stamp of ``result``.
    """

    index: int
    seed: int
    result: Optional[RunResult]
    error: Optional[str]
    wall_time_s: float
    error_kind: Optional[str] = None
    attempts: int = 1
    checksum: Optional[int] = None

    @property
    def failed(self) -> bool:
        """Whether this run raised instead of completing."""
        return self.error is not None

    @property
    def transient(self) -> bool:
        """Whether this outcome is a retryable infrastructure failure."""
        return self.failed and self.error_kind == ERROR_KIND_TRANSIENT

    def record(self) -> RunRecord:
        """The observability record of a *successful* outcome."""
        if self.result is None:
            raise SimulationError(
                f"run {self.index} (seed {self.seed:#x}) failed; no record"
            )
        return RunRecord.from_result(
            self.index, self.seed, self.result, self.wall_time_s
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for *transient* failures.

    ``max_attempts`` caps total executions per run (1 = never retry).
    The wait before re-dispatching attempt ``n + 1`` is
    ``backoff_s * multiplier ** (n - 1)``.  ``sleep`` is injectable so
    tests can retry without real waiting.  Deterministic simulation
    failures ignore this policy entirely — they are surfaced after
    exactly one attempt, because every retry would fail identically.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry needs max_attempts >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff must be non-negative, got {self.backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )

    def delay_s(self, attempt: int) -> float:
        """Backoff before re-dispatching after failed attempt ``attempt``."""
        return self.backoff_s * self.multiplier ** (attempt - 1)

    def wait(self, attempt: int) -> None:
        """Sleep the backoff owed after failed attempt ``attempt``."""
        delay = self.delay_s(attempt)
        if delay > 0:
            self.sleep(delay)


# ----------------------------------------------------------------------
# observers
# ----------------------------------------------------------------------
class RunObserver:
    """Structured observability hook threaded through every backend.

    Subclass and override what you need; every method is a no-op by
    default.  Under :class:`ProcessPoolBackend`, :meth:`on_run` fires
    in *completion* order (not index order) in the parent process.
    """

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        """A campaign of ``runs`` runs is about to start."""

    def on_run(self, record: RunRecord) -> None:
        """One run completed successfully."""

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        """One run failed for good; ``error`` is its formatted traceback.

        Fires once per request, after retries (if any) are exhausted —
        transient failures that a later attempt recovered fire
        :meth:`on_retry` instead.
        """

    def on_retry(self, index: int, seed: int, attempt: int, error: str) -> None:
        """Attempt ``attempt`` of one run failed transiently; it will be
        re-dispatched."""

    def on_worker_crash(self, dead_workers: int) -> None:
        """``dead_workers`` pool processes died hard; the pool is being
        rebuilt and their unfinished runs re-dispatched."""

    def on_checkpoint(self, index: int, seed: int, completed: int,
                      total: int) -> None:
        """One run's record was appended to the campaign's checkpoint
        journal (``completed`` of ``total`` runs are now journalled)."""

    def on_campaign_end(self, result: object) -> None:
        """A campaign finished; ``result`` is its CampaignResult."""

    def on_message(self, message: str) -> None:
        """Free-form progress text from the layer driving the runs."""


class StreamObserver(RunObserver):
    """Prints campaign progress, throughput and resilience events.

    Output is routed through a :class:`~repro.observability.StructuredLogger`;
    the default logger reproduces the historical plain-text format
    (``  [message]`` lines on ``stream``) bit-for-bit, while a caller
    (or the CLI's ``--log-level``/``--log-format`` flags) can swap in a
    quiet, key=value or JSON logger for service use.  Progress events
    log at ``info``, retries and worker crashes at ``warning``, final
    run failures at ``error``.
    """

    def __init__(
        self,
        stream: IO[str],
        every: int = 0,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self.stream = stream
        self.every = every
        self.logger = (
            logger if logger is not None
            else StructuredLogger(stream=stream, level="info", fmt="plain")
        )
        self._done = 0
        self._runs = 0
        self._failed = 0
        self._retried = 0

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        self._done = 0
        self._runs = runs
        self._failed = 0
        self._retried = 0
        self.logger.info(
            "campaign_start",
            message=f"campaign: {task} under {scenario_label} ({runs} runs)",
            task=task, scenario=scenario_label, runs=runs,
        )

    def on_run(self, record: RunRecord) -> None:
        self._done += 1
        if self.every and self._done % self.every == 0:
            self.logger.info(
                "progress",
                message=f"{self._done}/{self._runs} runs",
                done=self._done, runs=self._runs,
            )

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        self._failed += 1
        last = error.strip().splitlines()[-1] if error else "unknown error"
        self.logger.error(
            "run_failed",
            message=f"run {index} FAILED (seed {seed:#x}): {last}",
            index=index, seed=f"{seed:#x}", error=last,
        )

    def on_retry(self, index: int, seed: int, attempt: int, error: str) -> None:
        self._retried += 1
        last = error.strip().splitlines()[-1] if error else "unknown error"
        self.logger.warning(
            "run_retry",
            message=f"run {index} retrying after attempt {attempt} "
                    f"(seed {seed:#x}): {last}",
            index=index, seed=f"{seed:#x}", attempt=attempt, error=last,
        )

    def on_worker_crash(self, dead_workers: int) -> None:
        self.logger.warning(
            "worker_crash",
            message=f"{dead_workers} worker(s) died hard; rebuilding pool "
                    f"and re-dispatching unfinished runs",
            dead_workers=dead_workers,
        )

    def on_checkpoint(self, index: int, seed: int, completed: int,
                      total: int) -> None:
        if self.every and completed % self.every == 0:
            self.logger.info(
                "checkpoint",
                message=f"checkpoint: {completed}/{total} runs journalled",
                completed=completed, total=total,
            )

    def on_campaign_end(self, result: object) -> None:
        wall = getattr(result, "wall_time_s", 0.0)
        runs = getattr(result, "runs", 0)
        if wall > 0:
            self.logger.info(
                "campaign_end",
                message=f"{runs} runs in {wall:.2f}s: {runs / wall:.1f} "
                        f"runs/s, {self._failed} failed, "
                        f"{self._retried} retried",
                runs=runs, wall_time_s=round(wall, 6),
                failed=self._failed, retried=self._retried,
            )

    def on_message(self, message: str) -> None:
        self.logger.info("message", message=message)


class ProfilingObserver(RunObserver):
    """Collects per-run profile snapshots, optionally wrapping another
    observer.

    Works with any backend: snapshots travel inside the
    :class:`RunRecord` (they are picklable), so process-pool runs
    profile exactly like serial ones.  ``total`` merges everything
    collected so far into one campaign-level snapshot.
    """

    def __init__(self, inner: Optional[RunObserver] = None) -> None:
        self.inner = inner
        self.snapshots: List[ProfileSnapshot] = []

    @property
    def total(self) -> ProfileSnapshot:
        """Aggregate attribution across all observed runs."""
        return ProfileSnapshot.merge(self.snapshots)

    def on_campaign_start(self, task: str, scenario_label: str, runs: int) -> None:
        if self.inner is not None:
            self.inner.on_campaign_start(task, scenario_label, runs)

    def on_run(self, record: RunRecord) -> None:
        if record.profile is not None:
            self.snapshots.append(record.profile)
        if self.inner is not None:
            self.inner.on_run(record)

    def on_run_failed(self, index: int, seed: int, error: str) -> None:
        if self.inner is not None:
            self.inner.on_run_failed(index, seed, error)

    def on_retry(self, index: int, seed: int, attempt: int, error: str) -> None:
        if self.inner is not None:
            self.inner.on_retry(index, seed, attempt, error)

    def on_worker_crash(self, dead_workers: int) -> None:
        if self.inner is not None:
            self.inner.on_worker_crash(dead_workers)

    def on_checkpoint(self, index: int, seed: int, completed: int,
                      total: int) -> None:
        if self.inner is not None:
            self.inner.on_checkpoint(index, seed, completed, total)

    def on_campaign_end(self, result: object) -> None:
        if self.inner is not None:
            self.inner.on_campaign_end(result)

    def on_message(self, message: str) -> None:
        if self.inner is not None:
            self.inner.on_message(message)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Protocol of an execution backend.

    ``execute`` runs every request and returns one :class:`RunOutcome`
    per request, **in request (index) order**, regardless of the order
    in which runs physically completed.  Implementations must capture
    per-run exceptions into the outcome rather than propagate them.
    """

    #: Short label recorded on CampaignResult (e.g. ``"serial"``).
    name: str = "?"

    #: Whether one ``execute`` call amortises its dispatch overhead
    #: over the whole request batch (lane-vectorised engines).  The
    #: adaptive campaign layer speculates with geometrically growing
    #: dispatch blocks only on such backends — on a per-run backend,
    #: overshooting the stopping boundary costs full runs and saves
    #: nothing.
    amortised_dispatch: bool = False

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        """Execute ``requests``; one outcome per request, index order."""
        raise NotImplementedError


# In-process fault-injection hook (see repro.sim.faults).  ``None``
# outside chaos tests; workers receive their plan at bootstrap instead.
_FAULT_PLAN = None
# True only inside pool worker processes, where an injected "crash" may
# genuinely kill the process instead of being simulated by an exception.
_IN_WORKER = False


@contextlib.contextmanager
def installed_fault_plan(plan):
    """Install a fault plan for in-process execution (chaos testing)."""
    global _FAULT_PLAN
    previous = _FAULT_PLAN
    _FAULT_PLAN = plan
    try:
        yield
    finally:
        _FAULT_PLAN = previous


def _trigger_fault(kind: str, plan) -> None:
    """Act out one injected fault (pre-execution kinds only)."""
    if kind == "slow":
        time.sleep(plan.slow_s)
    elif kind == "crash":
        if _IN_WORKER:
            os._exit(70)  # hard death: no exception, no cleanup, no result
        raise WorkerCrashError("injected worker crash (in-process simulation)")
    elif kind == "hang":
        if _IN_WORKER:
            time.sleep(plan.hang_s)  # park past the watchdog; pool kills us
        else:
            raise RunTimeoutError(
                "injected hang (in-process simulation)", transient=True
            )


def _run_one(request: RunRequest, attempt: int = 1) -> RunOutcome:
    """Execute one request, capturing and classifying any exception."""
    started = time.perf_counter()
    plan = _FAULT_PLAN
    fault = plan.fault_for(request.index, attempt) if plan is not None else None
    error = None
    error_kind = None
    checksum = None
    try:
        if fault is not None:
            _trigger_fault(fault, plan)
        result = execute_request(request)
        checksum = result_checksum(request.index, request.seed, result)
        if fault == "corrupt":
            # Simulate a bit-flip in IPC transit: mutate the payload
            # *after* stamping it, so the consumer's re-check fails.
            result.cores[0].cycles += 1
    except Exception as exc:  # noqa: BLE001 — captured and surfaced per run
        result = None
        error = traceback.format_exc()
        error_kind = classify_exception(exc)
    return RunOutcome(
        index=request.index,
        seed=request.seed,
        result=result,
        error=error,
        wall_time_s=time.perf_counter() - started,
        error_kind=error_kind,
        attempts=attempt,
        checksum=checksum,
    )


def _validated(outcome: RunOutcome) -> RunOutcome:
    """Re-verify an outcome's integrity stamp on the consumer side."""
    if outcome.result is None or outcome.checksum is None:
        return outcome
    if result_checksum(outcome.index, outcome.seed,
                       outcome.result) == outcome.checksum:
        return outcome
    try:
        raise ResultIntegrityError(
            f"run {outcome.index} (seed {outcome.seed:#x}): result failed "
            f"its integrity check after transfer; retrying"
        )
    except ResultIntegrityError:
        error = traceback.format_exc()
    return replace(
        outcome, result=None, checksum=None, error=error,
        error_kind=ERROR_KIND_TRANSIENT,
    )


class SerialBackend(ExecutionBackend):
    """In-process, one-at-a-time execution — the reference semantics.

    ``retry`` (off by default) re-executes transient failures under the
    given policy; deterministic simulation errors are never retried.
    """

    name = "serial"

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = retry

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        max_attempts = self.retry.max_attempts if self.retry else 1
        outcomes = []
        for request in requests:
            attempt = 1
            while True:
                outcome = _validated(_run_one(request, attempt))
                if outcome.transient and attempt < max_attempts:
                    if observer is not None:
                        observer.on_retry(
                            outcome.index, outcome.seed, attempt,
                            outcome.error or "",
                        )
                    self.retry.wait(attempt)
                    attempt += 1
                    continue
                break
            _notify(observer, outcome)
            outcomes.append(outcome)
        return outcomes


# Worker-side state of ProcessPoolBackend: the shared template request
# (traces/config/scenario), shipped once per worker at bootstrap so the
# per-job messages are just (index, seed, attempt) triples.
_WORKER_TEMPLATE: Optional[RunRequest] = None


def _bootstrap_worker(template: RunRequest, fault_plan=None) -> None:
    global _WORKER_TEMPLATE, _FAULT_PLAN, _IN_WORKER
    _WORKER_TEMPLATE = template
    _FAULT_PLAN = fault_plan
    _IN_WORKER = True


def _run_chunk(triples: Sequence[tuple]) -> List[RunOutcome]:
    template = _WORKER_TEMPLATE
    if template is None:  # pragma: no cover — would be a harness bug
        raise RuntimeError("worker used before bootstrap")
    return [
        _run_one(template.with_run(index, seed), attempt)
        for index, seed, attempt in triples
    ]


def _notify(observer: Optional[RunObserver], outcome: RunOutcome) -> None:
    if observer is None:
        return
    if outcome.failed:
        observer.on_run_failed(outcome.index, outcome.seed, outcome.error or "")
    else:
        observer.on_run(outcome.record())


def _lost_outcome(
    index: int, seed: int, attempt: int, reason: Optional[str],
    timeout_s: Optional[float],
) -> RunOutcome:
    """Synthesise the outcome of a run whose worker never answered."""
    if reason == "timeout":
        exc: Exception = RunTimeoutError(
            f"run {index} (seed {seed:#x}): no pool progress within "
            f"{timeout_s}s; workers killed and run re-dispatched",
            transient=True,
        )
    else:
        exc = WorkerCrashError(
            f"run {index} (seed {seed:#x}) was lost to a hard worker death"
        )
    message = "".join(traceback.format_exception_only(type(exc), exc))
    return RunOutcome(
        index=index, seed=seed, result=None, error=message,
        wall_time_s=0.0, error_kind=ERROR_KIND_TRANSIENT, attempts=attempt,
    )


class ProcessPoolBackend(ExecutionBackend):
    """Multiprocessing fan-out with chunked dispatch and crash recovery.

    Work is dispatched in *waves*: every wave ships the still-unfinished
    ``(index, seed, attempt)`` triples to a fresh pool, collects what
    comes back, and classifies the rest.  A hard worker death (OOM,
    SIGKILL, ``os._exit``) is detected through the dead process's exit
    code; the pool is torn down once it goes quiet and the lost runs
    are re-dispatched in the next wave under ``retry``.  A hung worker
    is detected by the optional progress watchdog (``run_timeout_s``)
    and handled the same way.  Completed outcomes are never discarded
    across waves, and re-executing a run is bit-identical by
    construction, so recovery cannot change the sample.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count.
    chunk_size:
        ``(index, seed, attempt)`` triples per dispatched chunk.
        Defaults to an even split over ``4 * workers`` chunks — small
        enough to load balance, large enough to amortise IPC.  Smaller
        chunks also shrink the blast radius of a worker crash (a lost
        chunk is re-executed whole).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"fork"``
        where available (cheap on Linux), else ``"spawn"``.
    retry:
        Bounded backoff policy for transient failures (worker crashes,
        watchdog timeouts, corrupted results, :class:`~repro.errors.TransientRunError`
        raised by a run).  Defaults to ``RetryPolicy()`` (3 attempts).
        Deterministic simulation errors are surfaced after exactly one
        attempt regardless of this policy.
    run_timeout_s:
        Progress watchdog: if no chunk completes for this many host
        seconds while work is outstanding, the pool is presumed hung,
        terminated, and the unfinished runs re-dispatched.  ``None``
        (default) disables the watchdog.
    fault_plan:
        Deterministic chaos hook (see :mod:`repro.sim.faults`);
        shipped to workers at bootstrap.  ``None`` outside tests.
    force_pool:
        Keep the worker pool even on a single-CPU host.  By default a
        multi-worker backend on ``usable_cpus() == 1`` degrades to
        in-process serial execution (with an observer warning), because
        the pool buys no parallelism there and the measured overhead is
        a net slowdown; tests that exercise real pool mechanics pass
        ``True`` to opt out.
    """

    #: Seconds of pool quiet time after a detected worker death before
    #: the wave is abandoned and its unfinished runs re-dispatched.
    CRASH_DRAIN_S = 0.5
    #: Poll interval of the parent's progress/death watchdog loop.
    POLL_S = 0.01

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        run_timeout_s: Optional[float] = None,
        fault_plan=None,
        force_pool: bool = False,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        if run_timeout_s is not None and run_timeout_s <= 0:
            raise ConfigurationError(
                f"run timeout must be positive, got {run_timeout_s}"
            )
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.retry = retry if retry is not None else RetryPolicy()
        self.run_timeout_s = run_timeout_s
        self.fault_plan = fault_plan
        self.force_pool = force_pool
        self.name = f"process[{workers}]"
        #: Whether the single-CPU degrade warning fired for the
        #: campaign currently executing — reset at every ``execute()``
        #: entry so the advisory is once per campaign, not once per
        #: consultation of :meth:`_degrades`.
        self._degrade_warned = False

    def _chunks(self, jobs: List[tuple]) -> List[List[tuple]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(jobs) // (4 * self.workers)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    def execute(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver] = None,
    ) -> List[RunOutcome]:
        if not requests:
            return []
        template = requests[0]
        template_key = template.template_key()
        for request in requests[1:]:
            if request.template_key() != template_key:
                raise ConfigurationError(
                    "ProcessPoolBackend requires a homogeneous batch: all "
                    "requests must share traces/config/scenario and differ "
                    "only in (index, seed); split heterogeneous work into "
                    "one execute() call per template"
                )
        self._degrade_warned = False  # new campaign: the advisory may fire once
        if len(requests) == 1 or self.workers == 1 or self._degrades(requests,
                                                                     observer):
            # Not worth a pool; semantics are identical by construction.
            serial = SerialBackend(retry=self.retry)
            if self.fault_plan is not None:
                with installed_fault_plan(self.fault_plan):
                    return serial.execute(requests, observer)
            return serial.execute(requests, observer)
        context = multiprocessing.get_context(self.mp_context)
        return self._execute_waves(context, template, requests, observer)

    def _degrades(
        self,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver],
    ) -> bool:
        """Whether to skip the pool on a single-CPU host (satellite 1).

        A multi-worker pool on one usable CPU is pure overhead
        (``BENCH_campaign.json`` measured 0.65×), so degrade to
        in-process execution — bit-identical by construction — unless
        the caller opted out with ``force_pool=True``.

        The observer advisory fires at most once per campaign (per
        :meth:`execute` call): the decision may be consulted again
        within one campaign (wave re-dispatch, subclass delegation),
        and repeating an unchanged advisory per wave is noise.  The
        structured-log side is additionally deduped by
        :class:`~repro.sim.telemetry.TelemetryObserver`.
        """
        if self.force_pool or self.workers <= 1 or len(requests) <= 1:
            return False
        if usable_cpus() != 1:
            return False
        if observer is not None and not self._degrade_warned:
            self._degrade_warned = True
            observer.on_message(
                f"only 1 usable CPU for {self.workers} workers; degrading "
                f"to in-process serial execution (results are "
                f"bit-identical; pass force_pool=True to keep the pool)"
            )
        return True

    def _execute_waves(
        self,
        context,
        template: RunRequest,
        requests: Sequence[RunRequest],
        observer: Optional[RunObserver],
    ) -> List[RunOutcome]:
        """Wave loop: dispatch, validate, retry transients, finalise."""
        # index -> (index, seed, attempt) of every not-yet-final run.
        pending: Dict[int, Tuple[int, int, int]] = {
            request.index: (request.index, request.seed, 1)
            for request in requests
        }
        final: Dict[int, RunOutcome] = {}
        telemetry = current_telemetry()
        wave = 0
        while pending:
            wave += 1
            jobs = sorted(pending.values())
            if telemetry is not None:
                wave_started = time.monotonic()
                with telemetry.tracer.span(
                    "wave", wave=wave, runs=len(jobs), backend=self.name
                ):
                    returned, reason = self._run_wave(
                        context, template, jobs, observer
                    )
                telemetry.metrics.counter("waves_dispatched").inc()
                telemetry.metrics.histogram("wave_latency_s").observe(
                    time.monotonic() - wave_started
                )
            else:
                returned, reason = self._run_wave(context, template, jobs,
                                                  observer)
            for index, seed, attempt in jobs:
                outcome = returned.get(index)
                if outcome is None:
                    outcome = _lost_outcome(
                        index, seed, attempt, reason, self.run_timeout_s
                    )
                outcome = _validated(outcome)
                if outcome.transient and attempt < self.retry.max_attempts:
                    if observer is not None:
                        observer.on_retry(index, seed, attempt,
                                          outcome.error or "")
                    pending[index] = (index, seed, attempt + 1)
                else:
                    del pending[index]
                    final[index] = outcome
                    _notify(observer, outcome)
            if pending:
                self.retry.wait(wave)
        return [final[index] for index in sorted(final)]

    def _pool_initializer(self, template: RunRequest) -> Tuple[Callable, tuple]:
        """Worker bootstrap ``(initializer, initargs)`` for one wave.

        Subclasses (the sharded batch backend) substitute their own
        bootstrap to ship a shared-memory plan handle instead of the
        pickled template.
        """
        return _bootstrap_worker, (template, self.fault_plan)

    def _runner(self) -> Callable:
        """The chunk-execution function dispatched to workers."""
        return _run_chunk

    def _run_wave(
        self,
        context,
        template: RunRequest,
        jobs: List[tuple],
        observer: Optional[RunObserver],
    ) -> Tuple[Dict[int, RunOutcome], Optional[str]]:
        """One dispatch wave: returns collected outcomes + loss reason.

        ``reason`` is ``None`` when every chunk answered, ``"crash"``
        when a worker died hard, ``"timeout"`` when the progress
        watchdog fired.  The pool is always terminated and joined on
        the way out — including on ``KeyboardInterrupt``, so Ctrl-C on
        a long campaign cannot leak worker processes.
        """
        chunks = self._chunks(jobs)
        returned: Dict[int, RunOutcome] = {}
        reason: Optional[str] = None
        initializer, initargs = self._pool_initializer(template)
        runner = self._runner()
        pool = context.Pool(
            processes=min(self.workers, len(jobs)),
            initializer=initializer,
            initargs=initargs,
        )
        try:
            handles = [pool.apply_async(runner, (chunk,)) for chunk in chunks]
            pool.close()
            # Snapshot the worker processes: mp.Pool silently replaces a
            # dead worker, but the dead Process object keeps its exit
            # code, which is the only portable trace of a hard death.
            workers = list(getattr(pool, "_pool", []))
            outstanding = set(range(len(handles)))
            last_progress = time.monotonic()
            dead_seen = 0
            while outstanding:
                progressed = False
                for handle_id in tuple(outstanding):
                    handle = handles[handle_id]
                    if not handle.ready():
                        continue
                    outstanding.discard(handle_id)
                    progressed = True
                    try:
                        for outcome in handle.get():
                            returned[outcome.index] = outcome
                    except Exception:  # noqa: BLE001 — chunk-level loss
                        # The chunk raised instead of answering (e.g.
                        # its result did not survive the transfer); its
                        # runs are synthesised as transient losses.
                        reason = reason or "crash"
                if progressed:
                    last_progress = time.monotonic()
                    continue
                now = time.monotonic()
                dead = sum(
                    1 for worker in workers
                    if worker.exitcode not in (None, 0)
                )
                if dead > dead_seen:
                    if observer is not None:
                        observer.on_worker_crash(dead - dead_seen)
                    dead_seen = dead
                    reason = "crash"
                if reason == "crash" and now - last_progress >= self.CRASH_DRAIN_S:
                    # A worker died and the survivors have gone quiet:
                    # whatever is still outstanding was in the dead
                    # worker's hands.  Stop waiting, re-dispatch.
                    break
                if (self.run_timeout_s is not None
                        and now - last_progress > self.run_timeout_s):
                    reason = reason or "timeout"
                    break
                time.sleep(self.POLL_S)
        finally:
            pool.terminate()
            pool.join()
        return returned, reason


#: Registry of backend names accepted by :func:`make_backend` / the CLI.
BACKEND_NAMES = ("serial", "process")


def make_backend(
    name: str = "serial",
    workers: Optional[int] = None,
    run_timeout_s: Optional[float] = None,
) -> ExecutionBackend:
    """Build a backend from a CLI-style ``(name, workers)`` pair.

    ``run_timeout_s`` arms the process backend's progress watchdog
    (ignored for the serial backend, which cannot hang on a worker).
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers, run_timeout_s=run_timeout_s)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )
