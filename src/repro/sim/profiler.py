"""Cycle- and wall-time attribution for the per-run hot path.

The simulator's cost per instruction is split across a handful of
components — the private L1s, the shared bus, the LLC lookup, EFL
eviction-grant stalls and the memory controller.  When a run is
profiled, each component leg accounts what it charged (in simulated
cycles) and what it cost (in host wall time) into a
:class:`HotPathProfiler`; the frozen :class:`ProfileSnapshot` taken at
the end of the run travels with the run's results (it is picklable, so
the process backend ships it back like any other record field).

Profiling is strictly opt-in: the default ``profiler=None`` keeps the
hot path on a null-check fast branch, so unprofiled runs pay nothing
measurable.  The attribution is *per component latency charged*, not a
partition of total cycles — overlapping costs (e.g. the port wait
before a miss issues) are deliberately left unattributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

#: The attribution buckets, in pipeline order.
COMPONENTS = ("l1", "bus", "llc", "efl", "memctrl")


@dataclass(frozen=True)
class ProfileSnapshot:
    """Immutable per-run attribution totals.

    ``events[c]`` counts how often component ``c`` was charged,
    ``cycles[c]`` the simulated cycles it charged and ``wall_s[c]`` the
    host seconds spent inside its model code.
    """

    events: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, int] = field(default_factory=dict)
    wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        """Sum of attributed simulated cycles across components."""
        return sum(self.cycles.values())

    @property
    def total_wall_s(self) -> float:
        """Sum of attributed host seconds across components."""
        return sum(self.wall_s.values())

    @classmethod
    def merge(cls, snapshots: Iterable[Optional["ProfileSnapshot"]]) -> "ProfileSnapshot":
        """Aggregate snapshots (e.g. one per run) into campaign totals.

        ``None`` entries (unprofiled runs) are skipped.
        """
        events = {name: 0 for name in COMPONENTS}
        cycles = {name: 0 for name in COMPONENTS}
        wall_s = {name: 0.0 for name in COMPONENTS}
        for snap in snapshots:
            if snap is None:
                continue
            for name, value in snap.events.items():
                events[name] = events.get(name, 0) + value
            for name, value in snap.cycles.items():
                cycles[name] = cycles.get(name, 0) + value
            for name, value in snap.wall_s.items():
                wall_s[name] = wall_s.get(name, 0.0) + value
        return cls(events=events, cycles=cycles, wall_s=wall_s)


class HotPathProfiler:
    """Mutable per-run accumulator the simulation legs account into.

    One instance per profiled run (never shared across processes);
    :meth:`account` is written to cost a dict update and nothing else.
    """

    __slots__ = ("events", "cycles", "wall_s")

    def __init__(self) -> None:
        self.events = {name: 0 for name in COMPONENTS}
        self.cycles = {name: 0 for name in COMPONENTS}
        self.wall_s = {name: 0.0 for name in COMPONENTS}

    def account(self, component: str, cycles: int, wall_s: float = 0.0) -> None:
        """Charge ``cycles`` (and optionally ``wall_s``) to ``component``."""
        self.events[component] += 1
        self.cycles[component] += cycles
        if wall_s:
            self.wall_s[component] += wall_s

    def snapshot(self) -> ProfileSnapshot:
        """Freeze the current totals into a picklable snapshot."""
        return ProfileSnapshot(
            events=dict(self.events),
            cycles=dict(self.cycles),
            wall_s=dict(self.wall_s),
        )
