"""Span-based tracing: where a campaign's wall clock actually went.

A :class:`Tracer` records a tree of timed :class:`Span` objects —
``campaign → wave → …`` — so a slow submission can be read as a
waterfall instead of re-profiled.  Spans nest via a thread-local
stack: ``tracer.span("wave")`` opened while a ``campaign`` span is
active on the same thread becomes its child, while spans opened on
other threads (job-queue workers) start independent roots.  Finished
root spans accumulate on the tracer (bounded by ``max_roots``) and
export as plain JSON for artifacts and dashboards.

Spans measure, never decide: the simulation's samples are bit-identical
with and without a tracer attached, which the telemetry test-suite
enforces as a standing contract.

Leaf module — imports nothing from the simulation stack.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional


class Span:
    """One timed operation, possibly with children."""

    __slots__ = ("name", "attributes", "start_s", "end_s", "children", "status")

    def __init__(self, name: str, attributes: Dict[str, object],
                 start_s: float) -> None:
        self.name = name
        self.attributes = attributes
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []
        self.status = "ok"

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attributes: object) -> None:
        """Attach or overwrite attributes on an open span."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, object]:
        """This span (and its subtree) as a JSON-ready dict."""
        entry: Dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "status": self.status,
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class Tracer:
    """Collects nested spans per thread; exports finished roots as JSON.

    Parameters
    ----------
    clock:
        Injectable monotonic time source (tests pin it).
    max_roots:
        Bound on retained finished root spans — a long-running service
        must not grow without bound, so the oldest roots are dropped
        (and counted in ``dropped_roots``) once the cap is reached.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_roots: int = 1024,
    ) -> None:
        if max_roots < 1:
            raise ValueError(f"max_roots must be positive, got {max_roots}")
        self.clock = clock
        self.max_roots = max_roots
        self.dropped_roots = 0
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextlib.contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span around a block; nests under the current span.

        An exception escaping the block marks the span ``status="error"``
        (with the exception type recorded) and re-raises — tracing never
        swallows failures.
        """
        stack = self._stack()
        span = Span(name, dict(attributes), self.clock())
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            span.end_s = self.clock()
            stack.pop()
            if not stack:
                with self._lock:
                    self._roots.append(span)
                    while len(self._roots) > self.max_roots:
                        self._roots.pop(0)
                        self.dropped_roots += 1

    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def export(self) -> List[Dict[str, object]]:
        """Every finished root span tree as JSON-ready dicts."""
        return [span.to_dict() for span in self.roots()]

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`export` list serialised as JSON."""
        return json.dumps(self.export(), indent=indent)

    def reset(self) -> None:
        """Drop finished roots (open spans on live threads are kept)."""
        with self._lock:
            self._roots.clear()
            self.dropped_roots = 0


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer used when none is injected."""
    return _DEFAULT
