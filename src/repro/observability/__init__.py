"""Observability: structured logging, metrics and span tracing.

Three leaf modules plus one facade:

* :mod:`repro.observability.logging` — leveled, context-bound
  :class:`StructuredLogger` (plain / key=value / JSON formats);
* :mod:`repro.observability.metrics` — process-wide
  :class:`MetricsRegistry` of counters and histograms (runs simulated,
  cache hits served, retries, wave latencies);
* :mod:`repro.observability.tracing` — nested-span :class:`Tracer`
  (``campaign → wave``), exportable as JSON;
* :class:`Telemetry` — one bundle of the three, passed through
  :func:`~repro.sim.campaign.collect_execution_times` and the service
  layer, and *attached* thread-locally so deep seams (wave dispatch,
  the plan cache) can emit without threading a handle through every
  signature.

**Bit-neutrality contract.**  Telemetry observes, never decides:
samples, seeds and checksums are bit-identical with and without a
:class:`Telemetry` attached, across every engine.  The telemetry
test-suite enforces this standing contract.

This package imports nothing from the simulation stack, so any layer
(backends, the plan cache, the service) may import it freely.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional, TextIO

from repro.observability.logging import (
    LEVELS,
    LOG_FORMATS,
    StructuredLogger,
    null_logger,
)
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.observability.tracing import Span, Tracer, default_tracer


@dataclass
class Telemetry:
    """One logger + metrics registry + tracer, handed around as a unit."""

    logger: StructuredLogger = field(default_factory=null_logger)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)

    @classmethod
    def create(
        cls,
        stream: Optional[TextIO] = None,
        level: str = "info",
        fmt: str = "kv",
    ) -> "Telemetry":
        """A fresh, fully isolated telemetry bundle (the service default)."""
        return cls(
            logger=StructuredLogger(stream=stream, level=level, fmt=fmt),
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        )

    @classmethod
    def shared(cls) -> "Telemetry":
        """A bundle over the process-wide default registry and tracer."""
        return cls(
            logger=null_logger(),
            metrics=default_registry(),
            tracer=default_tracer(),
        )


# Thread-local attachment: each campaign attaches its telemetry on the
# thread that drives it, so concurrent service jobs never observe each
# other's bundle and detaching one cannot blind another mid-wave.
_ATTACHED = threading.local()


def current_telemetry() -> Optional[Telemetry]:
    """The telemetry attached to this thread, if any."""
    return getattr(_ATTACHED, "telemetry", None)


@contextlib.contextmanager
def attached_telemetry(telemetry: Optional[Telemetry]) -> Iterator[None]:
    """Attach ``telemetry`` for the duration of a block (thread-local).

    Deep seams that cannot take a parameter — wave dispatch inside
    :class:`~repro.sim.backend.ProcessPoolBackend`, plan-cache lookups —
    read :func:`current_telemetry` instead.  ``None`` detaches (useful
    for asserting a block emits nothing).
    """
    previous = current_telemetry()
    _ATTACHED.telemetry = telemetry
    try:
        yield
    finally:
        _ATTACHED.telemetry = previous


__all__ = [
    "LEVELS",
    "LOG_FORMATS",
    "StructuredLogger",
    "null_logger",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "Span",
    "Tracer",
    "default_tracer",
    "Telemetry",
    "current_telemetry",
    "attached_telemetry",
]
