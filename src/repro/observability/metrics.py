"""Process-wide metrics: monotonic counters and latency histograms.

The campaign service answers "what did this process do" questions
without log archaeology: how many runs were simulated versus served
from the result store, how many retries and worker crashes the
resilience layer absorbed, how wave latency is distributed.  A
:class:`MetricsRegistry` holds named :class:`Counter` and
:class:`Histogram` instruments behind one lock; instruments are
created on first use, so emitting a metric is a one-liner at the
emission site and the registry is the single place that can render
everything as a JSON snapshot.

The **reconciliation invariant** the service test-suite enforces lives
here by convention: for every submitted campaign,

    ``runs_requested == runs_simulated + runs_resumed
    + runs_served_from_cache + runs_shed``

— simulation work is performed, taken over from a crashed process's
checkpoint, answered from storage, or refused with a labelled error;
never silently dropped and never duplicated.

Like the rest of :mod:`repro.observability`, this module imports
nothing from the simulation stack — it is a leaf every layer above may
use.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Dict, List, Optional, Sequence

#: Default histogram bucket upper bounds (seconds) — spans the range
#: from a single tiny-scale run to a paper-scale sharded wave.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self.value += amount


class Histogram:
    """A bucketed distribution with exact count/sum/min/max sidecars.

    ``buckets`` are cumulative upper bounds (Prometheus ``le``
    convention): a sample equal to a bound lands in that bound's
    bucket, deterministically.  One implicit overflow bucket catches
    everything above the last bound.  Bounds are deduplicated at
    construction (a duplicated bound would leave a permanently empty
    shadow bucket whose ``le_...`` key collides in :meth:`summary`,
    silently dropping counts from the rendered JSON) and must be
    finite — ``inf`` would shadow the implicit overflow bucket and
    ``nan`` compares false with everything, leaving a dead slot.  The
    invariant the service suite asserts: the rendered bucket counts
    always sum to ``count``.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted({float(bound) for bound in buckets}))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        for bound in bounds:
            if bound != bound or bound in (float("inf"), float("-inf")):
                raise ValueError(
                    f"histogram {name!r} bucket bounds must be finite, "
                    f"got {bound!r}"
                )
        keys = [f"le_{bound:g}" for bound in bounds]
        if len(set(keys)) != len(keys):
            raise ValueError(
                f"histogram {name!r} has distinct bounds that render to "
                f"the same le_... key: {bounds!r} -> {keys!r}"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            self.bucket_counts[slot] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 before the first observation)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, object]:
        """This histogram as a plain JSON-ready dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{f"le_{bound:g}": count
                   for bound, count in zip(self.buckets, self.bucket_counts)},
                "inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Named instruments behind one lock, snapshot-able as JSON.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and live for the registry's lifetime.  One registry is process-wide
    (:func:`default_registry`); services that need isolation (tests,
    per-tenant accounting) construct their own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], object]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name``."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name, self._lock)
                self._counters[name] = counter
            return counter

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create the histogram ``name`` (buckets fixed at birth)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(name, self._lock, buckets)
                self._histograms[name] = histogram
            return histogram

    def gauge(self, name: str, supplier: Callable[[], object]) -> None:
        """Register (or replace) a live-value gauge.

        Unlike counters, a gauge is *read*, not written: ``supplier``
        is called at snapshot/health time and should return the
        instantaneous value (queue depth, in-flight jobs).  Replacing
        an existing name is deliberate — when a new service object
        (say a restarted :class:`~repro.service.jobs.JobQueue`) reuses
        a registry, its gauges must reflect the live object, not a
        dead predecessor.
        """
        with self._lock:
            self._gauges[name] = supplier

    def gauges(self) -> Dict[str, object]:
        """Every gauge evaluated now, as ``{name: value}``.

        Suppliers run *outside* the registry lock: they commonly read
        service-object state guarded by that object's own lock, and a
        service object emitting a counter holds its lock before the
        registry's — evaluating under the registry lock would invert
        that order and invite deadlock.
        """
        with self._lock:
            suppliers = sorted(self._gauges.items())
        return {name: supplier() for name, supplier in suppliers}

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Everything this registry holds, as one JSON-ready dict."""
        gauges = self.gauges()  # evaluated outside the lock (see gauges())
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in sorted(self._counters.items())},
                "gauges": gauges,
                "histograms": {name: h.summary()
                               for name, h in sorted(self._histograms.items())},
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def counters(self) -> List[str]:
        """Names of every registered counter."""
        with self._lock:
            return sorted(self._counters)

    def reset(self) -> None:
        """Drop every instrument (test isolation for the default registry)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry backends emit to when none is injected."""
    return _DEFAULT
