"""Structured logging for the campaign service.

A :class:`StructuredLogger` emits one *record* per event: a level, an
event name and arbitrary key/value fields (job ids, campaign labels,
run counts).  Three wire formats cover every consumer the service has:

* ``"plain"`` — the CLI's historical human format, ``  [message]``
  per line, bit-identical to what :class:`~repro.sim.backend.StreamObserver`
  printed before the service refactor (the default CLI output must not
  change);
* ``"kv"`` — one ``key=value`` line per record, greppable and
  machine-parsable without a JSON decoder;
* ``"json"`` — one JSON object per line (JSONL), for log shippers.

Loggers are cheap value objects: :meth:`bind` returns a child logger
with extra context fields (e.g. ``job=job-000001``) merged into every
record it emits, which is how the service stamps job/campaign ids on
everything below it without threading ids through call signatures.

This module deliberately depends on nothing inside :mod:`repro` —
observability is a leaf layer the simulation stack may import freely.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Optional, TextIO

#: Severity ranks.  ``quiet`` is not a record level — it is a logger
#: threshold that suppresses every record (service batch mode).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "quiet": 100}

#: Formats a logger can emit; see the module docstring.
LOG_FORMATS = ("plain", "kv", "json")


def _quote(value: object) -> str:
    """Render one key=value payload, quoting only when necessary."""
    text = str(value)
    if text == "" or any(ch in text for ch in (" ", '"', "=")):
        return json.dumps(text)
    return text


class StructuredLogger:
    """Leveled, context-bound, multi-format event logger.

    Parameters
    ----------
    stream:
        Text stream records are written to (default ``sys.stderr``).
    level:
        Minimum severity emitted (``"debug"``/``"info"``/``"warning"``/
        ``"error"``); ``"quiet"`` suppresses everything.
    fmt:
        ``"plain"``, ``"kv"`` or ``"json"`` (see module docstring).
    clock:
        Injectable wall-clock source (tests pin it for stable output).
    context:
        Fields stamped on every record this logger (and its
        :meth:`bind` children) emits.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        level: str = "info",
        fmt: str = "kv",
        clock: Callable[[], float] = time.time,
        **context: object,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
            )
        if fmt not in LOG_FORMATS:
            raise ValueError(
                f"unknown log format {fmt!r}; expected one of {LOG_FORMATS}"
            )
        self.stream = stream if stream is not None else sys.stderr
        self.level = level
        self.fmt = fmt
        self.clock = clock
        self.context = dict(context)
        #: Dedupe keys already emitted by *this* logger instance.  A
        #: :meth:`bind` child starts with a fresh set, so the dedupe
        #: scope is the bound context's lifetime (e.g. one campaign's
        #: telemetry observer), not the whole process.
        self._emitted: set = set()

    # ------------------------------------------------------------------
    def bind(self, **fields: object) -> "StructuredLogger":
        """A child logger with ``fields`` merged into its context."""
        merged = dict(self.context)
        merged.update(fields)
        child = StructuredLogger(
            stream=self.stream, level=self.level, fmt=self.fmt, clock=self.clock
        )
        child.context = merged
        return child

    def is_enabled(self, level: str) -> bool:
        """Whether records at ``level`` pass this logger's threshold."""
        return LEVELS[level] >= LEVELS[self.level]

    # ------------------------------------------------------------------
    def log(
        self,
        level: str,
        event: str,
        message: Optional[str] = None,
        **fields: object,
    ) -> None:
        """Emit one record (a no-op below the logger's threshold).

        A ``dedupe`` field is consumed here, never rendered: records
        carrying the same dedupe key are emitted once per logger
        instance.  Backends use this to keep repeatable advisories
        (the single-CPU degrade warning, say) to one log record per
        campaign no matter how many times the emitting decision is
        consulted.
        """
        if level not in LEVELS or level == "quiet":
            raise ValueError(f"unknown record level {level!r}")
        dedupe = fields.pop("dedupe", None)
        if not self.is_enabled(level):
            return
        if dedupe is not None:
            if dedupe in self._emitted:
                return
            self._emitted.add(dedupe)
        if self.fmt == "plain":
            # The historical CLI shape: the message (or bare event name)
            # in brackets, everything structured dropped.
            print(f"  [{message if message is not None else event}]",
                  file=self.stream)
            return
        record = {"ts": round(self.clock(), 6), "level": level, "event": event}
        record.update(self.context)
        record.update(fields)
        if message is not None:
            record["message"] = message
        if self.fmt == "json":
            print(json.dumps(record, separators=(",", ":"), default=str),
                  file=self.stream)
        else:
            print(" ".join(f"{key}={_quote(value)}"
                           for key, value in record.items()),
                  file=self.stream)

    def debug(self, event: str, message: Optional[str] = None,
              **fields: object) -> None:
        self.log("debug", event, message, **fields)

    def info(self, event: str, message: Optional[str] = None,
             **fields: object) -> None:
        self.log("info", event, message, **fields)

    def warning(self, event: str, message: Optional[str] = None,
                **fields: object) -> None:
        self.log("warning", event, message, **fields)

    def error(self, event: str, message: Optional[str] = None,
              **fields: object) -> None:
        self.log("error", event, message, **fields)


def null_logger() -> StructuredLogger:
    """A logger that drops everything (service components' default)."""
    return StructuredLogger(level="quiet")
