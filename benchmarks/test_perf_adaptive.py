"""Adaptive-campaign efficiency: streaming convergence vs fixed R.

Measures the tentpole claim of the adaptive MBPTA PR: on the paper's
quick-scale EFL500 campaign, streaming EVT convergence stops the
sample at least 2x earlier than the fixed R=1000 protocol while
landing within a small relative distance of the fixed-R pWCET — and
the executed sample is bit-identical to the fixed campaign's prefix,
so the saving is pure scheduling, not a different experiment.

Wall-clock is compared on the scalar engine, where campaign cost is
linear in runs (the regime of the paper's protocol and of a 1-CPU
box): saved runs convert directly into saved seconds.  The grouped
-opcode kernel engine is measured too, as a recorded tradeoff rather
than a floor: its cost is per *wave* (each dispatch sweeps the whole
trace lock-step across however many lanes remain), so wave-by-wave
dispatch trades its lane amortisation for early stopping.

Results land in ``BENCH_adaptive.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.pta.adaptive import ConvergencePolicy
from repro.pta.evt import pwcet_estimate
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.sim.plancache import PlanCache
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: The fixed-R protocol under comparison (the paper's analysis count).
RUNS = 1000

#: The PR's acceptance floor: runs-to-convergence at least 2x fewer.
MIN_RUN_SAVING = 2.0

#: Scalar-engine wall-clock floor (runs are the cost, so saved runs
#: must show up as saved seconds; below 2x leaves slack for the
#: estimator's own per-wave work).
MIN_WALL_SPEEDUP = 1.5

#: "Equal precision": the converged estimate must sit within this
#: relative distance of the full fixed-R estimate.
MAX_PRECISION_GAP = 0.05

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"


def _policy(scale) -> ConvergencePolicy:
    """The measured convergence policy, pinned at the bench's scale.

    A wave of 25 spends a couple of extra blocks per stability check;
    the tighter granularity waves of ``block_size`` would give is not
    worth the extra quantile churn they admit (small waves see the
    estimate wander and stop early, far from the fixed-R figure).
    """
    block = scale.block_size
    return ConvergencePolicy(
        min_runs=max(100, 2 * block),
        max_runs=RUNS,
        wave_size=max(25, block),
        block_size=block,
        rtol=0.01,
        stable_waves=2,
    )


def _timed(trace, config, scenario, engine, plan_cache=None, adaptive=None):
    return collect_execution_times(
        trace, config, scenario, runs=RUNS, master_seed=CAMPAIGN_SEED,
        engine=engine, plan_cache=plan_cache, adaptive=adaptive,
    )


def test_adaptive_campaign_efficiency(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)
    policy = _policy(scale)

    fixed = _timed(trace, config, scenario, "scalar")
    adaptive = _timed(trace, config, scenario, "scalar", adaptive=policy)

    # The headline contract, asserted unconditionally: the adaptive
    # campaign executed exactly the first runs_executed runs of the
    # fixed campaign — same seeds, same times.
    assert adaptive.execution_times == \
        fixed.execution_times[:adaptive.runs_executed], (
            "adaptive sample diverged from the fixed campaign's prefix"
        )
    assert adaptive.converged, (
        f"campaign did not converge within {RUNS} runs "
        f"(quantile still moving {adaptive.pwcet_rtol_achieved})"
    )

    run_saving = RUNS / adaptive.runs_executed
    wall_speedup = (
        fixed.wall_time_s / adaptive.wall_time_s
        if adaptive.wall_time_s > 0 else 0.0
    )
    pwcet_fixed = pwcet_estimate(
        fixed.execution_times, policy.exceedance, policy.block_size
    )
    pwcet_adaptive = pwcet_estimate(
        adaptive.execution_times, policy.exceedance, policy.block_size
    )
    precision_gap = abs(pwcet_adaptive - pwcet_fixed) / pwcet_fixed

    # The kernel engine pays per wave, not per run: record the same
    # comparison there as a tradeoff figure (no floor).
    plan_cache = PlanCache()
    kernel_fixed = _timed(trace, config, scenario, "kernel", plan_cache)
    kernel_adaptive = _timed(
        trace, config, scenario, "kernel", plan_cache, adaptive=policy
    )
    assert kernel_adaptive.execution_times == adaptive.execution_times
    assert kernel_adaptive.runs_executed == adaptive.runs_executed

    payload = {
        "bench": "adaptive_campaign_efficiency",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "python": platform.python_version(),
        "policy": policy.to_dict(),
        "fixed": {
            "runs": RUNS,
            "wall_s": round(fixed.wall_time_s, 4),
            "pwcet": pwcet_fixed,
        },
        "adaptive": {
            "runs_executed": adaptive.runs_executed,
            "runs_saved": adaptive.runs_saved,
            "wall_s": round(adaptive.wall_time_s, 4),
            "pwcet": pwcet_adaptive,
            "rtol_requested": adaptive.pwcet_rtol_requested,
            "rtol_achieved": adaptive.pwcet_rtol_achieved,
        },
        "kernel_tradeoff": {
            "fixed_wall_s": round(kernel_fixed.wall_time_s, 4),
            "adaptive_wall_s": round(kernel_adaptive.wall_time_s, 4),
            "note": (
                "kernel dispatch cost is per wave (lock-step trace "
                "sweep), so wave-by-wave stopping trades lane "
                "amortisation for saved runs"
            ),
        },
        "run_saving": round(run_saving, 2),
        "wall_speedup_scalar": round(wall_speedup, 2),
        "precision_gap": round(precision_gap, 4),
        "floors": {
            "min_run_saving": MIN_RUN_SAVING,
            "min_wall_speedup": MIN_WALL_SPEEDUP,
            "max_precision_gap": MAX_PRECISION_GAP,
        },
        "bit_identical_prefix": True,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"adaptive campaign efficiency ({scale.name} scale, EFL500):")
    print(f"  fixed   : {RUNS} runs in {fixed.wall_time_s:.2f}s "
          f"(pWCET {pwcet_fixed:.0f})")
    print(f"  adaptive: {adaptive.runs_executed} runs in "
          f"{adaptive.wall_time_s:.2f}s (pWCET {pwcet_adaptive:.0f}, "
          f"{adaptive.runs_saved} runs saved)")
    print(f"  saving: {run_saving:.1f}x runs, {wall_speedup:.1f}x wall "
          f"(scalar); precision gap {precision_gap:.1%}")
    print(f"  kernel tradeoff: fixed {kernel_fixed.wall_time_s:.2f}s vs "
          f"adaptive {kernel_adaptive.wall_time_s:.2f}s")

    assert run_saving >= MIN_RUN_SAVING, (
        f"adaptive campaign executed {adaptive.runs_executed} of {RUNS} "
        f"runs — only a {run_saving:.2f}x saving (floor: {MIN_RUN_SAVING}x)"
    )
    assert precision_gap <= MAX_PRECISION_GAP, (
        f"converged pWCET sits {precision_gap:.1%} from the fixed-R "
        f"estimate (ceiling: {MAX_PRECISION_GAP:.0%})"
    )
    assert wall_speedup >= MIN_WALL_SPEEDUP, (
        f"saved runs did not convert to wall-clock: {wall_speedup:.2f}x "
        f"(floor: {MIN_WALL_SPEEDUP}x)"
    )
