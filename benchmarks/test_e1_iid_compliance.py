"""E1 — MBPTA compliance (§4.2, first result).

Paper claim: execution times of the EEMBC benchmarks on the EFL
platform satisfy the i.i.d. hypotheses — every Wald-Wolfowitz
statistic stays below 1.96 and every Kolmogorov-Smirnov outcome above
0.05 at the 5% significance level, so MBPTA applies.
"""

from __future__ import annotations

from repro.analysis.experiments import run_iid_compliance
from repro.analysis.reporting import render_iid
from repro.pta.iid import WW_CRITICAL_5PCT


def test_e1_iid_compliance(benchmark, pwcet_table):
    result = benchmark.pedantic(
        lambda: run_iid_compliance(pwcet_table), rounds=1, iterations=1
    )
    print()
    print(render_iid(result))

    for row in result.rows:
        assert abs(row.ww_statistic) < WW_CRITICAL_5PCT, (
            f"{row.bench_id}: WW statistic {row.ww_statistic:.2f} rejects "
            f"independence"
        )
        assert row.ks_p_value > 0.05, (
            f"{row.bench_id}: KS p-value {row.ks_p_value:.3f} rejects "
            f"identical distribution"
        )
    assert result.all_passed
