"""E1 — MBPTA compliance (§4.2, first result).

Paper claim: execution times of the EEMBC benchmarks on the EFL
platform satisfy the i.i.d. hypotheses — every Wald-Wolfowitz
statistic stays below 1.96 and every Kolmogorov-Smirnov outcome above
0.05 at the 5% significance level, so MBPTA applies.

Assertion policy (the statistical-flakiness fix): each WW/KS check has
a 5% per-test false-alarm rate by construction, so asserting the
paper's thresholds verbatim over a 10-benchmark table at reduced run
counts fails by chance rather than by defect.  The harness therefore

* **skips** below ``MBPTA_MIN_IID_RUNS`` runs per campaign (tiny smoke
  scales), where the verdicts carry no information;
* asserts **Bonferroni-corrected** thresholds (family-wise alpha 0.05
  across the whole table) at intermediate scales — strictly weaker per
  test, deterministic for a fixed seed, never stronger than the paper;
* asserts the paper's **plain per-test thresholds and the full
  all-passed verdict** only at ``FULL_CAMPAIGN_RUNS`` runs and above,
  the regime E1's table was produced in (1000 runs per campaign).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_iid_compliance
from repro.analysis.reporting import render_iid
from repro.pta.iid import (
    FULL_CAMPAIGN_RUNS,
    MBPTA_MIN_IID_RUNS,
    iid_assert_thresholds,
)


def test_e1_iid_compliance(benchmark, pwcet_table):
    runs = pwcet_table.scale.analysis_runs
    if runs < MBPTA_MIN_IID_RUNS:
        pytest.skip(
            f"{runs} runs/campaign is below the documented minimum of "
            f"{MBPTA_MIN_IID_RUNS} for meaningful i.i.d. verdicts; "
            f"rerun with REPRO_SCALE=quick or larger"
        )
    result = benchmark.pedantic(
        lambda: run_iid_compliance(pwcet_table), rounds=1, iterations=1
    )
    print()
    print(render_iid(result))

    # Two tests (WW + KS) per benchmark row form the assertion family.
    ww_critical, ks_alpha = iid_assert_thresholds(
        runs, comparisons=2 * len(result.rows)
    )
    for row in result.rows:
        assert abs(row.ww_statistic) < ww_critical, (
            f"{row.bench_id}: WW statistic {row.ww_statistic:.2f} rejects "
            f"independence even at the Bonferroni-corrected critical value "
            f"{ww_critical:.2f}"
        )
        assert row.ks_p_value > ks_alpha, (
            f"{row.bench_id}: KS p-value {row.ks_p_value:.4f} rejects "
            f"identical distribution even at alpha = {ks_alpha:.4f}"
        )
    if runs >= FULL_CAMPAIGN_RUNS:
        # The paper's headline verdict, asserted only in the regime the
        # paper measured it in.
        assert result.all_passed
