"""E3 — Figure 4, guaranteed performance (wgIPC).

Paper claim: picking, per random 4-benchmark workload, the best CP way
partition versus the best (shared) EFL MID by workload guaranteed IPC
at cutoff 1e-15, EFL improves CP in 1,015/1,024 workloads with a 56%
average improvement.

Reproduction status: the *apparatus* (partition search over {1,2,4}^4
within 8 ways, MID search over {250,500,1000}, wgIPC at 1e-15) is
complete; at scaled trace lengths the guaranteed-performance sign is
NOT reproduced (CP's 4-way partitions win more workloads than EFL),
because analysis-time CRG interference at maximum rate costs more than
partition capacity over short, cold-start-dominated traces — see
EXPERIMENTS.md.  The bench therefore records the full S-curve and
asserts only the apparatus-level invariants.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig4
from repro.analysis.reporting import render_fig4


def test_e3_fig4_wgipc(benchmark, pwcet_table):
    fig4 = benchmark.pedantic(
        lambda: run_fig4(pwcet_table, measure_average=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig4(fig4))

    summary = fig4.wgipc_summary
    assert summary["workloads"] == pwcet_table.scale.workload_count
    # Both optimisers produced valid setups for every workload.
    for comparison in fig4.comparisons:
        assert sum(comparison.cp_partition) <= pwcet_table.config.llc_ways
        assert comparison.efl_mid in pwcet_table.scale.mid_options
        assert comparison.cp_wgipc > 0
        assert comparison.efl_wgipc > 0
    # The S-curve is sorted and consistent with the summary.
    curve = fig4.wgipc_curve()
    assert curve == sorted(curve, reverse=True)
    assert summary["max_improvement"] == curve[0]
