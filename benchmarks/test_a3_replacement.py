"""A3 — Ablation: Evict-on-Miss random versus LRU replacement (§3.2/§3.3).

EFL's analysis argument leans on EoM's statelessness: hits change
nothing, so co-runners interfere *only* through eviction frequency.
With LRU in the LLC, hits mutate the recency state, execution time
depends on deterministic alignment of the access stream with the
replacement state, and the run-to-run distribution collapses to the
placement randomness alone.

This ablation swaps the LLC replacement policy and compares the
execution-time dispersion and the EFL pWCET tightness under both.
"""

from __future__ import annotations

import numpy as np

from repro.pta.mbpta import estimate_pwcet
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.workloads.suite import build_benchmark


def test_a3_replacement_policy(benchmark, pwcet_table):
    scale = pwcet_table.scale
    trace = build_benchmark("CN", scale=scale.trace_scale)
    scenario = Scenario.efl(scale.mid_options[0])
    config_eom = pwcet_table.config
    config_lru = scale.system_config(replacement="lru")
    runs = max(scale.analysis_runs // 2, 4 * scale.block_size)

    def run_both():
        eom = collect_execution_times(trace, config_eom, scenario,
                                      runs=runs, master_seed=0xA3)
        lru = collect_execution_times(trace, config_lru, scenario,
                                      runs=runs, master_seed=0xA3)
        return eom, lru

    eom, lru = benchmark.pedantic(run_both, rounds=1, iterations=1)
    eom_est = estimate_pwcet(eom.execution_times, task="CN",
                             scenario_label="EoM",
                             block_size=scale.block_size, check_iid=False)
    lru_est = estimate_pwcet(lru.execution_times, task="CN",
                             scenario_label="LRU",
                             block_size=scale.block_size, check_iid=False)
    print(
        f"\nA3 LLC replacement on CN under EFL: "
        f"EoM mean={eom_est.mean_time:.0f} pWCET(1e-15)={eom_est.pwcet_at(1e-15):.0f} | "
        f"LRU mean={lru_est.mean_time:.0f} pWCET(1e-15)={lru_est.pwcet_at(1e-15):.0f}"
    )
    # Both produce measurable samples; EoM is the MBPTA-compliant
    # configuration the paper requires.
    assert np.std(eom.execution_times) > 0
    assert eom_est.pwcet_at(1e-15) >= eom_est.max_time
    assert lru_est.pwcet_at(1e-15) >= lru_est.max_time
