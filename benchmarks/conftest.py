"""Shared state for the benchmark harness.

Every experiment bench draws its pWCET estimates from one shared
:class:`~repro.analysis.experiments.PWCETTable`, exactly as the paper
derives Figure 4 from Figure 3's analysis products.  The table is
built lazily at the scale selected by ``REPRO_SCALE`` (default:
``quick``; set ``REPRO_SCALE=default`` for the recorded campaign or
``REPRO_SCALE=paper`` for the full-size one).

Benches print the regenerated tables/curves so that
``pytest benchmarks/ --benchmark-only -s | tee bench_output.txt``
captures the paper-shaped artefacts alongside the timing numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import PWCETTable
from repro.workloads.scale import ExperimentScale

#: Master seed of the recorded campaign.
CAMPAIGN_SEED = 20140601  # DAC 2014, June 1st


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The campaign scale (REPRO_SCALE env var, default 'quick')."""
    return ExperimentScale.from_env(fallback="quick")


@pytest.fixture(scope="session")
def pwcet_table(scale) -> PWCETTable:
    """The shared (benchmark, setup) -> pWCET estimate table."""
    return PWCETTable(scale=scale, seed=CAMPAIGN_SEED)
