"""E2 — Figure 3: pWCET of every setup normalised to CP2.

Paper claims this bench checks (shape, not absolute values):

* EFL outperforms CP2 across benchmarks, especially at low MID —
  checked as: the EFL250 geometric mean is below the CP2 baseline and
  below the higher-MID EFL setups;
* CP1 is worse than CP2 on average (benchmarks want at least 2 ways);
* MA (input set larger than the LLC) is insensitive to the CP way
  count and is hurt by large MIDs (low MID mitigates).

Divergences from the paper at scaled workloads are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig3
from repro.analysis.reporting import render_fig3


def test_e2_fig3_pwcet(benchmark, pwcet_table):
    fig3 = benchmark.pedantic(
        lambda: run_fig3(pwcet_table), rounds=1, iterations=1
    )
    print()
    print(render_fig3(fig3))

    efl_by_mid = [
        fig3.geometric_mean_normalised(f"EFL{mid}")
        for mid in pwcet_table.scale.mid_options
    ]
    # Low MID values give the tightest estimates (paper: "especially
    # for low MID values").
    assert efl_by_mid[0] < efl_by_mid[-1]
    # MA gains nothing from bigger partitions (it misses regardless)...
    ma = fig3.normalised["MA"]
    assert abs(ma["CP4"] - 1.0) < 0.2
    assert abs(ma["CP1"] - 1.0) < 0.2
    # ...and is hurt by high MIDs (eviction delays on every access).
    mids = pwcet_table.scale.mid_options
    assert ma[f"EFL{mids[-1]}"] > ma[f"EFL{mids[0]}"]

    # The tail-sensitive directional claims need the statistical power
    # of the quick scale or above (>= 80 runs per estimate); the tiny
    # smoke scale only checks the apparatus.
    if pwcet_table.scale.analysis_runs >= 80:
        # EFL at the lowest MID reaches at least parity with the CP2
        # baseline — while imposing no partitioning constraints (the
        # paper's qualitative claim; tail-estimate noise at scaled run
        # counts is ~±10%, see EXPERIMENTS.md).
        assert efl_by_mid[0] < 1.08, (
            f"EFL{pwcet_table.scale.mid_options[0]} geomean "
            f"{efl_by_mid[0]:.3f} clearly loses to CP2"
        )
        # CP1 is worse than the CP2 baseline on average.
        assert fig3.geometric_mean_normalised("CP1") > 1.0
