"""E4 — Figure 4, average performance (waIPC).

Paper claim: co-running each workload under its chosen setups, EFL
improves CP's average IPC in 910/1,024 workloads (~89%), by 16% on
average (>37% for the top quartile, >9% median, max 64%).

This is the claim our scaled reproduction matches best: the deployment
co-run S-curve shows EFL winning the large majority of workloads with
a double-digit average improvement (numbers recorded per scale in
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig4
from repro.analysis.reporting import render_fig4


def test_e4_fig4_waipc(benchmark, pwcet_table):
    fig4 = benchmark.pedantic(
        lambda: run_fig4(pwcet_table, measure_average=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig4(fig4))

    summary = fig4.waipc_summary
    assert summary is not None
    # The paper's headline directionality: EFL wins the majority of
    # workloads on average performance, with a positive mean gain.
    # (Only asserted with enough workloads for the majority to be
    # statistically meaningful; the tiny smoke scale has 8.)
    if pwcet_table.scale.workload_count >= 16:
        assert summary["win_fraction"] > 0.5, (
            f"EFL won only {summary['win_fraction']:.0%} of workloads on waIPC"
        )
        assert summary["mean_improvement"] > 0.0
    # Every co-run produced a sane IPC for both mechanisms.
    for comparison in fig4.comparisons:
        assert comparison.cp_waipc is not None and comparison.cp_waipc > 0
        assert comparison.efl_waipc is not None and comparison.efl_waipc > 0
