"""Campaign throughput: serial vs process-pool backend (runs/sec).

Tracks the perf trajectory of the execution-backend layer from the PR
that introduced it onward: one E2-scale analysis campaign (the ID
benchmark under EFL500 at the selected ``REPRO_SCALE``) is executed
through :class:`SerialBackend` and through a 4-worker
:class:`ProcessPoolBackend`, and both throughputs land in
``BENCH_campaign.json`` at the repository root.

The samples must be bit-identical (the determinism guarantee); the
speedup assertion only applies where the hardware can physically
deliver it (≥ 4 usable CPUs — CI runners; a 1-core container still
produces the JSON, with the speedup recorded as measured).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.sim.backend import ProcessPoolBackend, SerialBackend, usable_cpus
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: Worker count of the parallel measurement (the acceptance setup).
WORKERS = 4

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def test_campaign_throughput(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)
    runs = scale.analysis_runs

    serial = collect_execution_times(
        trace, config, scenario, runs=runs, master_seed=CAMPAIGN_SEED,
        backend=SerialBackend(),
    )
    parallel = collect_execution_times(
        trace, config, scenario, runs=runs, master_seed=CAMPAIGN_SEED,
        backend=ProcessPoolBackend(workers=WORKERS, force_pool=True),
    )

    # Determinism guarantee: the backend must be invisible in the data.
    assert parallel.execution_times == serial.execution_times
    assert parallel.seeds == serial.seeds

    speedup = (
        parallel.runs_per_second / serial.runs_per_second
        if serial.runs_per_second > 0 else 0.0
    )
    payload = {
        "bench": "campaign_throughput",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "runs": runs,
        "usable_cpus": usable_cpus(),
        "python": platform.python_version(),
        "serial": {
            "wall_s": round(serial.wall_time_s, 4),
            "runs_per_s": round(serial.runs_per_second, 2),
        },
        f"process{WORKERS}": {
            "wall_s": round(parallel.wall_time_s, 4),
            "runs_per_s": round(parallel.runs_per_second, 2),
        },
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"campaign throughput ({scale.name} scale, {runs} runs):")
    print(f"  serial            {serial.runs_per_second:8.2f} runs/s")
    print(f"  process[{WORKERS}]        {parallel.runs_per_second:8.2f} runs/s")
    print(f"  speedup           {speedup:8.2f}x  ({usable_cpus()} usable CPUs)")
    print(f"  wrote {OUTPUT.name}")

    if usable_cpus() >= WORKERS:
        assert speedup >= 2.0, (
            f"{WORKERS}-worker campaign only reached {speedup:.2f}x over "
            f"serial on {usable_cpus()} CPUs; expected >= 2x"
        )
