"""A1 — Ablation: randomised versus deterministic MID (§3.4 Interleave).

The paper argues MID must be a *random* value in ``[0, 2*MID]`` rather
than the fixed value MID: fixed inter-eviction intervals could align
systematically with the analysed task's accesses, producing execution
times whose structure MBPTA cannot capture; randomised intervals make
the interleaving a random event that end-to-end measurements absorb.

This ablation runs the same benchmark with randomisation on and off
and compares (a) the i.i.d. verdicts and (b) the dispersion of the
collected execution times.  The deterministic variant concentrates the
interference into a rigid pattern — visibly lower run-to-run
dispersion relative to its mean shift — while the randomised variant
spreads it smoothly.
"""

from __future__ import annotations

import numpy as np

from repro.pta.iid import iid_test
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.workloads.suite import build_benchmark


def _collect(pwcet_table, randomise: bool):
    scale = pwcet_table.scale
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(scale.mid_options[1], randomise_mid=randomise)
    return collect_execution_times(
        trace,
        pwcet_table.config,
        scenario,
        runs=scale.analysis_runs,
        master_seed=0xA1,
    )


def test_a1_mid_randomisation(benchmark, pwcet_table):
    randomised, fixed = benchmark.pedantic(
        lambda: (_collect(pwcet_table, True), _collect(pwcet_table, False)),
        rounds=1,
        iterations=1,
    )
    rnd = np.asarray(randomised.execution_times, dtype=float)
    fix = np.asarray(fixed.execution_times, dtype=float)
    rnd_verdict = iid_test(rnd)
    fix_verdict = iid_test(fix)
    print(
        f"\nA1 MID randomisation on ID: "
        f"randomised mean={rnd.mean():.0f} std={rnd.std():.0f} "
        f"iid={'pass' if rnd_verdict.passed else 'FAIL'} | "
        f"deterministic mean={fix.mean():.0f} std={fix.std():.0f} "
        f"iid={'pass' if fix_verdict.passed else 'FAIL'}"
    )
    # The paper-configured (randomised) variant must be MBPTA-friendly.
    assert rnd_verdict.passed
    # Both variants produce valid samples; the randomised one shows
    # genuine run-to-run dispersion for EVT to work with.
    assert rnd.std() > 0
