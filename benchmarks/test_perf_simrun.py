"""Single-run hot-path throughput: optimised vs reference (insns/sec).

The per-run datapoint next to ``BENCH_campaign.json``'s per-campaign
one: a single E2-style analysis run (the ID benchmark under EFL500) is
executed through the optimised hot path and through the preserved
pre-optimisation reference path
(:func:`repro.sim.reference.reference_hot_path`), and both
instructions-per-second figures land in ``BENCH_simrun.json`` at the
repository root.

Two guarantees are asserted:

* **bit-identity** — both paths must produce the same execution time
  (cycles); the optimisations are required to be invisible in the data;
* **speedup** — the optimised path must deliver at least 1.5× the
  reference's single-run instructions/second.  Unlike the campaign
  bench this needs no minimum CPU count: single-run speed is a
  single-core property.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.sim.backend import usable_cpus
from repro.sim.config import Scenario
from repro.sim.reference import reference_hot_path
from repro.sim.simulator import RunRequest, execute_request
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simrun.json"

#: Timing repetitions per path; the best (least-disturbed) rep counts.
REPS = 5

#: Required optimised-over-reference ratio (the PR's acceptance bar).
MIN_SPEEDUP = 1.5


def _best_ips(request, instructions: int) -> float:
    best = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        execute_request(request)
        best = min(best, time.perf_counter() - started)
    return instructions / best


def test_simrun_throughput(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    request = RunRequest.isolation(
        trace, config, Scenario.efl(500), CAMPAIGN_SEED
    )

    optimised_run = execute_request(request)
    with reference_hot_path():
        reference_run = execute_request(request)

    # Bit-identity: the optimisations must be invisible in the data.
    assert optimised_run.cores[0].cycles == reference_run.cores[0].cycles
    assert optimised_run.cores[0].instructions == reference_run.cores[0].instructions

    instructions = optimised_run.cores[0].instructions
    optimised_ips = _best_ips(request, instructions)
    with reference_hot_path():
        reference_ips = _best_ips(request, instructions)
    speedup = optimised_ips / reference_ips if reference_ips > 0 else 0.0

    payload = {
        "bench": "simrun_throughput",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "instructions": instructions,
        "cycles": optimised_run.cores[0].cycles,
        "reps": REPS,
        "usable_cpus": usable_cpus(),
        "python": platform.python_version(),
        "optimised": {"insns_per_s": round(optimised_ips, 1)},
        "reference": {"insns_per_s": round(reference_ips, 1)},
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"single-run throughput ({scale.name} scale, {instructions} insns):")
    print(f"  optimised  {optimised_ips:12,.0f} insns/s")
    print(f"  reference  {reference_ips:12,.0f} insns/s")
    print(f"  speedup    {speedup:12.2f}x")
    print(f"  wrote {OUTPUT.name}")

    assert speedup >= MIN_SPEEDUP, (
        f"optimised hot path reached only {speedup:.2f}x over the reference "
        f"path; the PR requires >= {MIN_SPEEDUP}x"
    )
