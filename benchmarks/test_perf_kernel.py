"""Kernel-engine throughput: grouped-opcode plans vs per-instruction batch.

Measures the tentpole claim of the kernel compiler PR: one
analysis-mode campaign of R=1000 runs executed through the compiled
grouped-opcode :class:`~repro.sim.kernels.KernelPlan` sustains at
least 2x the per-instruction batch engine's runs/sec on a single
core.  Both engines are measured back-to-back in this process — each
timed as the best of several repeats so a stray scheduler hiccup
cannot sink (or inflate) the recorded ratio — and the two samples
must be bit-identical in full, not just as a prefix: the kernel is a
compile of the *same* campaign, so every seed, every execution time
and both backends' record streams agree exactly.

Results land in ``BENCH_kernel.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.sim.kernels import numba_available
from repro.sim.plancache import PlanCache
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: Lane width of the measured campaign (the paper's analysis-run count).
RUNS = 1000

#: Timed repeats per engine; the recorded figure is each engine's best.
REPEATS = 3

#: The PR's acceptance floor for kernel-over-batch throughput.
MIN_SPEEDUP = 2.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _best_of(trace, config, scenario, engine, plan_cache):
    """Best (fastest) campaign of ``REPEATS`` runs of one engine.

    Sharing one plan cache across repeats (and engines) keeps the
    measurement about execution, not compilation: after the first
    repeat every campaign is a pure plan-cache hit, exactly the regime
    a Figure-3/4 sweep runs in.
    """
    best = None
    for _ in range(REPEATS):
        result = collect_execution_times(
            trace, config, scenario, runs=RUNS, master_seed=CAMPAIGN_SEED,
            engine=engine, plan_cache=plan_cache,
        )
        if best is None or result.wall_time_s < best.wall_time_s:
            best = result
    return best


def test_kernel_engine_throughput(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)
    plan_cache = PlanCache()

    batch = _best_of(trace, config, scenario, "batch", plan_cache)
    kernel = _best_of(trace, config, scenario, "kernel", plan_cache)

    # Bit-identity is asserted unconditionally: the kernel plan is a
    # compiled form of the same campaign, so the full sample — seeds
    # and execution times alike — must match the batch engine's
    # exactly, and through it the scalar oracle's.
    bit_identical = (
        kernel.seeds == batch.seeds
        and kernel.execution_times == batch.execution_times
    )
    assert bit_identical, "kernel sample diverged from the batch sample"
    assert kernel.backend == "kernel"
    assert batch.backend == "batch"

    speedup = (
        kernel.runs_per_second / batch.runs_per_second
        if batch.runs_per_second > 0 else 0.0
    )
    payload = {
        "bench": "kernel_engine_throughput",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "instructions": kernel.instructions,
        "python": platform.python_version(),
        "numba": numba_available(),
        "repeats": REPEATS,
        "batch": {
            "runs": RUNS,
            "wall_s": round(batch.wall_time_s, 4),
            "runs_per_s": round(batch.runs_per_second, 2),
        },
        "kernel": {
            "runs": RUNS,
            "wall_s": round(kernel.wall_time_s, 4),
            "runs_per_s": round(kernel.runs_per_second, 2),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": bit_identical,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"kernel engine throughput ({scale.name} scale, "
          f"{kernel.instructions} instructions/run):")
    print(f"  batch : {batch.runs_per_second:8.1f} runs/s "
          f"({RUNS} runs in {batch.wall_time_s:.2f}s)")
    print(f"  kernel: {kernel.runs_per_second:8.1f} runs/s "
          f"({RUNS} runs in {kernel.wall_time_s:.2f}s)")
    print(f"  speedup: {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"kernel engine delivered only {speedup:.2f}x over the batch "
        f"engine at R={RUNS} (floor: {MIN_SPEEDUP}x)"
    )
