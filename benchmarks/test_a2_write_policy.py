"""A2 — Ablation: write-back versus write-through DL1 (footnote 5).

The paper's platform uses write-back caches and footnote 5 explains
why: "If a write-through DL1 cache were used, LLC accesses would be
much more frequent due to store instructions" — so either stores must
not allocate in the LLC, or EFL stalls become frequent and hurt both
WCET estimates and average performance.

This ablation runs a word-granular store-intensive kernel both ways
(our write-through model implements the footnote's no-allocate choice)
and confirms the LLC sees far more traffic under write-through: the
write-back DL1 absorbs the word-level store locality (several stores
per line cost one line fill), while write-through forwards every
single store to the LLC.
"""

from __future__ import annotations

from repro.cpu.trace import Trace, TraceBuilder
from repro.sim.config import Scenario
from repro.sim.simulator import run_isolation
from repro.workloads.kernels import stream_pass


def _store_heavy_trace(l1_size: int) -> Trace:
    """Repeated word-granular read-modify-write sweeps over 2x the L1."""
    builder = TraceBuilder("store-heavy", code_base=0x1000)
    words = l1_size // 2  # 2x the L1 in bytes (4-byte words)
    for _sweep in range(6):
        stream_pass(builder, base=0x10_0000, num_words=words,
                    alus_per_access=1, store_every=1)
    return builder.build()


def test_a2_write_policy(benchmark, pwcet_table):
    scale = pwcet_table.scale
    trace = _store_heavy_trace(scale.l1_size)
    scenario = Scenario.efl(scale.mid_options[0])
    config_wb = pwcet_table.config
    config_wt = scale.system_config(dl1_write_back=False)

    def run_both():
        wb = run_isolation(trace, config_wb, scenario, seed=0xA2)
        wt = run_isolation(trace, config_wt, scenario, seed=0xA2)
        return wb, wt

    wb, wt = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wb_traffic = wb.llc_hits + wb.llc_misses
    wt_traffic = wt.llc_hits + wt.llc_misses
    print(
        f"\nA2 write policy (word-granular stores): write-back LLC "
        f"traffic={wb_traffic} cycles={wb.cores[0].cycles} | "
        f"write-through LLC traffic={wt_traffic} "
        f"cycles={wt.cores[0].cycles}"
    )
    # Write-through floods the LLC with store traffic...
    assert wt_traffic > wb_traffic * 1.5
    # ...and costs execution time on a store-heavy kernel.
    assert wt.cores[0].cycles > wb.cores[0].cycles
