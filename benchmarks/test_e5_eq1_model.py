"""E5 — Equation 1: the analytical TR-cache miss-probability model.

The paper presents Equation 1 as an approximation of the miss
probability in a random-placement/random-replacement cache, exact in
the fully-associative and direct-mapped corners and loose in between
("this is irrelevant for MBPTA, since what really matters is that each
access has a probability of hit/miss rather than the particular
value").

This bench quantifies that: it simulates Equation 1's canonical
scenario (empty cache; access A; k distinct lines; access A again) on
the real cache model and compares three predictions — the published
Equation 1, the exact independent-collision model, and (for sweeps)
the Poisson steady-state model.
"""

from __future__ import annotations

import pytest

from repro.mem.cache import Cache, CacheGeometry
from repro.mem.placement import RandomPlacement
from repro.mem.replacement import EvictOnMissRandom
from repro.pta.eq1 import (
    expected_miss_ratio,
    miss_probability,
    miss_probability_exact,
)
from repro.utils.rng import MultiplyWithCarry

SETS, WAYS = 64, 4
TRIALS = 2000


def _measure_single_reuse(k: int) -> float:
    misses = 0
    for seed in range(TRIALS):
        geometry = CacheGeometry(size_bytes=SETS * WAYS * 16, line_size=16,
                                 ways=WAYS)
        cache = Cache(
            geometry,
            RandomPlacement(SETS, rii=seed + 1),
            EvictOnMissRandom(MultiplyWithCarry(seed)),
        )
        cache.access(0)
        for line in range(1, k + 1):
            cache.access(line)
        if not cache.access(0).hit:
            misses += 1
    return misses / TRIALS


@pytest.mark.parametrize("k", [16, 64, 256])
def test_e5_eq1_vs_simulation(benchmark, k):
    measured = benchmark.pedantic(
        lambda: _measure_single_reuse(k), rounds=1, iterations=1
    )
    paper = miss_probability(SETS, WAYS, [1.0] * k)
    exact = miss_probability_exact(SETS, WAYS, [1.0] * k)
    print(
        f"\nE5 reuse-distance k={k}: simulated={measured:.4f} "
        f"exact-model={exact:.4f} paper-Eq1={paper:.4f}"
    )
    # The exact model tracks the simulator...
    assert measured == pytest.approx(exact, abs=0.035)
    # ...and the published Equation 1 upper-bounds both (it
    # double-counts evictions across sets).
    assert paper >= exact - 1e-12


def test_e5_steady_state_sweeps(benchmark):
    working_set, sweeps = 96, 30

    def measure():
        ratios = []
        for seed in range(40):
            geometry = CacheGeometry(size_bytes=SETS * WAYS * 16, line_size=16,
                                     ways=WAYS)
            cache = Cache(
                geometry,
                RandomPlacement(SETS, rii=seed * 17 + 3),
                EvictOnMissRandom(MultiplyWithCarry(seed)),
            )
            for _sweep in range(sweeps):
                for line in range(working_set):
                    cache.access(line)
            ratios.append(cache.stats.miss_ratio)
        return sum(ratios) / len(ratios)

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    predicted = expected_miss_ratio(SETS, WAYS, working_set, sweeps)
    print(
        f"\nE5 sweeps ws={working_set}: simulated={measured:.4f} "
        f"poisson-model={predicted:.4f}"
    )
    assert measured == pytest.approx(predicted, abs=0.08)
