"""Sharded-engine throughput: multi-core lane shards vs one batch sweep.

Measures the tentpole claim of the sharded batch engine PR: a large
analysis campaign partitioned over worker-process shards sustains at
least 2x the single-process batch engine's runs/sec on a host with
four or more usable CPUs.  Both engines are measured back-to-back in
this process (self-relative, immune to host drift between bench
invocations), and the sharded sample must equal the single-process
sample bit for bit — the speedup is only worth recording if the data
is provably the same.

On hosts with fewer than four usable CPUs the bit-identity half still
runs and is still asserted; only the speedup floor is waived (and
recorded as ungated in the JSON), because a shard per busy CPU cannot
scale.

Results land in ``BENCH_shard.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.sim.backend import usable_cpus
from repro.sim.batch import ShardedBatchBackend
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: Lane count of the measured campaign: big enough that shard sweeps
#: dominate pool spin-up.
SHARD_RUNS = 2048

#: Worker shards of the measured configuration.
WORKERS = 4

#: The PR's acceptance floor, gated on >= 4 usable CPUs.
MIN_SPEEDUP = 2.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def test_sharded_engine_throughput(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)
    cpus = usable_cpus()
    gated = cpus >= WORKERS

    single = collect_execution_times(
        trace, config, scenario, runs=SHARD_RUNS, master_seed=CAMPAIGN_SEED,
        engine="batch",
    )
    sharded = collect_execution_times(
        trace, config, scenario, runs=SHARD_RUNS, master_seed=CAMPAIGN_SEED,
        backend=ShardedBatchBackend(
            workers=WORKERS, force_pool=True, strict=True
        ),
    )

    # Bit-identity is non-negotiable regardless of host size.
    bit_identical = (
        sharded.seeds == single.seeds
        and sharded.execution_times == single.execution_times
    )
    assert bit_identical
    assert sharded.backend == f"sharded[{WORKERS}]"

    speedup = (
        sharded.runs_per_second / single.runs_per_second
        if single.runs_per_second > 0 else 0.0
    )
    payload = {
        "bench": "sharded_engine_throughput",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "instructions": sharded.instructions,
        "python": platform.python_version(),
        "usable_cpus": cpus,
        "single": {
            "runs": SHARD_RUNS,
            "wall_s": round(single.wall_time_s, 4),
            "runs_per_s": round(single.runs_per_second, 2),
        },
        "sharded": {
            "runs": SHARD_RUNS,
            "workers": WORKERS,
            "wall_s": round(sharded.wall_time_s, 4),
            "runs_per_s": round(sharded.runs_per_second, 2),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "speedup_gated": gated,
        "bit_identical": bit_identical,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"sharded engine throughput ({scale.name} scale, {cpus} CPUs, "
          f"{sharded.instructions} instructions/run):")
    print(f"  batch  : {single.runs_per_second:8.1f} runs/s "
          f"({SHARD_RUNS} runs in {single.wall_time_s:.2f}s)")
    print(f"  sharded: {sharded.runs_per_second:8.1f} runs/s "
          f"({SHARD_RUNS} runs over {WORKERS} shards in "
          f"{sharded.wall_time_s:.2f}s)")
    print(f"  speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.0f}x, "
          f"{'gated' if gated else 'ungated: < 4 usable CPUs'})")

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded engine delivered only {speedup:.2f}x over the "
            f"single-process batch engine at R={SHARD_RUNS} with "
            f"{WORKERS} shards (floor: {MIN_SPEEDUP}x)"
        )
