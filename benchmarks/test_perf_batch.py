"""Batch-engine throughput: lock-step NumPy lanes vs the scalar engine.

Measures the tentpole claim of the batch engine PR: one analysis-mode
campaign of R=1000 runs executed as lock-step NumPy lanes sustains at
least 5x the scalar interpreter's runs/sec on a single core.  Both
engines are measured back-to-back in this process (the serial baseline
is re-measured here rather than read from another bench's JSON, so the
recorded speedup is self-relative and immune to host drift between
bench invocations), and the scalar baseline's sample must be a
bit-identical prefix of the batch sample — the speedup is only worth
recording if the data is provably the same.

Results land in ``BENCH_batch.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: Lane width of the measured campaign (the paper's analysis-run count).
BATCH_RUNS = 1000

#: Scalar-baseline run count: enough for a stable runs/sec estimate
#: without the baseline dominating the bench's wall time.
SERIAL_RUNS = 150

#: The PR's acceptance floor for single-core campaign throughput.
MIN_SPEEDUP = 5.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def test_batch_engine_throughput(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)

    serial = collect_execution_times(
        trace, config, scenario, runs=SERIAL_RUNS, master_seed=CAMPAIGN_SEED,
        engine="scalar",
    )
    batch = collect_execution_times(
        trace, config, scenario, runs=BATCH_RUNS, master_seed=CAMPAIGN_SEED,
        engine="batch",
    )

    # Determinism guarantee: seeds derive per run from the master seed,
    # so the scalar campaign is a prefix of the batch campaign — and
    # must match it bit for bit.
    assert batch.seeds[:SERIAL_RUNS] == serial.seeds
    assert batch.execution_times[:SERIAL_RUNS] == serial.execution_times
    assert batch.backend == "batch"

    speedup = (
        batch.runs_per_second / serial.runs_per_second
        if serial.runs_per_second > 0 else 0.0
    )
    payload = {
        "bench": "batch_engine_throughput",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "instructions": batch.instructions,
        "python": platform.python_version(),
        "serial": {
            "runs": SERIAL_RUNS,
            "wall_s": round(serial.wall_time_s, 4),
            "runs_per_s": round(serial.runs_per_second, 2),
        },
        "batch": {
            "runs": BATCH_RUNS,
            "wall_s": round(batch.wall_time_s, 4),
            "runs_per_s": round(batch.runs_per_second, 2),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "bit_identical_prefix": True,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"batch engine throughput ({scale.name} scale, "
          f"{batch.instructions} instructions/run):")
    print(f"  scalar: {serial.runs_per_second:8.1f} runs/s "
          f"({SERIAL_RUNS} runs in {serial.wall_time_s:.2f}s)")
    print(f"  batch : {batch.runs_per_second:8.1f} runs/s "
          f"({BATCH_RUNS} runs in {batch.wall_time_s:.2f}s)")
    print(f"  speedup: {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"batch engine delivered only {speedup:.2f}x over the scalar "
        f"interpreter at R={BATCH_RUNS} (floor: {MIN_SPEEDUP}x)"
    )
