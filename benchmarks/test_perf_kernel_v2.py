"""Kernel runtime v2: fused megakernel dispatch + speculative waves.

Measures the two throughput claims of the kernel runtime v2 PR
against the committed v1 baselines (``BENCH_kernel.json`` /
``BENCH_adaptive.json``):

* **Fixed-R dispatch.**  The fused megakernel plan (segment windows
  executed as one composed chain when every touched line is resident
  in every lane) raises kernel-over-batch throughput above the v1
  engine's committed 2.46x.  Both engines are measured back-to-back
  in this process, each as the best of several repeats; the
  *normalised* improvement — this session's speedup over the v1
  session's speedup — is the noise-robust figure, because the batch
  engine measured in the same process cancels host-speed drift that
  raw runs/s comparisons across sessions cannot.

* **Adaptive-on-kernel.**  v1 recorded a regression it could not fix
  (``kernel_tradeoff``: adaptive 2.91s vs fixed 0.80s — wave-by-wave
  dispatch forfeits lane amortisation).  The speculative
  :class:`~repro.pta.adaptive.WaveScheduler` dispatches geometrically
  growing blocks, so v2's adaptive-kernel wall-clock must come back
  under 1.5x fixed-kernel, with the overshoot reconciled in the runs
  ledger as ``runs_speculated_waste``.

Bit-identity is asserted unconditionally at every step: kernel vs
batch in full, and the adaptive executed sample as the exact prefix
of the fixed kernel sample.

Results land in ``BENCH_kernel_v2.json`` at the repository root.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.pta.adaptive import ConvergencePolicy
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.sim.kernels import numba_available
from repro.sim.plancache import PlanCache
from repro.utils.xp import array_backend_name
from repro.workloads.suite import build_benchmark

from benchmarks.conftest import CAMPAIGN_SEED

#: Lane width of the measured campaign (the paper's analysis-run count).
RUNS = 1000

#: Timed repeats per engine; the recorded figure is each engine's best.
REPEATS = 3

#: Committed v1 figures this bench improves on (BENCH_kernel.json and
#: BENCH_adaptive.json at PR 7/9; raw runs/s are host-conditions bound,
#: the speedup-vs-batch ratio is not).
V1_KERNEL_RUNS_PER_S = 1706.6
V1_SPEEDUP_VS_BATCH = 2.46
V1_ADAPTIVE_KERNEL_WALL_S = 2.9107

#: Floors.  The normalised-improvement floor is the acceptance gate:
#: v2's kernel-over-batch ratio must beat v1's committed ratio by at
#: least this factor (both ratios are same-process measurements, so
#: host drift cancels).  The batch-ratio floor guards absolute health;
#: the adaptive floors close the v1 ``kernel_tradeoff`` regression.
MIN_SPEEDUP_VS_BATCH = 2.7
MIN_IMPROVEMENT_NORMALISED = 1.1
MAX_ADAPTIVE_OVER_FIXED = 1.5
MIN_ADAPTIVE_IMPROVEMENT_VS_V1 = 3.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernel_v2.json"


def _best_of(trace, config, scenario, engine, plan_cache, adaptive=None):
    """Best (fastest) campaign of ``REPEATS`` runs of one engine.

    Sharing one plan cache across repeats (and engines) keeps the
    measurement about execution, not compilation.
    """
    best = None
    for _ in range(REPEATS):
        result = collect_execution_times(
            trace, config, scenario, runs=RUNS, master_seed=CAMPAIGN_SEED,
            engine=engine, plan_cache=plan_cache, adaptive=adaptive,
        )
        if best is None or result.wall_time_s < best.wall_time_s:
            best = result
    return best


def _policy() -> ConvergencePolicy:
    """The BENCH_adaptive policy, verbatim, for a like-for-like
    comparison with the committed ``kernel_tradeoff`` figures."""
    return ConvergencePolicy(
        min_runs=100, max_runs=RUNS, wave_size=25, rtol=0.01,
        stable_waves=2, block_size=10,
    )


def test_kernel_runtime_v2(scale):
    config = scale.system_config()
    trace = build_benchmark("ID", scale=scale.trace_scale)
    scenario = Scenario.efl(500)
    plan_cache = PlanCache()

    batch = _best_of(trace, config, scenario, "batch", plan_cache)
    kernel = _best_of(trace, config, scenario, "kernel", plan_cache)
    adaptive = _best_of(
        trace, config, scenario, "kernel", plan_cache, adaptive=_policy()
    )

    # Bit-identity, asserted unconditionally: the megakernel plan is a
    # compile of the same campaign, so the full fixed-R samples must
    # match exactly, and the adaptive executed sample must be the
    # exact prefix of the fixed kernel sample (speculation may only
    # change how runs are grouped, never what they compute).
    bit_identical = (
        kernel.seeds == batch.seeds
        and kernel.execution_times == batch.execution_times
    )
    assert bit_identical, "kernel sample diverged from the batch sample"
    executed = adaptive.runs_executed
    # ``seeds`` is always the full derived schedule (counter-based, so
    # independent of how much of it the campaign consumed).
    prefix_identical = (
        adaptive.execution_times == kernel.execution_times[:executed]
        and adaptive.seeds == kernel.seeds
    )
    assert prefix_identical, "adaptive sample is not the fixed prefix"
    assert kernel.backend == "kernel"
    assert batch.backend == "batch"

    # Speculation reconciles in the runs ledger: every requested run
    # is executed, speculated-past-stop, or saved by convergence.
    waste = adaptive.runs_speculated_waste
    assert adaptive.converged
    assert executed + adaptive.runs_saved + waste == RUNS, (
        "speculative waste does not reconcile the runs ledger"
    )

    speedup = (
        kernel.runs_per_second / batch.runs_per_second
        if batch.runs_per_second > 0 else 0.0
    )
    improvement_raw = kernel.runs_per_second / V1_KERNEL_RUNS_PER_S
    improvement_normalised = speedup / V1_SPEEDUP_VS_BATCH
    adaptive_ratio = (
        adaptive.wall_time_s / kernel.wall_time_s
        if kernel.wall_time_s > 0 else float("inf")
    )
    adaptive_improvement = (
        V1_ADAPTIVE_KERNEL_WALL_S / adaptive.wall_time_s
        if adaptive.wall_time_s > 0 else 0.0
    )

    payload = {
        "bench": "kernel_runtime_v2",
        "scale": scale.name,
        "benchmark": "ID",
        "scenario": "EFL500",
        "instructions": kernel.instructions,
        "python": platform.python_version(),
        "numba": numba_available(),
        "array_backend": array_backend_name(),
        "repeats": REPEATS,
        "batch": {
            "runs": RUNS,
            "wall_s": round(batch.wall_time_s, 4),
            "runs_per_s": round(batch.runs_per_second, 2),
        },
        "kernel": {
            "runs": RUNS,
            "wall_s": round(kernel.wall_time_s, 4),
            "runs_per_s": round(kernel.runs_per_second, 2),
            "kernel_stats": kernel.kernel_stats,
        },
        "adaptive_kernel": {
            "wall_s": round(adaptive.wall_time_s, 4),
            "runs_executed": executed,
            "runs_saved": adaptive.runs_saved,
            "runs_speculated_waste": waste,
            "ledger_reconciled": True,
        },
        "v1_baseline": {
            "kernel_runs_per_s": V1_KERNEL_RUNS_PER_S,
            "speedup_vs_batch": V1_SPEEDUP_VS_BATCH,
            "adaptive_kernel_wall_s": V1_ADAPTIVE_KERNEL_WALL_S,
        },
        "speedup_vs_batch": round(speedup, 2),
        "improvement_vs_v1_raw": round(improvement_raw, 2),
        "improvement_vs_v1_normalised": round(improvement_normalised, 2),
        "adaptive_over_fixed_ratio": round(adaptive_ratio, 2),
        "adaptive_improvement_vs_v1": round(adaptive_improvement, 2),
        "floors": {
            "min_speedup_vs_batch": MIN_SPEEDUP_VS_BATCH,
            "min_improvement_normalised": MIN_IMPROVEMENT_NORMALISED,
            "max_adaptive_over_fixed": MAX_ADAPTIVE_OVER_FIXED,
            "min_adaptive_improvement_vs_v1": MIN_ADAPTIVE_IMPROVEMENT_VS_V1,
        },
        "bit_identical": bit_identical and prefix_identical,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"kernel runtime v2 ({scale.name} scale, "
          f"{kernel.instructions} instructions/run):")
    print(f"  batch          : {batch.runs_per_second:8.1f} runs/s "
          f"({RUNS} runs in {batch.wall_time_s:.2f}s)")
    print(f"  kernel         : {kernel.runs_per_second:8.1f} runs/s "
          f"({RUNS} runs in {kernel.wall_time_s:.2f}s)")
    print(f"  speedup vs batch: {speedup:.2f}x "
          f"(v1: {V1_SPEEDUP_VS_BATCH}x, "
          f"normalised improvement {improvement_normalised:.2f}x)")
    print(f"  adaptive kernel: {adaptive.wall_time_s:.2f}s for "
          f"{executed} executed + {waste} speculated "
          f"({adaptive_ratio:.2f}x fixed; v1 was "
          f"{V1_ADAPTIVE_KERNEL_WALL_S / 0.7972:.1f}x)")

    assert speedup >= MIN_SPEEDUP_VS_BATCH, (
        f"kernel v2 delivered only {speedup:.2f}x over the batch engine "
        f"at R={RUNS} (floor: {MIN_SPEEDUP_VS_BATCH}x)"
    )
    assert improvement_normalised >= MIN_IMPROVEMENT_NORMALISED, (
        f"kernel v2's batch-normalised improvement over v1 is only "
        f"{improvement_normalised:.2f}x "
        f"(floor: {MIN_IMPROVEMENT_NORMALISED}x)"
    )
    assert adaptive_ratio <= MAX_ADAPTIVE_OVER_FIXED, (
        f"adaptive-on-kernel wall-clock is {adaptive_ratio:.2f}x "
        f"fixed-kernel (ceiling: {MAX_ADAPTIVE_OVER_FIXED}x) — the "
        f"kernel_tradeoff regression is back"
    )
    assert adaptive_improvement >= MIN_ADAPTIVE_IMPROVEMENT_VS_V1, (
        f"adaptive-on-kernel improved only "
        f"{adaptive_improvement:.2f}x over the v1 recorded wall "
        f"(floor: {MIN_ADAPTIVE_IMPROVEMENT_VS_V1}x)"
    )
