"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``pip install -e .`` also works on minimal environments whose pip/wheel
combination cannot build PEP 660 editable wheels (legacy editable
installs go through ``setup.py develop``).
"""

from setuptools import setup

setup()
