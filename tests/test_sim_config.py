"""Tests for SystemConfig and Scenario."""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.errors import ConfigurationError
from repro.sim.config import Scenario, SystemConfig


class TestSystemConfig:
    def test_paper_defaults(self):
        cfg = SystemConfig()
        assert cfg.num_cores == 4
        assert cfg.l1_geometry.num_sets == 64
        assert cfg.l1_geometry.ways == 4
        assert cfg.llc_geometry.num_sets == 512
        assert cfg.llc_geometry.ways == 8
        assert cfg.llc_hit_latency == 10
        assert cfg.memory_latency == 100
        assert cfg.bus_latency == 2
        assert cfg.is_time_randomised is True

    def test_td_variant(self):
        cfg = SystemConfig(placement="modulo", replacement="lru")
        assert cfg.is_time_randomised is False

    def test_bad_placement(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(placement="victim")

    def test_bad_replacement(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(replacement="plru")

    def test_bad_geometry_surfaces_early(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(l1_size=3000)

    def test_negative_analysis_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(analysis_memory_penalty=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(analysis_bus_penalty=-1)


class TestScenario:
    def test_efl_constructor(self):
        s = Scenario.efl(500)
        assert s.mechanism == "efl"
        assert s.mid == 500
        assert s.mode is OperationMode.ANALYSIS
        assert s.label() == "EFL500"
        assert s.efl_config().mid == 500

    def test_efl_requires_positive_mid(self):
        with pytest.raises(ConfigurationError):
            Scenario.efl(0)

    def test_cp_uniform(self):
        s = Scenario.cache_partitioning(2)
        assert s.ways_per_core == (2, 2, 2, 2)
        assert s.label() == "CP2"

    def test_cp_explicit_counts(self):
        s = Scenario.cache_partitioning((4, 2, 1, 1))
        assert s.label() == "CP4-2-1-1"

    def test_cp_requires_ways(self):
        with pytest.raises(ConfigurationError):
            Scenario(mechanism="cp", mode=OperationMode.ANALYSIS)

    def test_cp_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            Scenario.cache_partitioning((2, 0, 2, 2))

    def test_uncontrolled(self):
        s = Scenario.uncontrolled()
        assert s.mechanism == "none"
        assert s.label() == "SHARED"
        assert s.efl_config().enabled is False

    def test_unknown_mechanism(self):
        with pytest.raises(ConfigurationError):
            Scenario(mechanism="magic", mode=OperationMode.ANALYSIS)
