"""Tests for the set-associative cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import Cache, CacheGeometry, Eviction
from repro.mem.placement import ModuloPlacement, RandomPlacement
from repro.mem.replacement import EvictOnMissRandom, LRUReplacement
from repro.utils.rng import MultiplyWithCarry


def make_cache(
    size=256,
    line=16,
    ways=4,
    placement_kind="modulo",
    replacement_kind="eom",
    seed=1,
    write_back=True,
    rii=0,
):
    geometry = CacheGeometry(size_bytes=size, line_size=line, ways=ways)
    if placement_kind == "modulo":
        placement = ModuloPlacement(geometry.num_sets)
    else:
        placement = RandomPlacement(geometry.num_sets, rii=rii)
    if replacement_kind == "eom":
        replacement = EvictOnMissRandom(MultiplyWithCarry(seed))
    else:
        replacement = LRUReplacement()
    return Cache(geometry, placement, replacement, name="test", write_back=write_back)


class TestGeometry:
    def test_paper_llc(self):
        g = CacheGeometry(size_bytes=65536, line_size=16, ways=8)
        assert g.num_sets == 512
        assert g.num_lines == 4096

    def test_paper_l1(self):
        g = CacheGeometry(size_bytes=4096, line_size=16, ways=4)
        assert g.num_sets == 64

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=3000, line_size=16, ways=4)

    def test_rejects_too_small(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=32, line_size=16, ways=4)

    def test_mismatched_placement_rejected(self):
        geometry = CacheGeometry(size_bytes=256, line_size=16, ways=4)
        with pytest.raises(ConfigurationError):
            Cache(geometry, ModuloPlacement(99), LRUReplacement())


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(5).hit is False
        assert cache.access(5).hit is True

    def test_probe_has_no_side_effects(self):
        cache = make_cache()
        assert cache.probe(5) is False
        assert cache.stats.accesses == 0
        cache.access(5)
        assert cache.probe(5) is True
        assert cache.stats.accesses == 1

    def test_occupancy_grows_to_capacity(self):
        cache = make_cache(size=256, ways=4)  # 16 lines
        for line in range(100):
            cache.access(line)
        assert cache.occupancy() == 16

    def test_eviction_reported(self):
        # Direct-mapped single set: second distinct line evicts first.
        cache = make_cache(size=16, ways=1)
        cache.access(0)
        result = cache.access(1)  # same set (1 set only)
        assert result.hit is False
        assert result.eviction == Eviction(line=0, dirty=False)

    def test_dirty_eviction_after_store(self):
        cache = make_cache(size=16, ways=1)
        cache.access(0, write=True)
        result = cache.access(1)
        assert result.eviction.dirty is True
        assert cache.stats.writebacks == 1

    def test_write_through_never_dirty(self):
        cache = make_cache(size=16, ways=1, write_back=False)
        cache.access(0, write=True)
        result = cache.access(1)
        assert result.eviction.dirty is False

    def test_stats_counting(self):
        cache = make_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert cache.stats.miss_ratio == pytest.approx(2 / 3)

    def test_invalidate(self):
        cache = make_cache()
        cache.access(7, write=True)
        eviction = cache.invalidate(7)
        assert eviction.dirty is True
        assert cache.probe(7) is False
        assert cache.invalidate(7) is None

    def test_flush_returns_dirty_lines(self):
        cache = make_cache(size=256, ways=4)
        cache.access(1, write=True)
        cache.access(2)
        cache.access(3, write=True)
        written = cache.flush()
        assert {e.line for e in written} == {1, 3}
        assert cache.occupancy() == 0


class TestEoMSemantics:
    def test_hits_do_not_change_state(self):
        """The paper's key property: EoM hits leave the cache unchanged."""
        cache = make_cache(placement_kind="random", replacement_kind="eom")
        for line in range(10):
            cache.access(line)
        before = cache.resident_lines()
        for line in list(before):
            cache.access(line)
        assert cache.resident_lines() == before

    def test_random_victims_vary(self):
        """With EoM, the same overflow scenario evicts different ways."""
        victims = set()
        for seed in range(20):
            cache = make_cache(size=64, ways=4, seed=seed)  # 1 set
            for line in range(4):
                cache.access(line)
            result = cache.access(99)
            # EoM may draw a way that a cold self-eviction left invalid;
            # only filled victims carry a line.
            if result.eviction is not None:
                victims.add(result.eviction.line)
        assert len(victims) > 1

    def test_miss_can_fill_invalid_way_without_eviction(self):
        """EoM draws over all ways: a miss whose victim draw lands on an
        invalid frame evicts nothing (and Equation 1 still counts it as
        an eviction opportunity)."""
        results = []
        for seed in range(50):
            cache = make_cache(size=64, ways=4, seed=seed)  # 1 set, empty
            cache.access(1)
            results.append(cache.access(2).eviction)
        # From a nearly-empty set most victim draws hit invalid ways...
        assert sum(1 for e in results if e is None) > 25
        # ...but sometimes the draw lands on the one valid line.
        assert sum(1 for e in results if e is not None) > 0


class TestLRUSemantics:
    def test_lru_victim_order(self):
        cache = make_cache(size=64, ways=4, replacement_kind="lru")  # 1 set
        for line in range(4):
            cache.access(line)
        cache.access(0)  # refresh 0
        result = cache.access(99)
        assert result.eviction.line == 1  # 1 is now LRU


class TestForcedEvictions:
    def test_forced_eviction_invalidates(self):
        cache = make_cache(size=16, ways=1)
        cache.access(3)
        eviction = cache.force_eviction(cache.set_of(3))
        assert eviction.line == 3
        assert cache.probe(3) is False
        assert cache.stats.forced_evictions == 1

    def test_forced_eviction_on_empty_way(self):
        cache = make_cache(size=16, ways=1)
        eviction = cache.force_eviction(0)
        assert eviction.line is None
        assert cache.stats.forced_evictions == 1
        assert cache.stats.evictions == 0

    def test_forced_eviction_writes_back_dirty(self):
        cache = make_cache(size=16, ways=1)
        cache.access(3, write=True)
        eviction = cache.force_eviction(cache.set_of(3))
        assert eviction.dirty is True
        assert cache.stats.writebacks == 1

    def test_out_of_range_set_rejected(self):
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.force_eviction(9999)


class TestRII:
    def test_new_rii_flushes(self):
        cache = make_cache(placement_kind="random")
        cache.access(1, write=True)
        written = cache.new_rii(42)
        assert [e.line for e in written] == [1]
        assert cache.occupancy() == 0
        assert cache.placement.rii == 42

    def test_new_rii_on_modulo_rejected(self):
        cache = make_cache(placement_kind="modulo")
        with pytest.raises(ConfigurationError):
            cache.new_rii(1)

    def test_rii_changes_set_mapping(self):
        cache_a = make_cache(size=1024, placement_kind="random", rii=1)
        cache_b = make_cache(size=1024, placement_kind="random", rii=2)
        moved = sum(
            1 for line in range(100) if cache_a.set_of(line) != cache_b.set_of(line)
        )
        assert moved > 80


class TestWaySubsets:
    def test_access_confined_to_ways(self):
        cache = make_cache(size=64, ways=4)  # 1 set
        cache.access(1, ways=(0, 1))
        cache.access(2, ways=(0, 1))
        cache.access(3, ways=(0, 1))  # must evict within {0,1}
        assert cache.occupancy() == 2

    def test_probe_respects_ways(self):
        cache = make_cache(size=64, ways=4)
        cache.access(1, ways=(0,))
        assert cache.probe(1, ways=(0,)) is True
        assert cache.probe(1, ways=(1, 2, 3)) is False


class TestPropertyBased:
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40)
    def test_occupancy_never_exceeds_capacity(self, lines, seed):
        cache = make_cache(size=256, ways=4, placement_kind="random", seed=seed)
        for line in lines:
            cache.access(line)
        assert cache.occupancy() <= cache.geometry.num_lines
        assert cache.occupancy() <= len(set(lines))

    @given(
        lines=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=100),
    )
    @settings(max_examples=40)
    def test_last_access_always_resident(self, lines):
        cache = make_cache(size=256, ways=4, placement_kind="random")
        for line in lines:
            cache.access(line)
        assert cache.probe(lines[-1]) is True

    @given(
        lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200),
    )
    @settings(max_examples=40)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = make_cache(size=128, ways=2, placement_kind="random")
        for line in lines:
            cache.access(line)
        assert cache.stats.hits + cache.stats.misses == len(lines)

    @given(
        lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40)
    def test_resident_lines_subset_of_accessed(self, lines, seed):
        cache = make_cache(size=128, ways=2, placement_kind="random", seed=seed)
        for line in lines:
            cache.access(line)
        assert cache.resident_lines() <= set(lines)


class TestStatsConservation:
    """The accounting invariant: every removal path agrees.

    ``evictions`` must equal the number of *valid* lines displaced and
    ``writebacks`` the number of *dirty* lines displaced, no matter
    whether lines left via ``access`` (replacement), ``force_eviction``
    (CRG force-miss), ``invalidate`` or ``flush`` (full or per-way).
    """

    def _fill(self, cache, n, dirty_every=2):
        """Fill ``n`` distinct lines, marking every ``dirty_every``-th dirty."""
        for line in range(n):
            cache.access(line, write=(line % dirty_every == 0))

    def test_invalidate_counts_eviction(self):
        cache = make_cache()
        cache.access(7, write=True)
        before = cache.stats.evictions
        eviction = cache.invalidate(7)
        assert eviction == Eviction(line=7, dirty=True)
        assert cache.stats.evictions == before + 1
        assert cache.stats.writebacks == 1

    def test_invalidate_clean_line_counts_eviction_not_writeback(self):
        cache = make_cache()
        cache.access(7)
        eviction = cache.invalidate(7)
        assert eviction == Eviction(line=7, dirty=False)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 0

    def test_invalidate_missing_line_counts_nothing(self):
        cache = make_cache()
        assert cache.invalidate(99) is None
        assert cache.stats.evictions == 0
        assert cache.stats.writebacks == 0

    def test_flush_counts_every_valid_line(self):
        cache = make_cache()
        self._fill(cache, 8)
        # EoM fills may already have displaced lines; count the deltas.
        evictions_before = cache.stats.evictions
        writebacks_before = cache.stats.writebacks
        displaced = cache.occupancy()
        dirty = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in range(cache.geometry.ways) if cache._dirty[s][w]
        )
        written_back = cache.flush()
        assert cache.stats.evictions == evictions_before + displaced
        assert cache.stats.writebacks == writebacks_before + dirty
        assert len(written_back) == dirty
        assert cache.occupancy() == 0

    def test_flush_way_subset_counts_only_those_ways(self):
        cache = make_cache()
        for line in range(16):
            cache.access(line, write=True, ways=(0, 1))
        evictions_from_fills = cache.stats.evictions
        in_subset = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in (0, 1) if cache._tags[s][w] is not None
        )
        cache.flush(ways=(0, 1))
        assert cache.stats.evictions == evictions_from_fills + in_subset
        assert all(
            cache._tags[s][w] is None
            for s in range(cache.geometry.num_sets) for w in (0, 1)
        )

    def test_flush_rejects_out_of_range_way(self):
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.flush(ways=(0, 99))

    def test_all_paths_agree_on_totals(self):
        """Displace lines via every path; totals must still reconcile."""
        cache = make_cache(placement_kind="random", seed=5)
        displaced = 0
        dirty_displaced = 0

        # Path 1: replacement on demand misses (overfill one cache).
        for line in range(64):
            result = cache.access(line, write=(line % 3 == 0))
            if result.eviction is not None:
                displaced += 1
                if result.eviction.dirty:
                    dirty_displaced += 1

        # Path 2: forced evictions (CRG force-misses).
        for set_index in range(cache.geometry.num_sets):
            eviction = cache.force_eviction(set_index)
            if eviction.line is not None:
                displaced += 1
                if eviction.dirty:
                    dirty_displaced += 1

        # Path 3: explicit invalidations.
        for line in list(cache.resident_lines())[:4]:
            eviction = cache.invalidate(line)
            if eviction is not None:
                displaced += 1
                if eviction.dirty:
                    dirty_displaced += 1

        # Path 4: the final flush displaces everything left.
        remaining = cache.occupancy()
        dirty_remaining = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in range(cache.geometry.ways) if cache._dirty[s][w]
        )
        cache.flush()
        displaced += remaining
        dirty_displaced += dirty_remaining

        assert cache.stats.evictions == displaced
        assert cache.stats.writebacks == dirty_displaced


class TestForcedEvictionEdgeCases:
    """CRG edge cases: force-miss draws into empty frames."""

    def test_all_invalid_set_consumes_budget_without_writeback(self):
        cache = make_cache()
        eviction = cache.force_eviction(0)
        assert eviction == Eviction(line=None, dirty=False)
        assert cache.stats.forced_evictions == 1
        assert cache.stats.evictions == 0
        assert cache.stats.writebacks == 0
        assert cache.occupancy() == 0

    def test_repeated_forced_evictions_on_empty_set(self):
        cache = make_cache()
        for _ in range(5):
            cache.force_eviction(0)
        assert cache.stats.forced_evictions == 5
        assert cache.stats.evictions == 0

    def test_way_restricted_forced_eviction_spares_other_ways(self):
        cache = make_cache(size=64, ways=4)  # one set
        for line in range(4):
            cache.access(line)  # fill all four ways
        resident_before = cache.resident_lines()
        eviction = cache.force_eviction(0, ways=(2,))
        assert eviction.line is not None
        assert cache.stats.forced_evictions == 1
        assert resident_before - cache.resident_lines() == {eviction.line}


class TestProbeUnderWayRestriction:
    def test_probe_sees_line_only_through_its_way(self):
        cache = make_cache(size=64, ways=4)  # one set
        cache.access(5, ways=(1,))
        assert cache.probe(5)
        assert cache.probe(5, ways=(1,))
        assert not cache.probe(5, ways=(0,))
        assert not cache.probe(5, ways=(2, 3))

    def test_probe_has_no_side_effects_under_restriction(self):
        cache = make_cache(size=64, ways=4)
        cache.access(5, ways=(1,))
        hits, misses = cache.stats.hits, cache.stats.misses
        cache.probe(5, ways=(0, 2, 3))
        cache.probe(5, ways=(1,))
        assert (cache.stats.hits, cache.stats.misses) == (hits, misses)

    def test_probe_accepts_tuple_and_list_ways(self):
        cache = make_cache(size=64, ways=4)
        cache.access(9, ways=[3])
        assert cache.probe(9, ways=[3])
        assert cache.probe(9, ways=(3,))
