"""Tests for the MWC PRNG and SplitMix64 seed derivation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.rng import (
    MWC_MULTIPLIER,
    MultiplyWithCarry,
    SplitMix64,
    derive_seeds,
)


class TestMultiplyWithCarry:
    def test_deterministic_for_seed(self):
        a = MultiplyWithCarry(123)
        b = MultiplyWithCarry(123)
        assert [a.next_u32() for _ in range(100)] == [b.next_u32() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = MultiplyWithCarry(1)
        b = MultiplyWithCarry(2)
        assert [a.next_u32() for _ in range(10)] != [b.next_u32() for _ in range(10)]

    def test_values_are_32_bit(self):
        rng = MultiplyWithCarry(7)
        for _ in range(1000):
            assert 0 <= rng.next_u32() <= 0xFFFFFFFF

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiplyWithCarry(-1)

    def test_recurrence_matches_definition(self):
        rng = MultiplyWithCarry(42)
        x, c = rng.state()
        expected = (MWC_MULTIPLIER * x + c) & 0xFFFFFFFF
        assert rng.next_u32() == expected

    def test_carry_matches_definition(self):
        rng = MultiplyWithCarry(42)
        x, c = rng.state()
        t = MWC_MULTIPLIER * x + c
        rng.next_u32()
        assert rng.state() == (t & 0xFFFFFFFF, t >> 32)

    def test_mean_is_near_half_range(self):
        rng = MultiplyWithCarry(3)
        n = 20_000
        mean = sum(rng.next_u32() for _ in range(n)) / n
        assert abs(mean - 2**31) < 2**31 * 0.02

    def test_bit_balance(self):
        """Every bit position should be ~50% ones."""
        rng = MultiplyWithCarry(9)
        counts = [0] * 32
        n = 4000
        for _ in range(n):
            value = rng.next_u32()
            for bit in range(32):
                counts[bit] += (value >> bit) & 1
        for bit, count in enumerate(counts):
            assert abs(count / n - 0.5) < 0.05, f"bit {bit} unbalanced: {count}/{n}"

    def test_no_short_cycle(self):
        rng = MultiplyWithCarry(5)
        seen = {rng.state()}
        for _ in range(10_000):
            rng.next_u32()
            state = rng.state()
            assert state not in seen, "PRNG state repeated within 10k steps"
            seen.add(state)

    def test_randrange_bounds(self):
        rng = MultiplyWithCarry(11)
        for n in (1, 2, 3, 17, 1024, 4097):
            for _ in range(200):
                assert 0 <= rng.randrange(n) < n

    def test_randrange_uniformity(self):
        rng = MultiplyWithCarry(13)
        n = 8
        counts = [0] * n
        draws = 16_000
        for _ in range(draws):
            counts[rng.randrange(n)] += 1
        for count in counts:
            assert abs(count - draws / n) < draws / n * 0.15

    def test_randrange_rejects_non_positive(self):
        rng = MultiplyWithCarry(1)
        with pytest.raises(ConfigurationError):
            rng.randrange(0)
        with pytest.raises(ConfigurationError):
            rng.randrange(-5)

    def test_randint_inclusive_hits_both_ends(self):
        rng = MultiplyWithCarry(17)
        values = {rng.randint_inclusive(0, 3) for _ in range(500)}
        assert values == {0, 1, 2, 3}

    def test_randint_inclusive_single_point(self):
        rng = MultiplyWithCarry(17)
        assert rng.randint_inclusive(5, 5) == 5

    def test_randint_inclusive_rejects_empty_range(self):
        rng = MultiplyWithCarry(17)
        with pytest.raises(ConfigurationError):
            rng.randint_inclusive(3, 2)

    def test_random_in_unit_interval(self):
        rng = MultiplyWithCarry(19)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    @given(seed=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=50)
    def test_any_seed_produces_valid_stream(self, seed):
        rng = MultiplyWithCarry(seed)
        for _ in range(20):
            assert 0 <= rng.next_u32() <= 0xFFFFFFFF

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=50)
    def test_randrange_always_in_bounds(self, seed, n):
        rng = MultiplyWithCarry(seed)
        assert 0 <= rng.randrange(n) < n


class TestSplitMix64:
    def test_deterministic(self):
        assert SplitMix64(5).next_u64() == SplitMix64(5).next_u64()

    def test_64_bit_range(self):
        rng = SplitMix64(1)
        for _ in range(100):
            assert 0 <= rng.next_u64() < 2**64

    def test_next_u32_is_high_bits(self):
        a, b = SplitMix64(9), SplitMix64(9)
        assert a.next_u32() == b.next_u64() >> 32

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            SplitMix64(-2)


class TestDeriveSeeds:
    def test_reproducible(self):
        assert derive_seeds(1, 10) == derive_seeds(1, 10)

    def test_master_seed_changes_everything(self):
        a = derive_seeds(1, 10)
        b = derive_seeds(2, 10)
        assert all(x != y for x, y in zip(a, b))

    def test_count(self):
        assert len(derive_seeds(0, 7)) == 7
        assert derive_seeds(0, 0) == []

    def test_all_distinct(self):
        seeds = derive_seeds(42, 1000)
        assert len(set(seeds)) == 1000

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seeds(1, -1)

    def test_prefix_property(self):
        """Requesting more seeds extends, not reshuffles, the sequence."""
        assert derive_seeds(3, 5) == derive_seeds(3, 10)[:5]
