"""Tests for the isolation and multicore simulation engines."""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.errors import ConfigurationError
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import run_isolation, run_workload
from tests.conftest import make_stream_trace


def small_config(**overrides):
    params = dict(l1_size=256, llc_size=2048)
    params.update(overrides)
    return SystemConfig(**params)


class TestIsolation:
    def test_deterministic_for_seed(self, stream_trace):
        cfg = small_config()
        scen = Scenario.efl(250)
        a = run_isolation(stream_trace, cfg, scen, seed=7)
        b = run_isolation(stream_trace, cfg, scen, seed=7)
        assert a.cores[0].cycles == b.cores[0].cycles

    def test_different_seeds_vary(self, stream_trace):
        cfg = small_config()
        scen = Scenario.efl(250)
        times = {
            run_isolation(stream_trace, cfg, scen, seed=s).cores[0].cycles
            for s in range(8)
        }
        assert len(times) > 1, "time-randomised platform must show jitter"

    def test_instruction_count_preserved(self, stream_trace):
        result = run_isolation(stream_trace, small_config(), Scenario.efl(250), 1)
        assert result.cores[0].instructions == len(stream_trace)

    def test_ipc_positive_and_bounded(self, stream_trace):
        result = run_isolation(stream_trace, small_config(), Scenario.efl(250), 1)
        assert 0 < result.cores[0].ipc <= 1.0

    def test_analysis_slower_than_private_deployment(self, stream_trace):
        """Analysis-time charges upper-bound an idle-machine run."""
        cfg = small_config()
        analysis = run_isolation(stream_trace, cfg, Scenario.efl(250), seed=3)
        idle = run_isolation(
            stream_trace, cfg,
            Scenario.efl(250, mode=OperationMode.DEPLOYMENT), seed=3,
        )
        assert analysis.cores[0].cycles >= idle.cores[0].cycles

    def test_cp_analysis_uses_partition_only(self, stream_trace):
        cfg = small_config()
        cp1 = run_isolation(stream_trace, cfg, Scenario.cache_partitioning(1), 3)
        cp8 = run_isolation(stream_trace, cfg, Scenario.cache_partitioning(8), 3)
        # The full-cache partition can only be at least as fast.
        assert cp8.cores[0].cycles <= cp1.cores[0].cycles

    def test_efl_analysis_counts_forced_evictions(self, stream_trace):
        result = run_isolation(stream_trace, small_config(), Scenario.efl(250), 1)
        assert result.llc_forced_evictions > 0

    def test_bad_core_id(self, stream_trace):
        with pytest.raises(ConfigurationError):
            run_isolation(stream_trace, small_config(), Scenario.efl(250), 1,
                          core_id=9)

    def test_store_trace_writes_back(self, store_trace):
        result = run_isolation(
            store_trace, small_config(), Scenario.uncontrolled(), seed=2
        )
        assert result.memory_writes >= 0  # smoke: runs to completion
        assert result.cores[0].instructions == len(store_trace)

    def test_write_through_ablation_runs(self, store_trace):
        cfg = small_config(dl1_write_back=False)
        result = run_isolation(store_trace, cfg, Scenario.efl(250), seed=2)
        assert result.cores[0].instructions == len(store_trace)


class TestWorkload:
    def make_traces(self, n=4):
        return [
            make_stream_trace(name=f"t{i}", words=48, sweeps=2,
                              base=0x100000 * (i + 1))
            for i in range(n)
        ]

    def test_co_run_completes_all(self):
        traces = self.make_traces()
        result = run_workload(
            traces, small_config(),
            Scenario.efl(250, mode=OperationMode.DEPLOYMENT), seed=1,
        )
        assert len(result.cores) == 4
        for core, trace in zip(result.cores, traces):
            assert core.instructions == len(trace)
            assert core.task == trace.name

    def test_contention_slows_tasks(self):
        """Co-running must not be faster than running alone."""
        traces = self.make_traces()
        cfg = small_config()
        scen = Scenario.uncontrolled()
        together = run_workload(traces, cfg, scen, seed=5)
        alone = run_isolation(
            traces[0], cfg, Scenario.uncontrolled(), seed=5
        )
        assert together.core(0).cycles >= alone.cores[0].cycles * 0.95

    def test_cp_deployment(self):
        traces = self.make_traces()
        result = run_workload(
            traces, small_config(),
            Scenario.cache_partitioning((2, 2, 2, 2), mode=OperationMode.DEPLOYMENT),
            seed=1,
        )
        assert result.total_ipc > 0

    def test_fewer_tasks_than_cores(self):
        traces = self.make_traces(2)
        result = run_workload(
            traces, small_config(),
            Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=1,
        )
        assert len(result.cores) == 2

    def test_too_many_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_workload(
                self.make_traces(5), small_config(),
                Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=1,
            )

    def test_requires_deployment_mode(self):
        with pytest.raises(ConfigurationError):
            run_workload(self.make_traces(), small_config(),
                         Scenario.efl(500), seed=1)

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_workload([], small_config(),
                         Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=1)

    def test_deterministic(self):
        traces = self.make_traces()
        scen = Scenario.efl(250, mode=OperationMode.DEPLOYMENT)
        a = run_workload(traces, small_config(), scen, seed=3)
        b = run_workload(traces, small_config(), scen, seed=3)
        assert [c.cycles for c in a.cores] == [c.cycles for c in b.cores]

    def test_makespan_is_max(self):
        traces = self.make_traces()
        result = run_workload(
            traces, small_config(),
            Scenario.efl(250, mode=OperationMode.DEPLOYMENT), seed=1,
        )
        assert result.cycles == max(c.cycles for c in result.cores)


class TestShortcutEquivalence:
    """The L1 hot-line shortcuts must not change timing."""

    def test_shortcut_matches_full_path(self, stream_trace):
        from repro.sim.memorypath import MemoryPath
        from repro.sim.platform import build_platform
        from repro.sim.simulator import CoreRunner

        cfg = small_config()
        scen = Scenario.efl(250)

        def run(disable_shortcut):
            platform = build_platform(cfg, scen, seed=11)
            path = MemoryPath(platform)
            runner = CoreRunner(0, stream_trace, platform.il1s[0],
                                platform.dl1s[0], path, cfg)
            if disable_shortcut:
                runner._shortcut_il1 = False
                runner._shortcut_dl1 = False
            runner.run_to_completion()
            return runner.pipeline.time

        assert run(False) == run(True)
