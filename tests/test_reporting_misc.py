"""Edge-case tests: reporting helpers and result-container accessors."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import _deciles, format_table, render_campaign
from repro.core.config import OperationMode
from repro.errors import SimulationError
from repro.sim.backend import RunRecord
from repro.sim.campaign import CampaignResult
from repro.sim.simulator import CoreResult, RunResult


def make_core(core=0, cycles=100, instructions=50):
    return CoreResult(
        core=core,
        task=f"t{core}",
        cycles=cycles,
        instructions=instructions,
        il1_misses=1,
        il1_accesses=instructions,
        dl1_misses=2,
        dl1_accesses=10,
    )


class TestCoreResult:
    def test_ipc(self):
        assert make_core(cycles=100, instructions=50).ipc == 0.5

    def test_zero_cycles_rejected(self):
        with pytest.raises(SimulationError):
            make_core(cycles=0).ipc


class TestRunResult:
    def make(self):
        return RunResult(
            scenario_label="EFL250",
            mode=OperationMode.DEPLOYMENT,
            cores=[make_core(0, cycles=100), make_core(1, cycles=300)],
            llc_hits=5,
            llc_misses=3,
            llc_forced_evictions=0,
            memory_reads=3,
            memory_writes=1,
        )

    def test_makespan(self):
        assert self.make().cycles == 300

    def test_core_lookup(self):
        result = self.make()
        assert result.core(1).cycles == 300
        with pytest.raises(SimulationError):
            result.core(7)

    def test_total_ipc_sums(self):
        result = self.make()
        assert result.total_ipc == pytest.approx(50 / 100 + 50 / 300)


class TestRenderCampaign:
    def make(self, with_provenance=True):
        records = [
            RunRecord(index=i, seed=0xABC0 + i, cycles=5000 + 100 * i,
                      instructions=400, llc_hits=30, llc_misses=12,
                      llc_forced_evictions=7, efl_stall_cycles=90,
                      efl_evictions=12, memory_reads=12, memory_writes=1,
                      wall_time_s=0.02)
            for i in range(3)
        ]
        return CampaignResult(
            task="ID", scenario_label="EFL500",
            execution_times=[r.cycles for r in records], instructions=400,
            runs=3, master_seed=7,
            seeds=[r.seed for r in records] if with_provenance else [],
            records=records if with_provenance else [],
            backend="process[2]", wall_time_s=0.06,
        )

    def test_surfaces_hwm_seed_and_throughput(self):
        text = render_campaign(self.make())
        # The worst (HWM) run is the last one: index 2, seed 0xabc2.
        assert "HWM run: index 2" in text
        assert hex(0xABC2) in text
        assert "runs/s" in text
        assert "process[2]" in text
        assert "forced evictions" in text

    def test_degrades_without_provenance(self):
        text = render_campaign(self.make(with_provenance=False))
        assert "HWM" not in text
        assert "ID under EFL500" in text


class TestDeciles:
    def test_empty(self):
        assert _deciles([]) == "(empty)"

    def test_single_value(self):
        text = _deciles([0.5])
        assert "+50%" in text

    def test_endpoints(self):
        curve = sorted([0.9, 0.5, 0.1, -0.2], reverse=True)
        text = _deciles(curve)
        assert text.startswith("+90%")
        assert text.endswith("-20%")


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["wide-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)
