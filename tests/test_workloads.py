"""Tests for kernels, the EEMBC-like suite, scales and the generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import OpKind, is_memory_op
from repro.cpu.trace import TraceBuilder
from repro.errors import ConfigurationError
from repro.workloads import kernels
from repro.workloads.generator import (
    build_workload_traces,
    random_workloads,
    relocate_trace,
)
from repro.workloads.scale import PAPER_MIDS, ExperimentScale
from repro.workloads.suite import (
    BENCHMARK_IDS,
    BENCHMARK_NAMES,
    LLC_OVERFLOW_IDS,
    SENSITIVE_IDS,
    build_all_benchmarks,
    build_benchmark,
    builder_for,
)

TINY = 0.0625


class TestKernelPrimitives:
    def test_stream_pass_addresses(self):
        builder = TraceBuilder("t")
        kernels.stream_pass(builder, base=0x100, num_words=8, alus_per_access=1)
        trace = builder.build()
        loads = [a for k, a in zip(trace.kinds, trace.addresses)
                 if k == OpKind.LOAD]
        assert loads == [0x100 + 4 * i for i in range(8)]

    def test_stream_pass_stores(self):
        builder = TraceBuilder("t")
        kernels.stream_pass(builder, base=0, num_words=8, store_every=4)
        trace = builder.build()
        stores = sum(1 for k in trace.kinds if k == OpKind.STORE)
        assert stores == 2

    def test_stream_pass_reuses_loop_body_pcs(self):
        builder = TraceBuilder("t")
        kernels.stream_pass(builder, base=0, num_words=32)
        trace = builder.build()
        assert len(trace.code_footprint()) < len(trace)

    def test_strided_pass(self):
        builder = TraceBuilder("t")
        kernels.strided_pass(builder, base=0, num_accesses=4, stride_bytes=16)
        trace = builder.build()
        loads = [a for k, a in zip(trace.kinds, trace.addresses)
                 if k == OpKind.LOAD]
        assert loads == [0, 16, 32, 48]

    def test_blocked_pass_reuse(self):
        builder = TraceBuilder("t")
        kernels.blocked_pass(builder, base=0, block_words=4, num_blocks=2, reuse=3)
        trace = builder.build()
        # Each word touched reuse times: 2 blocks * 4 words * 3.
        assert trace.memory_op_count == 24
        assert len(trace.data_footprint()) == 8

    def test_pointer_chase_visits_all_nodes(self):
        builder = TraceBuilder("t")
        kernels.pointer_chase(builder, base=0, num_nodes=16, node_bytes=16,
                              steps=16, seed=1)
        trace = builder.build()
        assert len(trace.data_footprint()) == 16  # one full lap

    def test_permutation_is_single_cycle(self):
        successor = kernels.make_permutation(100, seed=7)
        node, seen = 0, set()
        for _ in range(100):
            assert node not in seen
            seen.add(node)
            node = successor[node]
        assert node == 0 and len(seen) == 100

    def test_permutation_deterministic(self):
        assert kernels.make_permutation(50, 3) == kernels.make_permutation(50, 3)

    def test_table_lookup_in_range(self):
        builder = TraceBuilder("t")
        kernels.table_lookup_pass(builder, table_base=0x1000, table_words=64,
                                  lookups=100, seed=2)
        trace = builder.build()
        for kind, addr in zip(trace.kinds, trace.addresses):
            if is_memory_op(kind):
                assert 0x1000 <= addr < 0x1000 + 64 * 4

    def test_scaled_count(self):
        assert kernels.scaled_count(100, 0.5) == 50
        assert kernels.scaled_count(100, 0.001) == 1
        assert kernels.scaled_count(100, 0.001, minimum=8) == 8
        with pytest.raises(ConfigurationError):
            kernels.scaled_count(0, 1.0)

    @pytest.mark.parametrize("fn,kwargs", [
        (kernels.stream_pass, dict(base=0, num_words=0)),
        (kernels.strided_pass, dict(base=0, num_accesses=0, stride_bytes=16)),
        (kernels.strided_pass, dict(base=0, num_accesses=4, stride_bytes=0)),
        (kernels.blocked_pass, dict(base=0, block_words=0, num_blocks=1, reuse=1)),
        (kernels.pointer_chase, dict(base=0, num_nodes=0, node_bytes=16,
                                     steps=1, seed=1)),
        (kernels.table_lookup_pass, dict(table_base=0, table_words=0,
                                         lookups=1, seed=1)),
    ])
    def test_primitives_reject_bad_args(self, fn, kwargs):
        with pytest.raises(ConfigurationError):
            fn(TraceBuilder("t"), **kwargs)


class TestSuite:
    def test_ten_benchmarks(self):
        assert len(BENCHMARK_IDS) == 10
        assert set(SENSITIVE_IDS) <= set(BENCHMARK_IDS)
        assert set(LLC_OVERFLOW_IDS) <= set(BENCHMARK_IDS)

    def test_names(self):
        assert BENCHMARK_NAMES["ID"] == "idctrn"
        assert BENCHMARK_NAMES["A2"] == "a2time"

    @pytest.mark.parametrize("bench_id", BENCHMARK_IDS)
    def test_every_kernel_builds(self, bench_id):
        trace = build_benchmark(bench_id, scale=TINY)
        assert trace.name == bench_id
        assert trace.instruction_count > 100
        assert trace.memory_op_count > 0

    def test_traces_deterministic(self):
        a = build_benchmark("PN", scale=TINY)
        b = build_benchmark("PN", scale=TINY)
        assert a.pcs == b.pcs and a.addresses == b.addresses

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            build_benchmark("XX")
        with pytest.raises(ConfigurationError):
            builder_for("XX")

    def test_disjoint_address_spaces(self):
        traces = build_all_benchmarks(scale=TINY)
        footprints = {b: t.data_footprint() for b, t in traces.items()}
        ids = list(footprints)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                assert not (footprints[a] & footprints[b]), f"{a} and {b} overlap"

    def test_matrix_exceeds_llc(self):
        """MA's data footprint must exceed the scaled LLC (2x)."""
        scale = ExperimentScale.tiny()
        trace = build_benchmark("MA", scale=scale.trace_scale)
        lines = {a >> 4 for a in trace.data_footprint()}
        assert len(lines) * 16 > scale.llc_size

    def test_sensitive_load_a_2way_partition_heavily(self):
        """II/PN/A2 working sets sit in the churn regime of a 2-way
        partition: most of its capacity (random placement then leaves
        a substantial fraction of their lines in overflowing sets)
        while still fitting the full 8-way LLC."""
        scale = ExperimentScale.tiny()
        for bench_id in SENSITIVE_IDS:
            trace = build_benchmark(bench_id, scale=scale.trace_scale)
            footprint = len({a >> 4 for a in trace.data_footprint()}) * 16
            assert footprint > 0.6 * scale.llc_size / 4, bench_id
            assert footprint < scale.llc_size, bench_id
            assert footprint > scale.l1_size, bench_id

    def test_scale_controls_size(self):
        small = build_benchmark("CN", scale=0.1)
        large = build_benchmark("CN", scale=0.5)
        assert large.instruction_count > small.instruction_count


class TestScale:
    def test_presets(self):
        for name in ("tiny", "quick", "default", "paper"):
            scale = ExperimentScale.from_name(name)
            assert scale.name == name
            assert scale.mid_options == PAPER_MIDS

    def test_paper_platform(self):
        cfg = ExperimentScale.paper().system_config()
        assert cfg.l1_size == 4096
        assert cfg.llc_size == 65536

    def test_scaled_platform_keeps_shape(self):
        cfg = ExperimentScale.default().system_config()
        assert cfg.l1_geometry.ways == 4
        assert cfg.llc_geometry.ways == 8
        assert cfg.llc_size == 16384

    def test_system_config_overrides(self):
        cfg = ExperimentScale.tiny().system_config(replacement="lru")
        assert cfg.replacement == "lru"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale.from_name("huge")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert ExperimentScale.from_env().name == "tiny"
        monkeypatch.delenv("REPRO_SCALE")
        assert ExperimentScale.from_env(fallback="quick").name == "quick"

    def test_paper_mid_label(self):
        assert ExperimentScale.default().paper_mid_label(250) == "EFL250"
        with pytest.raises(ConfigurationError):
            ExperimentScale.default().paper_mid_label(123)


class TestGenerator:
    def test_reproducible(self):
        assert random_workloads(10, seed=4) == random_workloads(10, seed=4)

    def test_count_and_width(self):
        workloads = random_workloads(32, tasks_per_workload=4, seed=1)
        assert len(workloads) == 32
        assert all(len(w) == 4 for w in workloads)

    def test_ids_valid(self):
        for workload in random_workloads(50, seed=2):
            assert all(bench in BENCHMARK_IDS for bench in workload)

    def test_custom_pool(self):
        for workload in random_workloads(20, seed=3, bench_ids=("RS", "PU")):
            assert set(workload) <= {"RS", "PU"}

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            random_workloads(0)
        with pytest.raises(ConfigurationError):
            random_workloads(1, tasks_per_workload=0)
        with pytest.raises(ConfigurationError):
            random_workloads(1, bench_ids=())

    def test_relocation_shifts_everything(self):
        trace = build_benchmark("RS", scale=TINY)
        moved = relocate_trace(trace, 0x1000, copy_tag="#1")
        assert moved.name == "RS#1"
        assert moved.pcs == [pc + 0x1000 for pc in trace.pcs]
        assert all(
            (a is None and b is None) or b == a + 0x1000
            for a, b in zip(trace.addresses, moved.addresses)
        )

    def test_relocation_rejects_negative(self):
        trace = build_benchmark("RS", scale=TINY)
        with pytest.raises(ConfigurationError):
            relocate_trace(trace, -1)

    def test_duplicates_relocated(self):
        traces = build_workload_traces(("RS", "RS", "PU", "RS"), scale=TINY)
        footprints = [t.data_footprint() for t in traces]
        assert not (footprints[0] & footprints[1])
        assert not (footprints[1] & footprints[3])
        assert traces[0].name == "RS"
        assert traces[1].name == "RS#1"
        assert traces[3].name == "RS#2"

    def test_trace_cache_reused(self):
        cache: dict = {}
        build_workload_traces(("RS", "PU"), scale=TINY, trace_cache=cache)
        assert set(cache) == {"RS", "PU"}
        first = cache["RS"]
        build_workload_traces(("RS", "CN"), scale=TINY, trace_cache=cache)
        assert cache["RS"] is first

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_any_seed_valid(self, seed):
        workloads = random_workloads(4, seed=seed)
        assert len(workloads) == 4
