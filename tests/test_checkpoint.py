"""Checkpoint/resume tests: the JSONL run journal.

The guarantee under test: a campaign killed partway through and
resumed from its journal yields ``execution_times`` bit-identical to
an uninterrupted fault-free serial campaign — and a journal from a
*different* campaign is refused, never silently spliced in.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.sim.backend import ProcessPoolBackend, RunObserver, SerialBackend
from repro.sim.campaign import collect_execution_times
from repro.sim.checkpoint import (
    CampaignCheckpoint,
    campaign_fingerprint,
)
from repro.sim.config import Scenario, SystemConfig
from tests.conftest import make_stream_trace

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
SCENARIO = Scenario.efl(250)


@pytest.fixture
def trace():
    return make_stream_trace("ckpt", 300)


@pytest.fixture
def journal(tmp_path):
    return tmp_path / "campaign.jsonl"


def run(trace, journal=None, runs=16, master_seed=5, backend=None,
        observer=None, resume=True):
    checkpoint = CampaignCheckpoint(journal, resume=resume) if journal else None
    return collect_execution_times(
        trace, CONFIG, SCENARIO, runs=runs, master_seed=master_seed,
        backend=backend, observer=observer, checkpoint=checkpoint,
    )


class CountingBackend(SerialBackend):
    """Serial backend that records which run indices it executed."""

    def __init__(self):
        super().__init__()
        self.executed = []

    def execute(self, requests, observer=None):
        self.executed.extend(request.index for request in requests)
        return super().execute(requests, observer=observer)


class KillAfter(RunObserver):
    """Simulates an operator kill: raises after ``limit`` completed runs."""

    def __init__(self, limit):
        self.limit = limit
        self.seen = 0

    def on_run(self, record):
        self.seen += 1
        if self.seen >= self.limit:
            raise KeyboardInterrupt


class TestFingerprint:
    def test_stable_for_equal_campaigns(self, trace):
        again = make_stream_trace("ckpt", 300)
        assert campaign_fingerprint(
            trace, CONFIG, SCENARIO, 5, 16
        ) == campaign_fingerprint(again, CONFIG, SCENARIO, 5, 16)

    def test_sensitive_to_every_input(self, trace):
        base = campaign_fingerprint(trace, CONFIG, SCENARIO, 5, 16)
        assert base != campaign_fingerprint(trace, CONFIG, SCENARIO, 6, 16)
        assert base != campaign_fingerprint(trace, CONFIG, SCENARIO, 5, 17)
        assert base != campaign_fingerprint(
            trace, CONFIG, Scenario.efl(500), 5, 16
        )
        assert base != campaign_fingerprint(
            trace, SystemConfig(l1_size=256, llc_size=4096), SCENARIO, 5, 16
        )
        other = make_stream_trace("ckpt", 301)
        other = type(trace)(trace.name, other.pcs, other.kinds, other.addresses)
        assert base != campaign_fingerprint(other, CONFIG, SCENARIO, 5, 16)


class TestJournalRoundtrip:
    def test_journal_written_and_result_unchanged(self, trace, journal):
        reference = run(trace)
        journalled = run(trace, journal)
        assert journalled.execution_times == reference.execution_times
        assert journalled.resumed_runs == 0
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["task"] == trace.name
        assert header["scenario"] == SCENARIO.label()
        assert header["runs"] == 16
        assert len(lines) == 1 + 16

    def test_full_journal_resumes_without_executing(self, trace, journal):
        reference = run(trace, journal)
        backend = CountingBackend()
        resumed = run(trace, journal, backend=backend)
        assert backend.executed == []
        assert resumed.resumed_runs == 16
        assert resumed.execution_times == reference.execution_times
        assert resumed.seeds == reference.seeds

    def test_partial_journal_executes_only_missing_runs(self, trace, journal):
        reference = run(trace)
        run(trace, journal)
        lines = journal.read_text().splitlines()
        # Keep the header and runs 0..5, as if killed after six runs.
        journal.write_text("\n".join(lines[:7]) + "\n")
        backend = CountingBackend()
        resumed = run(trace, journal, backend=backend)
        assert backend.executed == list(range(6, 16))
        assert resumed.resumed_runs == 6
        assert resumed.execution_times == reference.execution_times

    def test_torn_trailing_line_is_dropped(self, trace, journal):
        reference = run(trace)
        run(trace, journal)
        lines = journal.read_text().splitlines()
        torn = "\n".join(lines[:9]) + "\n" + lines[9][: len(lines[9]) // 2]
        journal.write_text(torn)
        resumed = run(trace, journal)
        assert resumed.resumed_runs == 8
        assert resumed.execution_times == reference.execution_times
        # The repaired journal is complete and fully parseable again.
        reparsed = [json.loads(line)
                    for line in journal.read_text().splitlines()]
        assert len(reparsed) == 1 + 16


class TestJournalRefusal:
    def test_fingerprint_mismatch_refused(self, trace, journal):
        run(trace, journal)
        with pytest.raises(CheckpointError, match="different campaign"):
            run(trace, journal, master_seed=6)

    def test_run_count_mismatch_refused(self, trace, journal):
        run(trace, journal)
        with pytest.raises(CheckpointError, match="different campaign"):
            run(trace, journal, runs=17)

    def test_tampered_seed_refused(self, trace, journal):
        run(trace, journal)
        lines = journal.read_text().splitlines()
        entry = json.loads(lines[3])
        entry["seed"] ^= 1
        lines[3] = json.dumps(entry)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="seed"):
            run(trace, journal)

    def test_resume_false_discards_existing_journal(self, trace, journal):
        run(trace, journal)
        backend = CountingBackend()
        fresh = run(trace, journal, backend=backend, resume=False)
        assert backend.executed == list(range(16))
        assert fresh.resumed_runs == 0


class TestKillAndResume:
    def test_killed_campaign_resumes_bit_identically(self, trace, journal):
        reference = run(trace)
        with pytest.raises(KeyboardInterrupt):
            run(trace, journal, observer=KillAfter(5))
        # The journal survived the kill with the completed runs intact.
        survived = len(journal.read_text().splitlines()) - 1
        assert survived >= 5
        backend = CountingBackend()
        resumed = run(trace, journal, backend=backend)
        assert resumed.resumed_runs == survived
        assert len(backend.executed) == 16 - survived
        assert resumed.execution_times == reference.execution_times
        assert resumed.seeds == reference.seeds
        assert resumed.instructions == reference.instructions

    def test_resume_across_backends(self, trace, journal):
        # Kill a serial campaign, resume it on the process pool: the
        # sample must still match the uninterrupted serial reference.
        reference = run(trace)
        with pytest.raises(KeyboardInterrupt):
            run(trace, journal, observer=KillAfter(7))
        resumed = run(
            trace, journal,
            backend=ProcessPoolBackend(workers=2, chunk_size=3, force_pool=True),
        )
        assert resumed.execution_times == reference.execution_times
        assert resumed.resumed_runs >= 7
